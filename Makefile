# Convenience targets; the offline environment needs --no-build-isolation.

.PHONY: install test bench experiments examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python tools/generate_experiments.py

examples:
	@for e in examples/*.py; do echo "== $$e =="; python $$e || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
