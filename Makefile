# Convenience targets; the offline environment needs --no-build-isolation.

.PHONY: install test bench experiments examples lint typecheck clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

lint:
	PYTHONPATH=src python -m repro.lint src/
	PYTHONPATH=src python -m repro.lint --self

typecheck:
	mypy

bench:
	pytest benchmarks/ --benchmark-only

experiments:
	python tools/generate_experiments.py

examples:
	@for e in examples/*.py; do echo "== $$e =="; python $$e || exit 1; done

clean:
	rm -rf .pytest_cache benchmarks/results src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
