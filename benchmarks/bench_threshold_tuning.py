"""Section IV-B / VI: the TAIR threshold experiment and auto-detection.

"We decreased the threshold from 3072 to 1500 ... the performance
increased to over 21 GCUPs in all cases on the C2050 ... close to a 4
GCUPs increase."
"""

from repro.analysis import threshold_tuning


def test_threshold_tuning(benchmark, archive):
    result = benchmark(threshold_tuning)
    archive(result)

    rows = {row[0]: row for row in result.rows}
    default = rows["default"][3]
    tuned = rows["paper-tuned"][3]
    auto = rows["auto-detected"][3]
    assert tuned > default  # lowering the threshold helps
    assert result.extra["tuning_gain"] > 1.0  # paper: ~+4 GCUPs
    assert auto >= tuned * 0.999  # auto-detection does at least as well
    assert result.extra["auto_threshold"] < 3072
