"""Section VI: the proposed future optimizations, modeled.

Coalesced boundary I/O, shared-memory-only boundaries, the persistent
pipeline, streaming host->device copy, and multi-GPU scaling.
"""

from repro.analysis import future_work


def test_futurework_ablations(benchmark, archive):
    result = benchmark.pedantic(future_work, rounds=1, iterations=1)
    archive(result)

    rows = {row[0]: row for row in result.rows}
    # Coalescing and the persistent pipeline never hurt.
    assert rows["coalesced boundary I/O"][2] >= -0.5
    assert rows["persistent pipeline (one fill/flush)"][2] >= -0.5
    # Streaming copy hides transfer time (small but positive).
    assert rows["streaming host->device copy"][2] > 0.0
    # Near-linear multi-GPU scaling (Section IV-B).
    speedups = {k: v for k, (_, v, _) in rows.items() if "GPUs" in k}
    assert 1.8 < speedups["2 GPUs (speedup, not GCUPs)"] < 2.1
    assert 3.5 < speedups["4 GPUs (speedup, not GCUPs)"] < 4.2
