"""Section III: the v0..v3 incremental development ladder.

"Our first implementation of this approach did not show any improvements
over the original intra-task kernel" -> register fixes -> query profile ->
an order of magnitude.
"""

from repro.analysis import ablation_variants


def test_ablation_variants(benchmark, archive):
    result = benchmark(ablation_variants)
    archive(result)

    by = {row[0]: row[1] for row in result.rows}
    # v0 is no better than the original kernel (within model noise).
    assert by["v0-naive"] < 1.6 * by["original"]
    # Register fixes are a big step; the finished kernel is ~an order of
    # magnitude over the original.
    assert by["v2-hand-unroll"] > 2 * by["v1-deep-swap"]
    assert by["v3-query-profile"] > 6 * by["original"]
    # Stages never regress.
    ladder = ["v0-naive", "v1-deep-swap", "v2-hand-unroll", "v3-query-profile"]
    values = [by[name] for name in ladder]
    assert values == sorted(values)
