"""Section IV-A: the (threads/block, tile height) exploration.

"We observed that strip height is the relevant parameter to optimize ...
several combinations of n_th and t_height result in essentially the same
performance."
"""

from repro.analysis import param_exploration


def test_param_exploration(benchmark, archive):
    result = benchmark.pedantic(param_exploration, rounds=1, iterations=1)
    archive(result)

    # Equal strip height -> essentially equal performance.
    by_strip = {}
    best = {}
    for dev, n_th, t_h, strip, g in result.rows:
        by_strip.setdefault((dev, strip), []).append(g)
        best[dev] = max(best.get(dev, 0.0), g)
    for values in by_strip.values():
        if len(values) > 1:
            assert max(values) / min(values) < 1.15
    # The paper's tuned strips (512 / 1024) sit on the flat optimum.
    for dev, target in (("C1060", 512), ("C2050", 1024)):
        at_paper_optimum = max(by_strip[(dev, target)])
        assert at_paper_optimum > 0.95 * best[dev]
