"""Table I: total global-memory transactions, original vs improved kernel.

The structural claim — per-cell traffic vs per-strip-boundary traffic —
measured by the kernels' transaction counters on the Swiss-Prot intra-task
subset for the paper's two probe queries (567 and 5478).
"""

from repro.analysis import table1


def test_table1_memory_transactions(benchmark, archive):
    result = benchmark(table1)
    archive(result)

    ratios = result.extra["ratios"]
    # "an approximate 50:1 reduction in the number of global memory
    # accesses" — our well-defined counter semantics land far above that
    # floor (EXPERIMENTS.md discusses the counter-semantics gap).
    assert all(r > 50 for r in ratios.values())
    # The original kernel's traffic is per-cell: the long query costs
    # ~m-proportionally more.
    rows = {(k, m): tx for k, m, tx in result.rows}
    assert rows[("Original Kernel", 5478)] > 8 * rows[("Original Kernel", 567)]
