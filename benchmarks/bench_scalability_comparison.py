"""Section IV-B: SWPS3 thread scaling vs CUDASW++ GPU scaling.

"Using eight x86 cores will give SWPS3 roughly a two times increase in
speed; CUDASW++ will likewise see a twofold increase if two GPUs are
used."
"""

from repro.analysis import scalability_comparison


def test_scalability_comparison(benchmark, archive):
    result = benchmark.pedantic(
        scalability_comparison, kwargs={"swps3_sample_rows": 25_000},
        rounds=1, iterations=1,
    )
    archive(result)

    # The quoted equivalences hold.
    assert 1.7 < result.extra["swps3_doubling"] < 2.1
    assert 1.7 < result.extra["gpu_doubling"] < 2.1
    # "CUDASW++ outperforms SWPS3 at all points tested using one GPU card."
    assert result.extra["gpu_vs_8core"] > 1.0
