"""Table II: GCUPs for the six paper databases x devices x kernels."""

from repro.analysis import table2


def test_table2_databases(benchmark, archive):
    result = benchmark.pedantic(table2, rounds=1, iterations=1)
    archive(result)

    gains = result.extra["gains"]
    # Improved helps on every database and device.
    assert all(g > 0 for g in gains.values())
    # TAIR (0.06% over the threshold) shows the smallest gain.
    tair = [g for (name, _), g in gains.items() if "TAIR" in name]
    others = [g for (name, _), g in gains.items() if "TAIR" not in name]
    assert max(tair) <= min(others)
    # Gains are more pronounced on the C1060 (no caches to rescue the
    # original kernel).
    import numpy as np

    assert np.mean([g for (_, d), g in gains.items() if d == "C1060"]) > np.mean(
        [g for (_, d), g in gains.items() if d == "C2050"]
    )
