"""Figure 6: the Figure 5 sweep with the C2050's L1/L2 caches disabled.

"The improvements gained by the original kernel on a Tesla C2050 are
almost completely attributed to the cache."
"""

from repro.analysis import figure6


def test_fig6_cache_off(benchmark, archive):
    result = benchmark.pedantic(figure6, rounds=1, iterations=1)
    archive(result)

    assert result.extra["c2050_orig_cache_off"] < 0.85 * result.extra[
        "c2050_orig_cache_on"
    ]
    # With caches off, the original kernel's C2050 results fall toward the
    # C1060's at the bottom of the sweep.
    by = {}
    for dev, kernel, t, _, g, _ in result.rows:
        by[(dev, kernel, t)] = g
    bottom = min(t for _, _, t, _, _, _ in result.rows)
    assert by[("C2050", "original", bottom)] < 1.6 * by[
        ("C1060", "original", bottom)
    ]
