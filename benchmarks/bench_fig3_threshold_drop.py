"""Figure 3: Swiss-Prot GCUPs vs threshold with the original kernel.

The paper's 20 runs, decreasing the threshold by 100 each time — "even
small variations in the threshold result in large performance impacts".
"""

from repro.analysis import figure3


def test_fig3_threshold_drop(benchmark, archive):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)
    archive(result)

    gcups = result.column("gcups")
    assert all(a >= b for a, b in zip(gcups, gcups[1:]))
    assert gcups[0] / gcups[-1] > 1.5
    # ~2% of sequences in intra-task -> >50% of the running time (Sec. V).
    seq_pct = result.column("pct_seqs_intra")
    time_pct = result.column("pct_time_intra")
    near2 = min(range(len(seq_pct)), key=lambda i: abs(seq_pct[i] - 2.0))
    assert time_pct[near2] > 45.0
