"""Shared benchmark plumbing.

Every benchmark regenerates one exhibit of the paper (figure or table),
printing the rows/series the paper reports and archiving them under
``benchmarks/results/`` so the output survives pytest's capture.  Run with

    pytest benchmarks/ --benchmark-only -s

to see the tables inline.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def archive():
    """Print an experiment's rendering and archive it to disk."""

    def _archive(result, float_digits: int = 2) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = result.render(float_digits=float_digits)
        print("\n" + text)
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")

    return _archive
