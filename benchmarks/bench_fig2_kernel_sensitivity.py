"""Figure 2: kernel GCUPs vs the database length-distribution stddev.

Regenerates the paper's Figure 2 series — the inter-task kernel collapsing
under load imbalance while the intra-task kernel stays flat — and
benchmarks the driver (dominated by the group-scheduling closed forms).
"""

from repro.analysis import figure2
from repro.analysis.plot import ascii_chart


def test_fig2_kernel_sensitivity(benchmark, archive):
    result = benchmark(figure2)
    archive(result)
    print("\n" + ascii_chart(
        result.column("stddev"),
        {
            "inter-task": result.column("inter_gcups"),
            "intra-task": result.column("intra_gcups"),
        },
        width=56, height=14,
        x_label="stddev of database sequence lengths", y_label="GCUPs",
    ))

    inter = result.column("inter_gcups")
    intra = result.column("intra_gcups")
    # The paper's shape: inter-task collapses, intra-task flat, crossover.
    assert inter[0] / min(inter) > 4.0
    assert max(intra) / min(intra) < 1.15
    assert result.extra["crossover_std"] is not None
