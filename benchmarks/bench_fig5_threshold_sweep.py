"""Figure 5: GCUPs and intra-task time share vs % sequences compared by
the intra-task kernel — the four-curve sweep (devices x kernels)."""

from repro.analysis import figure5


def test_fig5_threshold_sweep(benchmark, archive):
    result = benchmark.pedantic(figure5, rounds=1, iterations=1)
    archive(result)

    gains = result.extra["gains"]
    # Paper: gains at least 17.5% (C1060) / 6.7% (C2050) at the default
    # threshold, growing to 67% / 39.3% as the intra share rises.
    assert gains["C1060"][0] > 8.0
    assert gains["C2050"][0] > 2.0
    assert gains["C1060"][1] > 2 * gains["C1060"][0]
    assert gains["C2050"][1] > 2 * gains["C2050"][0]
    # Improved never loses, anywhere.
    by = {}
    for dev, kernel, t, _, g, _ in result.rows:
        by[(dev, kernel, t)] = g
    for (dev, kernel, t), g in by.items():
        if kernel == "improved":
            assert g >= by[(dev, "original", t)]
