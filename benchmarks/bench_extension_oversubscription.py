"""Extension beyond the paper: oversubscribed inter-task grids.

The paper's launch-per-wave inter-task kernel collapses under length
variance (Figure 2) — the reason the dispatch threshold exists.  This
benchmark models the obvious CUDA remedy (grids of several waves with
hardware block backfill) and quantifies how much of the collapse it
removes.
"""

from repro.app.oversubscription import oversubscription_analysis


def test_extension_oversubscription(benchmark, archive):
    result = benchmark(oversubscription_analysis)
    archive(result)

    factors = result.extra["factors"]
    k1 = [row[1] for row in result.rows]
    k_hi = [row[len(factors)] for row in result.rows]
    # The paper's model collapses with variance...
    assert k1[0] > 2.0 * min(k1)
    # ...the oversubscribed grid stays within ~35% of its best everywhere.
    assert min(k_hi) > 0.65 * max(k_hi)
    # And dominates the one-wave launch at every point.
    assert all(hi >= lo * 0.99 for hi, lo in zip(k_hi, k1))
