"""Throughput comparison of the functional scoring engines.

Times the four selectable ``CudaSW.search`` backends on a 1,000-sequence
Swiss-Prot-shaped database (log-normal body plus titin-class heavy tail,
drawn from :data:`SWISSPROT_PROFILE`):

* ``scalar``       — ``sw_score_scalar`` per pair, timed on a stratified
  subset and extrapolated by residue count (the full run takes minutes);
* ``antidiagonal`` — ``sw_score_antidiagonal`` per pair over the full
  database;
* ``batched``      — the inter-sequence engine, at one worker and at
  ``cpu_count`` workers;
* ``striped``      — the same packed pipeline with the Farrar striped
  lane kernel and saturating 8/16-bit score tiers
  (:mod:`repro.engine.striped`);
* ``hetero``       — length-threshold dispatch: bulk groups on the
  striped engine, the long tail on the strip-sweep engine
  (:mod:`repro.engine.strips`), threshold auto-tuned per database.

``--tail N`` appends ``N`` guaranteed long sequences (>= 3,500
residues) to the database, making it bimodal the way real protein
databases are — the shape the heterogeneous dispatcher exists for and
the one the CI smoke gate uses to require ``hetero`` to beat the best
single engine.

Results are emitted through the observability layer's
:class:`~repro.obs.RunReport` writer: *every* engine runs under its own
``repro.obs.collect("full")`` session, so each entry in the report's
``engines`` section carries that engine's per-phase span seconds and
histogram summaries (per-group sweep seconds, padding efficiency,
lazy-F rounds), and the single-worker batched session additionally
provides the report's top-level ``spans``/``counters``/``histograms``.
The report embeds host/platform and NumPy version metadata plus a
monotonic ``run_index`` so entries stay comparable across machines and
runs.  Written to the repository root so the measured speedups travel
with the code.

Unless ``--no-history`` is given, the run also appends one JSONL entry
per engine to ``BENCH_history.jsonl`` — host-normalized MCUPs keyed by
``(engine, sequences, query_length)`` — which is what the CI
perf-regression gate (``python -m repro bench gate``, see
:mod:`repro.obs.perfgate`) compares against.  Run directly:

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py

(``--skip-scalar`` drops the slow extrapolated scalar reference, which
otherwise dominates wall time; ``--sequences``/``--out``/``--history``/
``--trace-out`` resize and redirect the run) or through pytest (a
reduced-size smoke variant):

    pytest benchmarks/bench_engine_throughput.py -s
"""

from __future__ import annotations

import argparse
import os
import pathlib
import platform
import tempfile
import time

import numpy as np

from repro import obs
from repro.alphabet import BLOSUM62, GapPenalty
from repro.engine import (
    DEFAULT_GROUP_SIZE,
    BatchedEngine,
    build_store,
    open_database,
)
from repro.sequence import (
    Database,
    SWISSPROT_PROFILE,
    Sequence,
    random_protein,
)
from repro.sw import sw_score_antidiagonal, sw_score_scalar

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_engine.json"
HISTORY_PATH = REPO_ROOT / "BENCH_history.jsonl"

DB_SEQUENCES = 1_000
QUERY_LENGTH = 200
SCALAR_SUBSET = 25  # scalar reference is timed on a subset, then extrapolated
SEED = 42


def build_database(
    n_sequences: int,
    rng: np.random.Generator,
    *,
    tail_sequences: int = 0,
    tail_length: int = 3_600,
) -> Database:
    """A materialized Swiss-Prot-shaped database of ``n_sequences``,
    plus ``tail_sequences`` guaranteed long outliers in
    ``[tail_length, 1.15 x tail_length)`` — the bimodal shape the
    heterogeneous dispatcher targets."""
    scale = n_sequences / SWISSPROT_PROFILE.n_sequences
    db = SWISSPROT_PROFILE.build(rng, scale=scale, materialize=True)
    if tail_sequences == 0:
        return db
    tail = [
        Sequence.random(
            f"tail{i}",
            int(rng.integers(tail_length, int(tail_length * 1.15))),
            rng,
        )
        for i in range(tail_sequences)
    ]
    return Database.from_sequences(list(db) + tail)


def host_metadata() -> dict:
    """Host/toolchain identity embedded in every emitted report, so
    BENCH_engine.json entries are comparable across machines."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _session_observation(instr) -> dict:
    """One engine session's phase/histogram summary for the report."""
    session = obs.RunReport.from_instrumentation(instr)
    histograms = {}
    for name, data in session.histograms.items():
        hist = obs.Histogram.from_dict(name, data)
        histograms[name] = {
            "count": hist.count,
            "sum": hist.sum,
            "p50": hist.p50,
            "p95": hist.p95,
            "max": hist.max,
        }
    return {
        "phases": session.span_seconds(),
        "histograms": histograms,
    }


def time_scalar_extrapolated(query, db: Database, gaps: GapPenalty) -> dict:
    """Time the scalar reference on a stratified subset, scale by residues.

    Every ``k``-th sequence of the length-diverse database is scored, so
    the subset sees the same length mix as the whole; scalar cost is
    proportional to scored cells, which makes residue-ratio extrapolation
    faithful.
    """
    stride = max(len(db) // SCALAR_SUBSET, 1)
    subset = np.arange(0, len(db), stride)[:SCALAR_SUBSET]
    subset_residues = int(db.lengths[subset].sum())

    def run():
        for i in subset:
            sw_score_scalar(query.codes, db.codes_of(int(i)), BLOSUM62, gaps)

    measured = _time(run)
    factor = db.total_residues / subset_residues
    return {
        "subset_sequences": int(len(subset)),
        "subset_residues": subset_residues,
        "subset_seconds": measured,
        "extrapolation_factor": factor,
        "seconds": measured * factor,
    }


def time_antidiagonal(query, db: Database, gaps: GapPenalty) -> float:
    def run():
        for i in range(len(db)):
            sw_score_antidiagonal(query.codes, db.codes_of(i), BLOSUM62, gaps)

    return _time(run)


def time_batched(query, db, gaps: GapPenalty, *,
                 workers: int, group_size: int,
                 lane_engine: str = "gotoh") -> tuple[float, object, object]:
    """Time one packed-engine configuration; returns ``(seconds,
    EngineReport, collection session)``.

    The search runs three times and the *minimum* wall time is
    reported: the packed sweeps finish in well under a second at smoke
    scale, where single-shot timings on shared runners swing tens of
    percent.  The first two runs are uninstrumented (the first doubling
    as warm-up); the last runs under its own ``collect("full")``
    session so the returned session's counters and histograms describe
    exactly one search.
    """
    engine = BatchedEngine(
        BLOSUM62, gaps, group_size=group_size, workers=workers,
        lane_engine=lane_engine,
    )
    holder = {}

    def run():
        holder["out"] = engine.search(query, db)

    warm_seconds = min(_time(run), _time(run))
    with obs.collect("full") as session:
        timed_seconds = _time(run)
    _, report = holder["out"]
    return min(warm_seconds, timed_seconds), report, session


def run_benchmark(
    *,
    n_sequences: int = DB_SEQUENCES,
    query_length: int = QUERY_LENGTH,
    group_size: int = DEFAULT_GROUP_SIZE,
    seed: int = SEED,
    skip_scalar: bool = False,
    run_index: int = 1,
    tail_sequences: int = 0,
    tail_length: int = 3_600,
) -> obs.RunReport:
    rng = np.random.default_rng(seed)
    db = build_database(
        n_sequences, rng,
        tail_sequences=tail_sequences, tail_length=tail_length,
    )
    query = random_protein(query_length, rng, id="bench-query")
    gaps = GapPenalty.cudasw_default()
    cells = query_length * db.total_residues
    n_workers = max(os.cpu_count() or 1, 2)

    # Every engine runs under its own collection session, so each
    # report entry carries that engine's phase and histogram breakdown.
    scalar = None
    scalar_obs = None
    if not skip_scalar:
        with obs.collect("full") as session:
            with session.span("pair_loop"):
                scalar = time_scalar_extrapolated(query, db, gaps)
        scalar_obs = _session_observation(session)
    with obs.collect("full") as session:
        with session.span("pair_loop"):
            anti_seconds = time_antidiagonal(query, db, gaps)
    anti_obs = _session_observation(session)
    # The single-worker batched session doubles as the report's
    # top-level spans/counters/histograms.
    batched_seconds, report, instr = time_batched(
        query, db, gaps, workers=1, group_size=group_size
    )
    batched_obs = _session_observation(instr)
    fanned_seconds, _, session = time_batched(
        query, db, gaps, workers=n_workers, group_size=group_size
    )
    fanned_obs = _session_observation(session)
    # The same batched configurations against a pre-packed .rdb store:
    # memmapped residues, stored geometry, and (fanned) index-reference
    # payloads to workers instead of pickled lane matrices.
    with tempfile.TemporaryDirectory() as store_dir:
        store = open_database(
            build_store(
                db, pathlib.Path(store_dir) / "bench.rdb",
                group_size=group_size,
            ).path
        )
        db_seconds, _, session = time_batched(
            query, store, gaps, workers=1, group_size=group_size
        )
        db_obs = _session_observation(session)
        db_fanned_seconds, _, session = time_batched(
            query, store, gaps, workers=n_workers, group_size=group_size
        )
        db_fanned_obs = _session_observation(session)
    striped_seconds, _, session = time_batched(
        query, db, gaps, workers=1, group_size=group_size,
        lane_engine="striped",
    )
    striped_obs = _session_observation(session)
    hetero_seconds, hetero_report, session = time_batched(
        query, db, gaps, workers=1, group_size=group_size,
        lane_engine="hetero",
    )
    hetero_obs = _session_observation(session)
    hetero_fanned_seconds, _, session = time_batched(
        query, db, gaps, workers=n_workers, group_size=group_size,
        lane_engine="hetero",
    )
    hetero_fanned_obs = _session_observation(session)

    def gcups(seconds: float) -> float:
        return cells / seconds / 1e9

    # Engine keys are canonical (independent of this host's cpu count)
    # so history entries from different machines gate against each
    # other; the fanned worker count is recorded alongside instead.
    engines = {}
    if scalar is not None:
        engines["scalar"] = {
            "seconds": scalar["seconds"],
            "gcups": gcups(scalar["seconds"]),
            "extrapolated_from": {
                k: v for k, v in scalar.items() if k != "seconds"
            },
            **scalar_obs,
        }
    engines["antidiagonal"] = {
        "seconds": anti_seconds,
        "gcups": gcups(anti_seconds),
        **anti_obs,
    }
    engines["batched"] = {
        "seconds": batched_seconds,
        "gcups": gcups(batched_seconds),
        **batched_obs,
    }
    engines["batched_fanned"] = {
        "seconds": fanned_seconds,
        "gcups": gcups(fanned_seconds),
        "workers": n_workers,
        **fanned_obs,
    }
    engines["batched_db"] = {
        "seconds": db_seconds,
        "gcups": gcups(db_seconds),
        **db_obs,
    }
    engines["batched_db_fanned"] = {
        "seconds": db_fanned_seconds,
        "gcups": gcups(db_fanned_seconds),
        "workers": n_workers,
        **db_fanned_obs,
    }
    engines["striped"] = {
        "seconds": striped_seconds,
        "gcups": gcups(striped_seconds),
        **striped_obs,
    }
    engines["hetero"] = {
        "seconds": hetero_seconds,
        "gcups": gcups(hetero_seconds),
        "split_threshold": hetero_report.split_threshold,
        "lane_engines": sorted(set(hetero_report.lane_engines)),
        **hetero_obs,
    }
    engines["hetero_fanned"] = {
        "seconds": hetero_fanned_seconds,
        "gcups": gcups(hetero_fanned_seconds),
        "workers": n_workers,
        **hetero_fanned_obs,
    }

    speedups = {
        "batched_vs_antidiagonal": anti_seconds / batched_seconds,
        "striped_vs_antidiagonal": anti_seconds / striped_seconds,
        "striped_vs_batched": batched_seconds / striped_seconds,
        "hetero_vs_striped": striped_seconds / hetero_seconds,
        "hetero_vs_batched": batched_seconds / hetero_seconds,
    }
    if scalar is not None:
        speedups["batched_vs_scalar"] = scalar["seconds"] / batched_seconds
        speedups["striped_vs_scalar"] = scalar["seconds"] / striped_seconds
        speedups["antidiagonal_vs_scalar"] = scalar["seconds"] / anti_seconds

    result = {
        "benchmark": "engine_throughput",
        "run_index": run_index,
        "host": host_metadata(),
        "database": {
            "profile": SWISSPROT_PROFILE.name,
            "sequences": len(db),
            "residues": db.total_residues,
            "min_length": int(db.lengths.min()),
            "median_length": float(np.median(db.lengths)),
            "max_length": int(db.lengths.max()),
            "tail_sequences": tail_sequences,
        },
        "query_length": query_length,
        "cells": cells,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "group_size": group_size,
        "skip_scalar": skip_scalar,
        "packing": {
            "n_groups": report.n_groups,
            "padding_efficiency": report.padding_efficiency,
        },
        "engines": engines,
        "speedups": speedups,
    }
    return obs.RunReport.from_instrumentation(
        instr, engine_report=report, meta=result
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--skip-scalar", action="store_true",
        help="skip the extrapolated scalar reference run (it dominates "
        "wall time); scalar-relative speedups are omitted from the report",
    )
    parser.add_argument(
        "--sequences", type=int, default=DB_SEQUENCES, metavar="N",
        help=f"database size (default {DB_SEQUENCES})",
    )
    parser.add_argument(
        "--tail", type=int, default=0, metavar="N",
        help="append N guaranteed long sequences (>= --tail-length "
        "residues) so the database is bimodal (default 0)",
    )
    parser.add_argument(
        "--tail-length", type=int, default=3_600, metavar="L",
        help="minimum length of the appended tail sequences "
        "(default 3600)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=OUTPUT_PATH, metavar="PATH",
        help="output report path (default BENCH_engine.json at repo root)",
    )
    parser.add_argument(
        "--history", type=pathlib.Path, default=HISTORY_PATH,
        metavar="PATH",
        help="JSONL history file the perf gate reads "
        "(default BENCH_history.jsonl at repo root)",
    )
    parser.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history file",
    )
    parser.add_argument(
        "--trace-out", type=pathlib.Path, default=None, metavar="PATH",
        help="also export the traced batched run as Chrome trace-event "
        "JSON (chrome://tracing / Perfetto)",
    )
    args = parser.parse_args(argv)
    from repro.obs import perfgate

    history = perfgate.read_history(args.history)
    run_index = perfgate.next_run_index(history)
    run_report = run_benchmark(
        n_sequences=args.sequences, skip_scalar=args.skip_scalar,
        run_index=run_index, tail_sequences=args.tail,
        tail_length=args.tail_length,
    )
    run_report.write(args.out)
    if not args.no_history:
        host_factor = perfgate.host_speed_factor()
        meta = run_report.meta
        entries = [
            perfgate.history_entry(
                engine=name,
                sequences=meta["database"]["sequences"],
                query_length=meta["query_length"],
                mcups=run["gcups"] * 1000.0,
                run_index=run_index,
                host_factor=host_factor,
            )
            for name, run in meta["engines"].items()
        ]
        perfgate.append_history(args.history, entries)
        print(
            f"appended run {run_index} ({len(entries)} engines, host "
            f"factor {host_factor:.3f}) to {args.history}"
        )
    if args.trace_out is not None:
        run_report.write_trace(args.trace_out)
        print(f"trace written to {args.trace_out}")
    result = run_report.meta
    engines = result["engines"]
    print(f"host: {result['host']['platform']} "
          f"(numpy {result['host']['numpy']})")
    print(f"database: {result['database']['sequences']} sequences, "
          f"{result['database']['residues']:,} residues "
          f"(lengths {result['database']['min_length']}.."
          f"{result['database']['max_length']})")
    print(f"query length: {result['query_length']}, "
          f"cells: {result['cells']:,}")
    for name, run in engines.items():
        print(f"  {name:24s} {run['seconds']:8.2f} s   "
              f"{run['gcups'] * 1000:8.3f} MCUPs")
    sp = result["speedups"]
    print(f"batched vs antidiagonal: {sp['batched_vs_antidiagonal']:.1f}x")
    print(f"striped vs antidiagonal: {sp['striped_vs_antidiagonal']:.1f}x")
    print(f"striped vs batched:      {sp['striped_vs_batched']:.2f}x")
    print(f"hetero vs striped:       {sp['hetero_vs_striped']:.2f}x "
          f"(split threshold "
          f"{engines['hetero']['split_threshold']})")
    if "batched_vs_scalar" in sp:
        print(f"batched vs scalar:       {sp['batched_vs_scalar']:.1f}x")
    print("batched phase breakdown (1-worker run):")
    for path, seconds in sorted(run_report.span_seconds().items()):
        print(f"  {path:32s} {seconds * 1e3:10.3f} ms")
    print(f"wrote {args.out}")


def test_batched_beats_antidiagonal():
    """Smoke-scale variant for pytest runs of the benchmarks directory."""
    run_report = run_benchmark(
        n_sequences=120, query_length=60, skip_scalar=True, run_index=7
    )
    assert run_report.meta["speedups"]["batched_vs_antidiagonal"] > 1.0
    assert run_report.meta["speedups"]["striped_vs_antidiagonal"] > 1.0
    # The traced batched run must expose the pack/sweep phase breakdown
    # and agree with the engine's packing accounting bit-exactly.
    phases = {p.split("/")[-1] for p in run_report.span_seconds()}
    assert {"pack", "fan_out", "sweep"} <= phases
    assert (
        run_report.counters["engine.pack.padded_cells"]
        == run_report.engine["padded_cells"]
    )
    # Every engine entry carries its own session's phase seconds and
    # histogram summaries; the packed engines must have observed the
    # per-group distributions.
    assert run_report.meta["run_index"] == 7
    engines = run_report.meta["engines"]
    for name, run in engines.items():
        assert "phases" in run and "histograms" in run, name
        assert run["phases"], f"{name} recorded no phase seconds"
    for name in ("batched", "batched_fanned", "striped"):
        hists = engines[name]["histograms"]
        assert hists["engine.sweep.group_seconds"]["count"] > 0
        assert hists["engine.pack.group_efficiency"]["count"] > 0
    assert engines["striped"]["histograms"][
        "engine.striped.lazy_f_rounds"
    ]["count"] > 0
    # Host metadata travels with every report (cross-machine comparisons).
    assert run_report.meta["host"]["numpy"] == np.__version__


def test_hetero_beats_single_engines_on_bimodal_db():
    """Smoke-scale version of the CI bimodal gate: with a guaranteed
    long tail, the heterogeneous dispatcher must beat every single
    engine, and its auto-tuned threshold must actually split."""
    run_report = run_benchmark(
        n_sequences=120, query_length=60, skip_scalar=True, run_index=8,
        tail_sequences=3,
    )
    engines = run_report.meta["engines"]
    hetero = engines["hetero"]
    assert hetero["lane_engines"] == ["striped", "strips"]
    # Equal-resources comparison: serial hetero vs the serial single
    # engines (the fanned configs race their own worker counts).
    best_single = max(
        run["gcups"] for name, run in engines.items()
        if name not in ("hetero", "hetero_fanned")
        and not name.endswith("_fanned")
    )
    assert hetero["gcups"] >= best_single, engines
    assert run_report.meta["database"]["max_length"] >= 3_600


if __name__ == "__main__":
    main()
