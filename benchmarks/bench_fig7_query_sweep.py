"""Figure 7: GCUPs vs query length on Swiss-Prot, including SWPS3.

The full CUDASW++ query ladder (144..5478) against the original and the
improved application on both devices, with the SWPS3 4-core-Xeon reference
curve (real striped algorithm, sampled and extrapolated).
"""

from repro.analysis import figure7
from repro.analysis.plot import ascii_chart


def test_fig7_query_sweep(benchmark, archive):
    result = benchmark.pedantic(
        figure7, kwargs={"swps3_sample_rows": 30_000}, rounds=1, iterations=1
    )
    archive(result)
    print("\n" + ascii_chart(
        result.column("query_len"),
        {
            "imp C2050": result.column("imp_c2050"),
            "orig C2050": result.column("orig_c2050"),
            "imp C1060": result.column("imp_c1060"),
            "orig C1060": result.column("orig_c1060"),
            "SWPS3": result.column("swps3"),
        },
        width=60, height=16, x_label="query length", y_label="GCUPs",
    ))

    for row in result.rows:
        # Both CUDASW++ generations beat SWPS3 at every point tested.
        assert min(row[1:5]) > row[5]
        # Improved above original on both devices.
        assert row[1] > row[2] and row[3] > row[4]
    # The consistent gain the paper quotes (~4 GCUPs / 25% on average).
    assert result.extra["avg_gain_c1060"] > 1.0
