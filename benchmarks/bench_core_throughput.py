"""Micro-benchmarks of the library's own hot paths.

Unlike the exhibit benchmarks (which regenerate the paper's numbers from
the device model), these measure the actual Python/numpy implementations:
the reference aligners, the striped SIMD loop, the functional kernel
simulators and the closed-form count paths.  Useful for keeping the
simulator itself fast enough to run the experiment sweeps.
"""

import numpy as np
import pytest

from repro.alphabet import BLOSUM62, GapPenalty
from repro.baselines import striped_smith_waterman
from repro.kernels import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    OriginalIntraTaskKernel,
)
from repro.sequence import PackedQueryProfile, random_protein
from repro.sw import sw_score_antidiagonal, sw_score_scalar

GP = GapPenalty.cudasw_default()


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(0)
    return random_protein(200, rng, id="q"), random_protein(300, rng, id="d")


def test_scalar_reference(benchmark, pair):
    q, d = pair
    score = benchmark.pedantic(
        sw_score_scalar, args=(q, d, BLOSUM62, GP), rounds=3, iterations=1
    )
    assert score > 0


def test_antidiagonal_reference(benchmark, pair):
    q, d = pair
    score = benchmark(sw_score_antidiagonal, q, d, BLOSUM62, GP)
    assert score == sw_score_scalar(q, d, BLOSUM62, GP)


def test_striped_simd(benchmark, pair):
    q, d = pair
    score, _ = benchmark(striped_smith_waterman, q, d, BLOSUM62, GP)
    assert score == sw_score_scalar(q, d, BLOSUM62, GP)


def test_original_kernel_simulation(benchmark, pair):
    q, d = pair
    kernel = OriginalIntraTaskKernel(threads_per_block=64)
    run = benchmark(kernel.run_pair, q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)


def test_improved_kernel_simulation(benchmark, pair):
    q, d = pair
    kernel = ImprovedIntraTaskKernel(ImprovedKernelConfig(threads_per_block=32))
    run = benchmark(kernel.run_pair, q.codes, d.codes, BLOSUM62, GP)
    assert run.score == sw_score_scalar(q, d, BLOSUM62, GP)


def test_bulk_closed_form_counts(benchmark):
    rng = np.random.default_rng(1)
    lengths = np.maximum(
        rng.lognormal(np.log(2000), 0.5, 10_000).astype(np.int64), 100
    )
    kernel = OriginalIntraTaskKernel()
    counts = benchmark(kernel.bulk_pair_counts, 567, lengths)
    assert counts.cells == int(567 * lengths.sum())


def test_packed_profile_construction(benchmark):
    rng = np.random.default_rng(2)
    q = random_protein(5478, rng)
    profile = benchmark(PackedQueryProfile, q.codes, BLOSUM62)
    assert profile.n_packs == 5478 // 4 + (1 if 5478 % 4 else 0)
