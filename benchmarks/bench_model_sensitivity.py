"""Calibration robustness: do the reproduced claims survive perturbation?

Not a paper exhibit but the reproduction's own due diligence: every
behavioural constant of the cost model is halved/doubled one at a time
and the three headline claims are re-evaluated.  A claim that only held
at the tuned constants would be an artifact; all must survive the grid.
"""

from repro.analysis import sensitivity_analysis


def test_model_sensitivity(benchmark, archive):
    result = benchmark.pedantic(
        sensitivity_analysis, kwargs={"scale": 0.5}, rounds=1, iterations=1
    )
    archive(result)

    assert result.extra["survived"] == result.extra["total"]
