#!/usr/bin/env python
"""Perf-regression gate over BENCH_history.jsonl (CI entry point).

Thin wrapper over :mod:`repro.obs.perfgate` — equivalent to
``python -m repro bench gate``.  Usage:

    PYTHONPATH=src python tools/perf_gate.py \
        [--history BENCH_history.jsonl] [--tolerance 0.2] \
        [--min-baseline 1]

Exits 0 when no gated key regressed, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.perfgate import (
    DEFAULT_MIN_BASELINE,
    DEFAULT_TOLERANCE,
    gate,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH"
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        metavar="FRACTION",
    )
    parser.add_argument(
        "--min-baseline", type=int, default=DEFAULT_MIN_BASELINE,
        metavar="N",
    )
    args = parser.parse_args(argv)
    outcome = gate(
        args.history,
        tolerance=args.tolerance,
        min_baseline=args.min_baseline,
    )
    print(outcome.render())
    return 0 if outcome.passed else 1


if __name__ == "__main__":
    sys.exit(main())
