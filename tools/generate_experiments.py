#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: paper-vs-measured for every exhibit.

Runs every experiment driver and the full claim checklist, then writes the
document.  Usage:

    python tools/generate_experiments.py [output-path]
"""

from __future__ import annotations

import sys
import time

from repro.analysis import (
    ablation_variants,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    future_work,
    param_exploration,
    scalability_comparison,
    sensitivity_analysis,
    table1,
    table2,
    threshold_tuning,
)
from repro.analysis.compare import (
    _ablation_checks,
    _fig2_checks,
    _fig3_checks,
    _fig5_checks,
    _fig6_checks,
    _fig7_checks,
    _param_checks,
    _table1_checks,
    _table2_checks,
    _threshold_checks,
)

PREAMBLE = """\
# EXPERIMENTS — paper vs. measured

Every figure and table of *Improving CUDASW++* (Hains et al., IPDPS 2011),
regenerated on this repository's device model.  Absolute GCUPs come from a
calibrated cost model (see DESIGN.md §2 and `repro/cuda/calibration.py`);
what is measured, not assumed, is everything structural: cell counts,
memory transactions, wavefront occupancy, strip passes, load imbalance,
cache hit regimes, lazy-F iteration counts.  The reproduction target is
therefore the *shape* of each exhibit — who wins, by roughly what factor,
where the crossovers fall — and each section below states the paper's
claim next to the measured value.

Regenerate this file with `python tools/generate_experiments.py`;
regenerate any single exhibit with its benchmark
(`pytest benchmarks/bench_<exhibit>*.py --benchmark-only -s`).

## Known, documented deviations

* **Absolute GCUPs** track the paper's anchors on the Tesla C1060
  (inter-task ~17, original intra-task ~1.5 GCUPs) because the model is
  calibrated to them; other absolute numbers follow from the model and
  land within ~±25% of the paper's, which is within the substitution's
  fidelity.
* **Table I absolute transaction counts** cannot be compared directly:
  the CUDA 3.2 profiler counted a subset of memory partitions with
  era-specific transaction semantics.  We report our own well-defined
  counters (32-byte segments under the documented coalescing rules); the
  reduction *ratio* is the reproduced quantity and lands far above the
  paper's ~50:1 floor.
* **Section VI shared-memory-only mode** *loses* ~5% in our model for the
  Swiss-Prot intra-task workload: the boundary buffer costs a full SM's
  shared memory and with it occupancy.  The paper proposed (but did not
  implement) this feature; the model suggests it only pays off for much
  shorter sequences than the intra-task kernel ever sees.
* **SWPS3's query-length sensitivity** is reproduced only weakly (the
  measured lazy-F share varies, but the modeled curve is flatter than the
  paper's).  SWPS3's adaptive 8-bit/16-bit precision scheme *is*
  implemented (`striped_smith_waterman_adaptive`, exact, with overflow
  reruns), but synthetic workloads almost never overflow the byte pass,
  so the Figure 7 curve keeps the measured-era 16-bit throughput
  calibration rather than crediting a 2x byte-lane speedup the paper's
  SWPS3 numbers clearly did not enjoy.
"""


def run() -> str:
    sections = []
    checks_all = []

    def add(result, checks, paper_note: str) -> None:
        checks_all.extend(checks)
        lines = [f"## {result.name}: {result.title}", "", paper_note, ""]
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
        lines.append("| claim | paper | measured | verdict |")
        lines.append("|---|---|---|---|")
        for c in checks:
            verdict = "**PASS**" if c.holds else "**FAIL**"
            lines.append(
                f"| {c.claim} | {c.paper_value} | {c.measured_value} | {verdict} |"
            )
        sections.append("\n".join(lines))

    r = figure2()
    add(r, _fig2_checks(r),
        "Paper: Figure 2 — the two kernels over log-normal databases of "
        "growing length variance; a load-balancing story.")
    r = figure3()
    add(r, _fig3_checks(r),
        "Paper: Figure 3 — CUDASW++ (original kernel) on Swiss-Prot while "
        "the threshold decreases by 100 per run.")
    r = figure5()
    add(r, _fig5_checks(r),
        "Paper: Figure 5(a)/(b) — GCUPs and intra-task time share vs the "
        "percentage of sequences compared by the intra-task kernel; gains "
        "17.5%..67% (C1060) and 6.7%..39.3% (C2050).")
    r = figure6()
    add(r, _fig6_checks(r),
        "Paper: Figure 6 — the same sweep with the C2050's L1/L2 disabled.")
    r = figure7()
    add(r, _fig7_checks(r),
        "Paper: Figure 7 — GCUPs vs query length (144..5478) on "
        "Swiss-Prot, with SWPS3 on four Xeon cores as the reference.")
    r = table1()
    add(r, _table1_checks(r),
        "Paper: Table I — total global-memory transactions of the two "
        "intra-task kernels (queries 567 and 5478). Paper values: improved "
        "13,828 / 4,233,197; original 28,345,xxx / 468,179,739 (partial "
        "profiler counters; see deviations above).")
    r = table2()
    add(r, _table2_checks(r),
        "Paper: Table II — six databases x devices x kernels across the "
        "query ladder; the gain tracks the fraction of sequences over the "
        "threshold.")
    r = param_exploration()
    add(r, _param_checks(r),
        "Paper: Section IV-A — threads/block in {64..320} x tile height "
        "in {4, 8}; strip height governs; 512 optimal on C1060, 1024 on "
        "C2050.")
    r = ablation_variants()
    add(r, _ablation_checks(r),
        "Paper: Section III — the incremental development of the improved "
        "kernel (shallow swap, hand unrolling, query profile).")
    r = threshold_tuning()
    add(r, _threshold_checks(r),
        "Paper: Section IV-B — TAIR at threshold 1500: 'close to a 4 "
        "GCUPs increase'; Section VI proposes automatic detection.")

    fw = future_work()
    fw_lines = [
        "## future_work: Section VI proposals, modeled",
        "",
        "Paper: Section VI lists five future optimizations; all are "
        "implemented and modeled here (no claims to check — the paper "
        "only proposes them).",
        "",
        "```",
        fw.render(),
        "```",
    ]
    sections.append("\n".join(fw_lines))

    sc = scalability_comparison()
    sections.append("\n".join([
        "## scalability_comparison: Section IV-B's cores-vs-GPUs equivalence",
        "",
        'Paper: "Using eight x86 cores will give SWPS3 roughly a two times '
        'increase in speed; CUDASW++ will likewise see a twofold increase '
        'if two GPUs are used."',
        "",
        "```",
        sc.render(),
        "```",
    ]))

    sens = sensitivity_analysis()
    sections.append("\n".join([
        "## sensitivity_analysis: robustness of the reproduction",
        "",
        "Not a paper exhibit: every behavioural constant of the cost model "
        "is perturbed x0.5..x2 one at a time and the three headline claims "
        "are re-evaluated — a reproduction that held only at the tuned "
        "constants would be an artifact.",
        "",
        "```",
        f"{sens.notes}",
        "```",
    ]))

    osub = __import__(
        "repro.app.oversubscription", fromlist=["oversubscription_analysis"]
    ).oversubscription_analysis()
    sections.append("\n".join([
        "## extension_oversubscription: beyond the paper",
        "",
        "A design point the paper leaves unexplored: oversubscribed "
        "inter-task grids (k waves per launch with hardware block "
        "backfill) recover most of Figure 2's load-imbalance collapse "
        "without the dispatch threshold's help.",
        "",
        "```",
        osub.render(),
        "```",
    ]))

    passed = sum(c.holds for c in checks_all)
    summary = (
        f"\n## Summary\n\n**{passed}/{len(checks_all)} encoded paper claims "
        f"hold** (generated {time.strftime('%Y-%m-%d')}, seed 0, full-scale "
        "synthetic databases).\n"
    )
    return PREAMBLE + "\n" + summary + "\n" + "\n\n".join(sections) + "\n"


if __name__ == "__main__":
    out = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    text = run()
    with open(out, "w") as fh:
        fh.write(text)
    print(f"wrote {out} ({len(text.splitlines())} lines)")
