"""Command-line interface.

Five subcommands::

    python -m repro align   A.fasta B.fasta        # pairwise alignment
    python -m repro search  query.fasta db.fasta   # database search + E-values
    python -m repro predict --profile swissprot    # modeled GCUPs report
    python -m repro exhibit figure3                # regenerate a paper exhibit
    python -m repro bench gate                     # CI perf-regression gate

Every subcommand accepts ``--help``.  The functions return process exit
codes and print to the handles passed in, so the test suite drives them
directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Sequence as TySequence

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, load_ncbi_matrix
from repro.app import CudaSW
from repro.cuda.device import DEVICES
from repro.sequence import read_fasta_file
from repro.sequence.database import Database
from repro.sequence.synthetic import PAPER_DATABASES

__all__ = ["main", "build_parser"]

_PROFILE_ALIASES = {
    "swissprot": "UniProtKB/Swiss-Prot",
    "tair": "TAIR Arabidopsis Proteins",
    "dog": "Ensembl Dog Proteins",
    "rat": "Ensembl Rat Proteins",
    "human": "NCBI RefSeq Human Proteins",
    "mouse": "NCBI RefSeq Mouse Proteins",
}

def _threshold_arg(value: str):
    """argparse type: a positive integer or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"threshold must be an integer or 'auto', got {value!r}"
        ) from None


_EXHIBITS = (
    "figure2", "figure3", "figure5", "figure6", "figure7",
    "table1", "table2", "param_exploration", "ablation_variants",
    "threshold_tuning", "future_work", "sensitivity_analysis",
    "scalability_comparison", "checks",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smith-Waterman database search on a CUDA device model "
        "(reproduction of 'Improving CUDASW++', IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scoring(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--matrix", default=None, metavar="FILE",
            help="NCBI-format substitution matrix file (default: BLOSUM62)",
        )
        p.add_argument("--gap-open", type=int, default=10)
        p.add_argument("--gap-extend", type=int, default=2)

    p_align = sub.add_parser("align", help="align two FASTA sequences")
    p_align.add_argument("query", help="FASTA file (first record is used)")
    p_align.add_argument("subject", help="FASTA file (first record is used)")
    p_align.add_argument(
        "--mode", choices=("local", "global"), default="local"
    )
    add_scoring(p_align)

    p_search = sub.add_parser("search", help="search a FASTA database")
    p_search.add_argument("query", help="query FASTA file")
    p_search.add_argument("database", help="database FASTA file")
    p_search.add_argument("--top", type=int, default=10)
    p_search.add_argument(
        "--max-evalue", type=float, default=None,
        help="only report hits at or below this E-value",
    )
    p_search.add_argument(
        "--device", choices=sorted(DEVICES), default="C1060"
    )
    p_search.add_argument(
        "--kernel", choices=("original", "improved"), default="improved"
    )
    p_search.add_argument(
        "--threshold", type=_threshold_arg, default=3072,
        help="dispatch threshold (integer, or 'auto' for Section VI "
        "detection)",
    )
    p_search.add_argument(
        "--engine",
        choices=("scalar", "antidiagonal", "batched", "striped", "hetero"),
        default="batched",
        help="functional score backend (all bit-identical): 'batched' "
        "scores whole length-sorted groups per NumPy sweep (default), "
        "'striped' runs the same packed pipeline with the Farrar "
        "striped lane kernel and saturating 8/16-bit score tiers, "
        "'hetero' splits the database at a length threshold — short "
        "sequences sweep as striped bulk groups, the long tail as "
        "bounded-padding strip groups (fastest on ragged databases; "
        "see --split-threshold), 'antidiagonal' is the per-pair "
        "wavefront aligner, 'scalar' the slow textbook reference",
    )
    p_search.add_argument(
        "--split-threshold", type=_threshold_arg, default=None,
        metavar="auto|N",
        help="hetero engine only: route sequences longer than N to the "
        "strip engine ('auto', the hetero default, tunes N from the "
        "database's packed-group geometry)",
    )
    p_search.add_argument(
        "--strip-cell-cost", type=float, default=None, metavar="C",
        help="hetero engine only: relative cost of one strip-engine "
        "cell vs a striped bulk cell in the 'auto' split cost model "
        "(default: the measured constant; recalibrate per machine)",
    )
    p_search.add_argument(
        "--striped-col-overhead", type=float, default=None, metavar="C",
        help="hetero engine only: fixed per-column overhead charged to "
        "striped bulk groups in the 'auto' split cost model (default: "
        "the measured constant)",
    )
    p_search.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the batched/striped engines' group "
        "fan-out (1 = serial)",
    )
    p_search.add_argument(
        "--group-size", type=int, default=None, metavar="N",
        help="lanes per packed group (default: the engine's tuned "
        "default; batched/striped engines only)",
    )
    p_search.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="crash-safe write-ahead journal: append each completed "
        "group's scores to PATH (fsync'd, CRC-checked) so a killed "
        "search can be resumed with --resume (batched engine only)",
    )
    p_search.add_argument(
        "--resume", action="store_true",
        help="replay the --checkpoint journal (content-validated "
        "against this query/database/scoring) and recompute only the "
        "unjournaled groups; scores are bit-identical to an "
        "uninterrupted run",
    )
    p_search.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="cap any single group's estimated sweep working set at MB "
        "mebibytes; oversized groups are split at packing time instead "
        "of OOM-killing the process (batched engine only)",
    )
    p_search.add_argument(
        "--scores-out", metavar="PATH", default=None,
        help="write every sequence's score as TSV to PATH (atomic "
        "temp-file-plus-rename write)",
    )
    p_search.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry any dispatched work unit running longer "
        "than this (batched engine with --workers > 1; default: never)",
    )
    p_search.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="pool retries per failed/timed-out work unit before it is "
        "recomputed serially (batched engine; default: 2)",
    )
    p_search.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="whole-search wall-clock budget; on expiry the search "
        "aborts with the partial completion summary (batched engine; "
        "default: none)",
    )
    p_search.add_argument(
        "--profile", action="store_true",
        help="trace the search and print a span tree (per-phase timings) "
        "plus the counter table after the hits",
    )
    p_search.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run's merged observability report (spans + "
        "counters + histograms + packing + timing model) as JSON to PATH",
    )
    p_search.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export the traced span forest (parent search plus "
        "per-worker lanes) as Chrome trace-event JSON to PATH — load "
        "it in chrome://tracing or https://ui.perfetto.dev",
    )
    p_search.add_argument(
        "--mem-phases", action="store_true",
        help="track per-phase tracemalloc peak memory "
        "(engine.mem.<phase>.peak_bytes counters; implies tracing)",
    )
    add_scoring(p_search)

    p_predict = sub.add_parser(
        "predict", help="model a search's run time and GCUPs"
    )
    src = p_predict.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--profile", choices=sorted(_PROFILE_ALIASES),
        help="one of the paper's database profiles",
    )
    src.add_argument("--database", help="database FASTA file")
    p_predict.add_argument("--query-length", type=int, default=567)
    p_predict.add_argument(
        "--device", choices=sorted(DEVICES), default="C1060"
    )
    p_predict.add_argument(
        "--kernel", choices=("original", "improved"), default="improved"
    )
    p_predict.add_argument(
        "--threshold", type=_threshold_arg, default=3072,
        help="dispatch threshold (integer, or 'auto')",
    )
    p_predict.add_argument("--seed", type=int, default=0)
    p_predict.add_argument(
        "--explain", action="store_true",
        help="show the cost model's per-kernel time breakdown",
    )
    p_predict.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink a profile database by this factor",
    )

    p_exhibit = sub.add_parser(
        "exhibit", help="regenerate a figure/table of the paper"
    )
    p_exhibit.add_argument("name", choices=_EXHIBITS)
    p_exhibit.add_argument("--seed", type=int, default=0)

    p_bench = sub.add_parser(
        "bench", help="benchmark history utilities (perf-regression gate)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_gate = bench_sub.add_parser(
        "gate",
        help="compare the newest benchmark run in the history file "
        "against the rolling baseline and fail on regression",
    )
    p_gate.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH",
        help="JSONL history written by benchmarks/"
        "bench_engine_throughput.py (default: %(default)s)",
    )
    p_gate.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="allowed fractional drop below the baseline median before "
        "the gate fails (default: 0.2)",
    )
    p_gate.add_argument(
        "--min-baseline", type=int, default=None, metavar="N",
        help="baseline entries required before a key is gated; keys "
        "with fewer prior runs are skipped (default: 1)",
    )

    return parser


def _scoring(args) -> tuple:
    matrix = (
        BLOSUM62 if args.matrix is None else load_ncbi_matrix(args.matrix)
    )
    gaps = GapPenalty.from_open_extend(args.gap_open, args.gap_extend)
    return matrix, gaps


def _first_record(path: str):
    records = read_fasta_file(path)
    if not records:
        raise SystemExit(f"no FASTA records in {path}")
    return records[0]


def _cmd_align(args, out: IO[str]) -> int:
    from repro.sw import nw_align, sw_align

    matrix, gaps = _scoring(args)
    query = _first_record(args.query)
    subject = _first_record(args.subject)
    align = sw_align if args.mode == "local" else nw_align
    alignment = align(query, subject, matrix, gaps)
    print(f"# {args.mode} alignment of {query.id} vs {subject.id}", file=out)
    print(alignment.pretty(matrix), file=out)
    print(f"cigar: {alignment.cigar}", file=out)
    return 0


def _fault_policy(args):
    """A FaultPolicy from the search flags, or None when all defaulted."""
    if args.timeout is None and args.retries is None and args.deadline is None:
        return None
    from repro.engine import FaultPolicy

    kwargs = {"timeout": args.timeout, "deadline": args.deadline}
    if args.retries is not None:
        kwargs["retries"] = args.retries
    return FaultPolicy(**kwargs)


def _cmd_search(args, out: IO[str]) -> int:
    from repro import obs
    from repro.engine import (
        CheckpointError,
        MemoryBudget,
        SearchDeadlineExceeded,
    )
    from repro.stats import ScoreStatistics, annotate_hits

    matrix, gaps = _scoring(args)
    query = _first_record(args.query)
    db = Database.from_sequences(read_fasta_file(args.database))
    app = CudaSW(
        DEVICES[args.device],
        intra_kernel=args.kernel,
        threshold=args.threshold,
        matrix=matrix,
        gaps=gaps,
    )
    try:
        fault_policy = _fault_policy(args)
        memory_budget = (
            None
            if args.memory_budget_mb is None
            else MemoryBudget.from_megabytes(args.memory_budget_mb)
        )
        if args.resume and args.checkpoint is None:
            raise ValueError("--resume requires --checkpoint PATH")
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    # --profile/--metrics-out/--trace-out/--mem-phases own the
    # collection session at CLI level so the E-value ranking phase is
    # traced alongside the search itself.
    observing = (
        args.profile
        or args.metrics_out is not None
        or args.trace_out is not None
        or args.mem_phases
    )
    with obs.collect(
        "full" if observing else "off", memory=args.mem_phases
    ) as instr:
        try:
            result, report = app.search(
                query, db, engine=args.engine, workers=args.workers,
                group_size=args.group_size, fault_policy=fault_policy,
                checkpoint=args.checkpoint, resume=args.resume,
                memory_budget=memory_budget,
                split_threshold=args.split_threshold,
                strip_cell_cost=args.strip_cell_cost,
                striped_column_overhead=args.striped_col_overhead,
            )
        except SearchDeadlineExceeded as exc:
            done = (
                int(exc.completed_mask.sum())
                if exc.completed_mask is not None
                else 0
            )
            print(
                f"error: {exc} ({done}/{len(db)} sequences scored)",
                file=out,
            )
            if args.checkpoint is not None:
                print(
                    f"# checkpoint journal: {args.checkpoint} — completed "
                    "groups are saved; rerun with --resume to finish",
                    file=out,
                )
            return 3
        except CheckpointError as exc:
            print(f"error: {exc}", file=out)
            return 2
        except KeyboardInterrupt:
            if args.checkpoint is not None:
                print(
                    f"# interrupted; checkpoint journal: {args.checkpoint} "
                    "— completed groups are saved; rerun with --resume to "
                    "finish",
                    file=out,
                )
            return 130
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        stats = ScoreStatistics(matrix, gaps)
        with instr.span("rank"):
            hits = annotate_hits(
                result, stats, len(query), k=args.top,
                max_evalue=args.max_evalue,
            )
    run_report = None
    if observing:
        run_report = obs.RunReport.from_instrumentation(
            instr,
            engine_report=app.last_engine_report,
            search_report=report,
            meta={
                "query_id": query.id,
                "query_length": len(query),
                "database": args.database,
                "database_sequences": len(db),
                "database_residues": db.total_residues,
                "engine": args.engine,
                "workers": args.workers,
                "device": report.device,
            },
        )
    print(
        f"# query {query.id} ({len(query)} aa) vs {args.database} "
        f"({len(db)} sequences, {db.total_residues} residues)",
        file=out,
    )
    print(f"{'hit':<24} {'len':>6} {'score':>6} {'bits':>7} {'E-value':>10}",
          file=out)
    for a in hits:
        print(
            f"{a.hit.id:<24} {a.hit.length:>6} {a.hit.score:>6} "
            f"{a.bit_score:>7.1f} {a.evalue:>10.2g}",
            file=out,
        )
    if not hits:
        print("(no hits pass the E-value cutoff)", file=out)
    print(
        f"# modeled on {report.device}: {report.gcups:.2f} GCUPs, "
        f"{report.intra_time_fraction:.0%} of time in the intra-task kernel",
        file=out,
    )
    if app.last_engine_report is not None:
        er = app.last_engine_report
        print(
            f"# scored by {args.engine} engine: {er.n_groups} groups of "
            f"<= {er.group_size} lanes, padding efficiency "
            f"{er.padding_efficiency:.3f}",
            file=out,
        )
    else:
        print(f"# scored by {args.engine} engine", file=out)
    if args.scores_out is not None:
        print(f"# scores written to {result.write_tsv(args.scores_out)}",
              file=out)
    if args.profile:
        print(file=out)
        print(run_report.render_profile(), file=out)
    if args.metrics_out is not None:
        path = run_report.write(args.metrics_out)
        print(f"# metrics written to {path}", file=out)
    if args.trace_out is not None:
        path = run_report.write_trace(args.trace_out)
        print(
            f"# trace written to {path} (load in chrome://tracing or "
            "https://ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_bench(args, out: IO[str]) -> int:
    from repro.obs.perfgate import DEFAULT_MIN_BASELINE, DEFAULT_TOLERANCE
    from repro.obs.perfgate import gate as perf_gate

    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    min_baseline = (
        DEFAULT_MIN_BASELINE
        if args.min_baseline is None
        else args.min_baseline
    )
    outcome = perf_gate(
        args.history, tolerance=tolerance, min_baseline=min_baseline
    )
    print(outcome.render(), file=out)
    return 0 if outcome.passed else 1


def _cmd_predict(args, out: IO[str]) -> int:
    if args.profile:
        profile = next(
            p for p in PAPER_DATABASES
            if p.name == _PROFILE_ALIASES[args.profile]
        )
        rng = np.random.default_rng(args.seed)
        db = profile.build(rng, scale=args.scale)
    else:
        db = Database.from_sequences(read_fasta_file(args.database))
    app = CudaSW(
        DEVICES[args.device], intra_kernel=args.kernel, threshold=args.threshold
    )
    r = app.predict(args.query_length, db)
    print(f"# database: {db.name}", file=out)
    print(f"#   {db.stats()}", file=out)
    print(
        f"#   {100 * r.fraction_over_threshold:.2f}% of sequences over "
        f"threshold {r.threshold}"
        + (" (auto-detected)" if args.threshold == "auto" else ""),
        file=out,
    )
    print(f"device:               {r.device}", file=out)
    print(f"intra-task kernel:    {args.kernel}", file=out)
    print(f"query length:         {r.query_length}", file=out)
    print(f"modeled GCUPs:        {r.gcups:.2f}", file=out)
    print(f"total time:           {r.total_time * 1e3:.1f} ms", file=out)
    print(f"  inter-task:         {r.inter_time * 1e3:.1f} ms "
          f"({r.inter_launches} launches)", file=out)
    print(f"  intra-task:         {r.intra_time * 1e3:.1f} ms "
          f"({100 * r.intra_time_fraction:.1f}% of total)", file=out)
    print(f"  host->device copy:  {r.transfer_time * 1e3:.1f} ms", file=out)
    print(f"load-balance eff.:    {r.load_balance_efficiency:.3f}", file=out)
    if args.explain:
        _explain(app, r, db, out)
    return 0


def _explain(app: CudaSW, report, db, out: IO[str]) -> None:
    """Re-run the cost model per dispatch side and print the breakdown."""
    from repro.app.scheduler import schedule_inter_task

    threshold = report.threshold
    below, above = db.split_by_threshold(threshold)
    if below is not None:
        schedule = schedule_inter_task(
            report.query_length, below, app.inter_kernel, app.device
        )
        t = app.cost.kernel_time(
            schedule.counts,
            app.inter_kernel.launch_config(
                max(schedule.group_size // app.inter_kernel.threads_per_block, 1)
            ),
            app.inter_kernel.cache_profile(
                report.query_length, int(below.lengths.mean())
            ),
            launches=schedule.n_launches,
        )
        print("\ninter-task kernel breakdown:", file=out)
        print(t.render(), file=out)
    if above is not None:
        counts = app.intra_kernel.bulk_pair_counts(
            report.query_length, above.lengths
        )
        t = app.cost.kernel_time(
            counts,
            app.intra_kernel.launch_config(len(above)),
            app.intra_kernel.cache_profile(
                report.query_length, int(above.lengths.mean())
            ),
        )
        print("\nintra-task kernel breakdown:", file=out)
        print(t.render(), file=out)


def _cmd_exhibit(args, out: IO[str]) -> int:
    import repro.analysis as analysis

    if args.name == "checks":
        from repro.analysis.compare import render_checks, run_all_checks

        print(render_checks(run_all_checks(args.seed)), file=out)
        return 0
    driver = getattr(analysis, args.name)
    print(driver(args.seed).render(), file=out)
    return 0


def main(argv: TySequence[str] | None = None, out: IO[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "align": _cmd_align,
        "search": _cmd_search,
        "predict": _cmd_predict,
        "exhibit": _cmd_exhibit,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args, out)
