"""Command-line interface.

Six subcommands::

    python -m repro align   A.fasta B.fasta        # pairwise alignment
    python -m repro search  query.fasta db.fasta   # database search + E-values
    python -m repro predict --profile swissprot    # modeled GCUPs report
    python -m repro exhibit figure3                # regenerate a paper exhibit
    python -m repro bench gate                     # CI perf-regression gate
    python -m repro db build db.fasta db.rdb       # pre-packed binary store

Every subcommand accepts ``--help``.  The functions return process exit
codes and print to the handles passed in, so the test suite drives them
directly.  Exit codes: 0 success, 2 usage/stale-checkpoint errors, 3
search deadline exceeded, 4 a ``.rdb`` database store was refused
(see ``docs/db-format.md``), 130 interrupted.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Sequence as TySequence

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, load_ncbi_matrix
from repro.app import CudaSW
from repro.cuda.device import DEVICES
from repro.sequence import read_fasta_file
from repro.sequence.database import Database
from repro.sequence.synthetic import PAPER_DATABASES

__all__ = ["main", "build_parser"]

_PROFILE_ALIASES = {
    "swissprot": "UniProtKB/Swiss-Prot",
    "tair": "TAIR Arabidopsis Proteins",
    "dog": "Ensembl Dog Proteins",
    "rat": "Ensembl Rat Proteins",
    "human": "NCBI RefSeq Human Proteins",
    "mouse": "NCBI RefSeq Mouse Proteins",
}

def _threshold_arg(value: str):
    """argparse type: a positive integer or the literal 'auto'."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"threshold must be an integer or 'auto', got {value!r}"
        ) from None


_EXHIBITS = (
    "figure2", "figure3", "figure5", "figure6", "figure7",
    "table1", "table2", "param_exploration", "ablation_variants",
    "threshold_tuning", "future_work", "sensitivity_analysis",
    "scalability_comparison", "checks",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Smith-Waterman database search on a CUDA device model "
        "(reproduction of 'Improving CUDASW++', IPDPS 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scoring(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--matrix", default=None, metavar="FILE",
            help="NCBI-format substitution matrix file (default: BLOSUM62)",
        )
        p.add_argument("--gap-open", type=int, default=10)
        p.add_argument("--gap-extend", type=int, default=2)

    p_align = sub.add_parser("align", help="align two FASTA sequences")
    p_align.add_argument("query", help="FASTA file (first record is used)")
    p_align.add_argument("subject", help="FASTA file (first record is used)")
    p_align.add_argument(
        "--mode", choices=("local", "global"), default="local"
    )
    add_scoring(p_align)

    p_search = sub.add_parser("search", help="search a FASTA database")
    p_search.add_argument("query", help="query FASTA file")
    p_search.add_argument(
        "database", nargs="?", default=None,
        help="database FASTA file (optional when --db names a store; "
        "required as the --db-fallback source)",
    )
    p_search.add_argument(
        "--db", metavar="PATH", default=None,
        help="search a pre-packed .rdb database store (repro db build) "
        "instead of re-reading/re-packing the FASTA: residues are "
        "memory-mapped, the stored group geometry is reused, and pool "
        "workers receive group references instead of pickled arrays; "
        "scores are bit-identical to the FASTA path.  A store that "
        "fails validation exits with code 4 (see repro db verify)",
    )
    p_search.add_argument(
        "--db-verify", choices=("fast", "deep"), default="fast",
        help="store validation tier at open: 'fast' (default) checks "
        "the header and every index section, 'deep' additionally "
        "CRC-walks the residue blob and recomputes the content "
        "fingerprint and geometry",
    )
    p_search.add_argument(
        "--db-fallback", action="store_true",
        help="degrade gracefully when the --db store is refused: warn, "
        "then build the database in memory from the FASTA positional "
        "argument (the pre-store pack path) instead of exiting 4",
    )
    p_search.add_argument("--top", type=int, default=10)
    p_search.add_argument(
        "--max-evalue", type=float, default=None,
        help="only report hits at or below this E-value",
    )
    p_search.add_argument(
        "--device", choices=sorted(DEVICES), default="C1060"
    )
    p_search.add_argument(
        "--kernel", choices=("original", "improved"), default="improved"
    )
    p_search.add_argument(
        "--threshold", type=_threshold_arg, default=3072,
        help="dispatch threshold (integer, or 'auto' for Section VI "
        "detection)",
    )
    p_search.add_argument(
        "--engine",
        choices=("scalar", "antidiagonal", "batched", "striped", "hetero"),
        default="batched",
        help="functional score backend (all bit-identical): 'batched' "
        "scores whole length-sorted groups per NumPy sweep (default), "
        "'striped' runs the same packed pipeline with the Farrar "
        "striped lane kernel and saturating 8/16-bit score tiers, "
        "'hetero' splits the database at a length threshold — short "
        "sequences sweep as striped bulk groups, the long tail as "
        "bounded-padding strip groups (fastest on ragged databases; "
        "see --split-threshold), 'antidiagonal' is the per-pair "
        "wavefront aligner, 'scalar' the slow textbook reference",
    )
    p_search.add_argument(
        "--split-threshold", type=_threshold_arg, default=None,
        metavar="auto|N",
        help="hetero engine only: route sequences longer than N to the "
        "strip engine ('auto', the hetero default, tunes N from the "
        "database's packed-group geometry)",
    )
    p_search.add_argument(
        "--strip-cell-cost", type=float, default=None, metavar="C",
        help="hetero engine only: relative cost of one strip-engine "
        "cell vs a striped bulk cell in the 'auto' split cost model "
        "(default: the measured constant; recalibrate per machine)",
    )
    p_search.add_argument(
        "--striped-col-overhead", type=float, default=None, metavar="C",
        help="hetero engine only: fixed per-column overhead charged to "
        "striped bulk groups in the 'auto' split cost model (default: "
        "the measured constant)",
    )
    p_search.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the batched/striped engines' group "
        "fan-out (1 = serial)",
    )
    p_search.add_argument(
        "--group-size", type=int, default=None, metavar="N",
        help="lanes per packed group (default: the engine's tuned "
        "default; batched/striped engines only)",
    )
    p_search.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="crash-safe write-ahead journal: append each completed "
        "group's scores to PATH (fsync'd, CRC-checked) so a killed "
        "search can be resumed with --resume (batched engine only)",
    )
    p_search.add_argument(
        "--resume", action="store_true",
        help="replay the --checkpoint journal (content-validated "
        "against this query/database/scoring) and recompute only the "
        "unjournaled groups; scores are bit-identical to an "
        "uninterrupted run",
    )
    p_search.add_argument(
        "--memory-budget-mb", type=float, default=None, metavar="MB",
        help="cap any single group's estimated sweep working set at MB "
        "mebibytes; oversized groups are split at packing time instead "
        "of OOM-killing the process (batched engine only)",
    )
    p_search.add_argument(
        "--scores-out", metavar="PATH", default=None,
        help="write every sequence's score as TSV to PATH (atomic "
        "temp-file-plus-rename write)",
    )
    p_search.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="abandon and retry any dispatched work unit running longer "
        "than this (batched engine with --workers > 1; default: never)",
    )
    p_search.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="pool retries per failed/timed-out work unit before it is "
        "recomputed serially (batched engine; default: 2)",
    )
    p_search.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="whole-search wall-clock budget; on expiry the search "
        "aborts with the partial completion summary (batched engine; "
        "default: none)",
    )
    p_search.add_argument(
        "--profile", action="store_true",
        help="trace the search and print a span tree (per-phase timings) "
        "plus the counter table after the hits",
    )
    p_search.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the run's merged observability report (spans + "
        "counters + histograms + packing + timing model) as JSON to PATH",
    )
    p_search.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="export the traced span forest (parent search plus "
        "per-worker lanes) as Chrome trace-event JSON to PATH — load "
        "it in chrome://tracing or https://ui.perfetto.dev",
    )
    p_search.add_argument(
        "--mem-phases", action="store_true",
        help="track per-phase tracemalloc peak memory "
        "(engine.mem.<phase>.peak_bytes counters; implies tracing)",
    )
    add_scoring(p_search)

    p_predict = sub.add_parser(
        "predict", help="model a search's run time and GCUPs"
    )
    src = p_predict.add_mutually_exclusive_group(required=True)
    src.add_argument(
        "--profile", choices=sorted(_PROFILE_ALIASES),
        help="one of the paper's database profiles",
    )
    src.add_argument("--database", help="database FASTA file")
    p_predict.add_argument("--query-length", type=int, default=567)
    p_predict.add_argument(
        "--device", choices=sorted(DEVICES), default="C1060"
    )
    p_predict.add_argument(
        "--kernel", choices=("original", "improved"), default="improved"
    )
    p_predict.add_argument(
        "--threshold", type=_threshold_arg, default=3072,
        help="dispatch threshold (integer, or 'auto')",
    )
    p_predict.add_argument("--seed", type=int, default=0)
    p_predict.add_argument(
        "--explain", action="store_true",
        help="show the cost model's per-kernel time breakdown",
    )
    p_predict.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink a profile database by this factor",
    )

    p_exhibit = sub.add_parser(
        "exhibit", help="regenerate a figure/table of the paper"
    )
    p_exhibit.add_argument("name", choices=_EXHIBITS)
    p_exhibit.add_argument("--seed", type=int, default=0)

    p_db = sub.add_parser(
        "db", help="pre-packed binary database stores (.rdb)"
    )
    db_sub = p_db.add_subparsers(dest="db_command", required=True)
    p_db_build = db_sub.add_parser(
        "build",
        help="pack a FASTA database into an .rdb store, once, offline: "
        "encoded residues, group geometry, id index and per-section "
        "CRCs behind a fingerprinted header, written atomically "
        "(temp + fsync + rename) so a crash can never leave a "
        "readable partial store",
    )
    p_db_build.add_argument("fasta", help="database FASTA file (streamed)")
    p_db_build.add_argument("store", help="output .rdb path")
    p_db_build.add_argument(
        "--group-size", type=int, default=None, metavar="N",
        help="lanes per packed group persisted in the geometry tables "
        "(default: the engine's tuned default); searches with a "
        "different --group-size re-plan from the index",
    )
    p_db_build.add_argument(
        "--comment", default="", metavar="TEXT",
        help="free-text note stored in the (checksum-exempt) 64-byte "
        "header comment field",
    )
    p_db_verify = db_sub.add_parser(
        "verify",
        help="validate an .rdb store; exits 4 if it cannot be trusted",
    )
    p_db_verify.add_argument("store", help=".rdb path")
    p_db_verify.add_argument(
        "--deep", action="store_true",
        help="full-CRC walk: also checksum the residue blob and "
        "recompute the content fingerprint and group geometry "
        "(O(database), not O(index))",
    )
    p_db_info = db_sub.add_parser(
        "info",
        help="print an .rdb store's header, fingerprint and length "
        "statistics (reads the index only, never the residue blob)",
    )
    p_db_info.add_argument("store", help=".rdb path")

    p_bench = sub.add_parser(
        "bench", help="benchmark history utilities (perf-regression gate)"
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_gate = bench_sub.add_parser(
        "gate",
        help="compare the newest benchmark run in the history file "
        "against the rolling baseline and fail on regression",
    )
    p_gate.add_argument(
        "--history", default="BENCH_history.jsonl", metavar="PATH",
        help="JSONL history written by benchmarks/"
        "bench_engine_throughput.py (default: %(default)s)",
    )
    p_gate.add_argument(
        "--tolerance", type=float, default=None, metavar="FRACTION",
        help="allowed fractional drop below the baseline median before "
        "the gate fails (default: 0.2)",
    )
    p_gate.add_argument(
        "--min-baseline", type=int, default=None, metavar="N",
        help="baseline entries required before a key is gated; keys "
        "with fewer prior runs are skipped (default: 1)",
    )

    return parser


def _scoring(args) -> tuple:
    matrix = (
        BLOSUM62 if args.matrix is None else load_ncbi_matrix(args.matrix)
    )
    gaps = GapPenalty.from_open_extend(args.gap_open, args.gap_extend)
    return matrix, gaps


def _first_record(path: str):
    records = read_fasta_file(path)
    if not records:
        raise SystemExit(f"no FASTA records in {path}")
    return records[0]


def _cmd_align(args, out: IO[str]) -> int:
    from repro.sw import nw_align, sw_align

    matrix, gaps = _scoring(args)
    query = _first_record(args.query)
    subject = _first_record(args.subject)
    align = sw_align if args.mode == "local" else nw_align
    alignment = align(query, subject, matrix, gaps)
    print(f"# {args.mode} alignment of {query.id} vs {subject.id}", file=out)
    print(alignment.pretty(matrix), file=out)
    print(f"cigar: {alignment.cigar}", file=out)
    return 0


def _fault_policy(args):
    """A FaultPolicy from the search flags, or None when all defaulted."""
    if args.timeout is None and args.retries is None and args.deadline is None:
        return None
    from repro.engine import FaultPolicy

    kwargs = {"timeout": args.timeout, "deadline": args.deadline}
    if args.retries is not None:
        kwargs["retries"] = args.retries
    return FaultPolicy(**kwargs)


def _cmd_search(args, out: IO[str]) -> int:
    from repro import obs
    from repro.engine import (
        CheckpointError,
        DatabaseFormatError,
        DatabaseStore,
        MemoryBudget,
        SearchDeadlineExceeded,
        open_database,
    )
    from repro.stats import ScoreStatistics, annotate_hits

    if args.database is None and args.db is None:
        print(
            "error: provide a database FASTA file or --db STORE",
            file=out,
        )
        return 2
    if args.db_fallback and (args.db is None or args.database is None):
        print(
            "error: --db-fallback needs both --db (the store to try) and "
            "the database FASTA positional (the fallback source)",
            file=out,
        )
        return 2
    matrix, gaps = _scoring(args)
    query = _first_record(args.query)
    db_label = args.db if args.db is not None else args.database
    app = CudaSW(
        DEVICES[args.device],
        intra_kernel=args.kernel,
        threshold=args.threshold,
        matrix=matrix,
        gaps=gaps,
    )
    try:
        fault_policy = _fault_policy(args)
        memory_budget = (
            None
            if args.memory_budget_mb is None
            else MemoryBudget.from_megabytes(args.memory_budget_mb)
        )
        if args.resume and args.checkpoint is None:
            raise ValueError("--resume requires --checkpoint PATH")
    except ValueError as exc:
        print(f"error: {exc}", file=out)
        return 2
    # --profile/--metrics-out/--trace-out/--mem-phases own the
    # collection session at CLI level so the E-value ranking phase is
    # traced alongside the search itself.
    observing = (
        args.profile
        or args.metrics_out is not None
        or args.trace_out is not None
        or args.mem_phases
    )
    with obs.collect(
        "full" if observing else "off", memory=args.mem_phases
    ) as instr:
        # Database resolution happens inside the collection session so
        # the db_open span (and any dbstore counters) land in the
        # profile alongside the search phases.
        search_db: Database | DatabaseStore
        try:
            if args.db is not None:
                search_db = open_database(
                    args.db,
                    verify=args.db_verify,
                    fallback="fasta" if args.db_fallback else None,
                    fasta=args.database,
                )
            else:
                search_db = Database.from_sequences(
                    read_fasta_file(args.database)
                )
        except DatabaseFormatError as exc:
            print(f"error: {exc}", file=out)
            return 4
        db_view = (
            search_db.database
            if isinstance(search_db, DatabaseStore)
            else search_db
        )
        if args.db is not None and not isinstance(search_db, DatabaseStore):
            db_label = args.database
            print(
                f"# warning: store {args.db} was refused; degraded to the "
                f"in-memory FASTA path ({args.database})",
                file=out,
            )
        try:
            result, report = app.search(
                query, search_db, engine=args.engine, workers=args.workers,
                group_size=args.group_size, fault_policy=fault_policy,
                checkpoint=args.checkpoint, resume=args.resume,
                memory_budget=memory_budget,
                split_threshold=args.split_threshold,
                strip_cell_cost=args.strip_cell_cost,
                striped_column_overhead=args.striped_col_overhead,
            )
        except SearchDeadlineExceeded as exc:
            done = (
                int(exc.completed_mask.sum())
                if exc.completed_mask is not None
                else 0
            )
            print(
                f"error: {exc} ({done}/{len(db_view)} sequences scored)",
                file=out,
            )
            if args.checkpoint is not None:
                print(
                    f"# checkpoint journal: {args.checkpoint} — completed "
                    "groups are saved; rerun with --resume to finish",
                    file=out,
                )
            return 3
        except CheckpointError as exc:
            print(f"error: {exc}", file=out)
            return 2
        except KeyboardInterrupt:
            if args.checkpoint is not None:
                print(
                    f"# interrupted; checkpoint journal: {args.checkpoint} "
                    "— completed groups are saved; rerun with --resume to "
                    "finish",
                    file=out,
                )
            return 130
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        stats = ScoreStatistics(matrix, gaps)
        with instr.span("rank"):
            hits = annotate_hits(
                result, stats, len(query), k=args.top,
                max_evalue=args.max_evalue,
            )
    run_report = None
    if observing:
        meta = {
            "query_id": query.id,
            "query_length": len(query),
            "database": db_label,
            "database_sequences": len(db_view),
            "database_residues": db_view.total_residues,
            "engine": args.engine,
            "workers": args.workers,
            "device": report.device,
        }
        if isinstance(search_db, DatabaseStore):
            meta["database_store"] = str(search_db.path)
        run_report = obs.RunReport.from_instrumentation(
            instr,
            engine_report=app.last_engine_report,
            search_report=report,
            meta=meta,
        )
    print(
        f"# query {query.id} ({len(query)} aa) vs {db_label} "
        f"({len(db_view)} sequences, {db_view.total_residues} residues)",
        file=out,
    )
    print(f"{'hit':<24} {'len':>6} {'score':>6} {'bits':>7} {'E-value':>10}",
          file=out)
    for a in hits:
        print(
            f"{a.hit.id:<24} {a.hit.length:>6} {a.hit.score:>6} "
            f"{a.bit_score:>7.1f} {a.evalue:>10.2g}",
            file=out,
        )
    if not hits:
        print("(no hits pass the E-value cutoff)", file=out)
    print(
        f"# modeled on {report.device}: {report.gcups:.2f} GCUPs, "
        f"{report.intra_time_fraction:.0%} of time in the intra-task kernel",
        file=out,
    )
    if app.last_engine_report is not None:
        er = app.last_engine_report
        print(
            f"# scored by {args.engine} engine: {er.n_groups} groups of "
            f"<= {er.group_size} lanes, padding efficiency "
            f"{er.padding_efficiency:.3f}",
            file=out,
        )
    else:
        print(f"# scored by {args.engine} engine", file=out)
    if args.scores_out is not None:
        print(f"# scores written to {result.write_tsv(args.scores_out)}",
              file=out)
    if args.profile:
        print(file=out)
        print(run_report.render_profile(), file=out)
    if args.metrics_out is not None:
        path = run_report.write(args.metrics_out)
        print(f"# metrics written to {path}", file=out)
    if args.trace_out is not None:
        path = run_report.write_trace(args.trace_out)
        print(
            f"# trace written to {path} (load in chrome://tracing or "
            "https://ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_db(args, out: IO[str]) -> int:
    from repro.engine import (
        DatabaseFormatError,
        DatabaseStore,
        build_store_from_fasta,
        open_database,
    )
    from repro.engine.dbstore import FORMAT_VERSION

    if args.db_command == "build":
        kwargs = {}
        if args.group_size is not None:
            kwargs["group_size"] = args.group_size
        try:
            info = build_store_from_fasta(
                args.fasta, args.store, comment=args.comment, **kwargs
            )
        except (ValueError, OSError) as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(f"# built {info.path}", file=out)
        print(f"sequences:    {info.sequences}", file=out)
        print(f"residues:     {info.residues}", file=out)
        print(f"group size:   {info.group_size}", file=out)
        print(f"file bytes:   {info.file_bytes}", file=out)
        print(f"fingerprint:  {info.fingerprint}", file=out)
        return 0
    deep = bool(getattr(args, "deep", False))
    try:
        store = open_database(args.store, verify="deep" if deep else "fast")
    except DatabaseFormatError as exc:
        print(f"error: {exc}", file=out)
        return 4
    assert isinstance(store, DatabaseStore)
    if args.db_command == "verify":
        print(
            f"ok: {store.path} passed "
            f"{'deep' if deep else 'fast'} validation",
            file=out,
        )
        print(f"fingerprint:  {store.fingerprint}", file=out)
        return 0
    # info: index-only statistics — the residue blob is memmapped but
    # never faulted in.
    lengths = store.lengths
    print(f"# {store.path}", file=out)
    print(f"format:       .rdb v{FORMAT_VERSION}", file=out)
    print(f"fingerprint:  {store.fingerprint}", file=out)
    print(f"sequences:    {len(store)}", file=out)
    print(f"residues:     {store.database.total_residues}", file=out)
    print(f"group size:   {store.group_size}", file=out)
    print(
        f"lengths:      min {int(lengths.min())}, "
        f"median {int(np.median(lengths))}, max {int(lengths.max())}",
        file=out,
    )
    if store.comment:
        print(f"comment:      {store.comment}", file=out)
    return 0


def _cmd_bench(args, out: IO[str]) -> int:
    from repro.obs.perfgate import DEFAULT_MIN_BASELINE, DEFAULT_TOLERANCE
    from repro.obs.perfgate import gate as perf_gate

    tolerance = (
        DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    )
    min_baseline = (
        DEFAULT_MIN_BASELINE
        if args.min_baseline is None
        else args.min_baseline
    )
    outcome = perf_gate(
        args.history, tolerance=tolerance, min_baseline=min_baseline
    )
    print(outcome.render(), file=out)
    return 0 if outcome.passed else 1


def _cmd_predict(args, out: IO[str]) -> int:
    if args.profile:
        profile = next(
            p for p in PAPER_DATABASES
            if p.name == _PROFILE_ALIASES[args.profile]
        )
        rng = np.random.default_rng(args.seed)
        db = profile.build(rng, scale=args.scale)
    else:
        db = Database.from_sequences(read_fasta_file(args.database))
    app = CudaSW(
        DEVICES[args.device], intra_kernel=args.kernel, threshold=args.threshold
    )
    r = app.predict(args.query_length, db)
    print(f"# database: {db.name}", file=out)
    print(f"#   {db.stats()}", file=out)
    print(
        f"#   {100 * r.fraction_over_threshold:.2f}% of sequences over "
        f"threshold {r.threshold}"
        + (" (auto-detected)" if args.threshold == "auto" else ""),
        file=out,
    )
    print(f"device:               {r.device}", file=out)
    print(f"intra-task kernel:    {args.kernel}", file=out)
    print(f"query length:         {r.query_length}", file=out)
    print(f"modeled GCUPs:        {r.gcups:.2f}", file=out)
    print(f"total time:           {r.total_time * 1e3:.1f} ms", file=out)
    print(f"  inter-task:         {r.inter_time * 1e3:.1f} ms "
          f"({r.inter_launches} launches)", file=out)
    print(f"  intra-task:         {r.intra_time * 1e3:.1f} ms "
          f"({100 * r.intra_time_fraction:.1f}% of total)", file=out)
    print(f"  host->device copy:  {r.transfer_time * 1e3:.1f} ms", file=out)
    print(f"load-balance eff.:    {r.load_balance_efficiency:.3f}", file=out)
    if args.explain:
        _explain(app, r, db, out)
    return 0


def _explain(app: CudaSW, report, db, out: IO[str]) -> None:
    """Re-run the cost model per dispatch side and print the breakdown."""
    from repro.app.scheduler import schedule_inter_task

    threshold = report.threshold
    below, above = db.split_by_threshold(threshold)
    if below is not None:
        schedule = schedule_inter_task(
            report.query_length, below, app.inter_kernel, app.device
        )
        t = app.cost.kernel_time(
            schedule.counts,
            app.inter_kernel.launch_config(
                max(schedule.group_size // app.inter_kernel.threads_per_block, 1)
            ),
            app.inter_kernel.cache_profile(
                report.query_length, int(below.lengths.mean())
            ),
            launches=schedule.n_launches,
        )
        print("\ninter-task kernel breakdown:", file=out)
        print(t.render(), file=out)
    if above is not None:
        counts = app.intra_kernel.bulk_pair_counts(
            report.query_length, above.lengths
        )
        t = app.cost.kernel_time(
            counts,
            app.intra_kernel.launch_config(len(above)),
            app.intra_kernel.cache_profile(
                report.query_length, int(above.lengths.mean())
            ),
        )
        print("\nintra-task kernel breakdown:", file=out)
        print(t.render(), file=out)


def _cmd_exhibit(args, out: IO[str]) -> int:
    import repro.analysis as analysis

    if args.name == "checks":
        from repro.analysis.compare import render_checks, run_all_checks

        print(render_checks(run_all_checks(args.seed)), file=out)
        return 0
    driver = getattr(analysis, args.name)
    print(driver(args.seed).render(), file=out)
    return 0


def main(argv: TySequence[str] | None = None, out: IO[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handlers = {
        "align": _cmd_align,
        "search": _cmd_search,
        "predict": _cmd_predict,
        "exhibit": _cmd_exhibit,
        "db": _cmd_db,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args, out)
