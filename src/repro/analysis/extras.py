"""Drivers for the paper's non-figure experiments: the parameter-space
exploration (Section IV-A), the incremental-variant ladder (Section III),
the TAIR threshold experiment (Section IV) and the Section VI future-work
features."""

from __future__ import annotations

import numpy as np

from repro.analysis.result import ExperimentResult
from repro.app.cudasw import CudaSW
from repro.app.multigpu import multi_gpu_time
from repro.app.threshold import optimal_threshold
from repro.cuda.cost import CostModel
from repro.cuda.device import TESLA_C1060, TESLA_C2050, DeviceSpec
from repro.kernels.intratask_improved import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
)
from repro.kernels.intratask_original import OriginalIntraTaskKernel
from repro.kernels.variants import VARIANT_LADDER, variant_kernel
from repro.sequence.synthetic import PAPER_DATABASES, SWISSPROT_PROFILE

__all__ = [
    "param_exploration",
    "ablation_variants",
    "threshold_tuning",
    "future_work",
]


def _intra_workload(seed: int, scale: float = 1.0) -> np.ndarray:
    """The Swiss-Prot sequences the intra-task kernel processes."""
    rng = np.random.default_rng(seed)
    db = SWISSPROT_PROFILE.build(rng, scale=scale)
    _, above = db.split_by_threshold(3072)
    if above is None:
        raise ValueError("no intra-task sequences at this scale")
    return above.lengths


def _intra_gcups(
    kernel: ImprovedIntraTaskKernel | OriginalIntraTaskKernel,
    m: int,
    lengths: np.ndarray,
    device: DeviceSpec,
    *,
    cache_enabled: bool = True,
) -> float:
    counts = kernel.bulk_pair_counts(m, lengths)
    model = CostModel(device, cache_enabled=cache_enabled)
    if (
        isinstance(kernel, ImprovedIntraTaskKernel)
        and kernel.config.shared_memory_only
    ):
        launch = kernel.launch_config(
            int(lengths.size), max_n=int(lengths.max())
        )
    else:
        launch = kernel.launch_config(int(lengths.size))
    t = model.kernel_time(
        counts,
        launch,
        kernel.cache_profile(m, int(lengths.mean())),
    )
    return counts.cells / t.total / 1e9


# ----------------------------------------------------------------------
# Section IV-A: n_th x t_height exploration
# ----------------------------------------------------------------------
def param_exploration(
    seed: int = 0,
    query_length: int = 5478,
    threads: tuple[int, ...] = (64, 128, 192, 256, 320),
    tile_heights: tuple[int, ...] = (4, 8),
    scale: float = 1.0,
) -> ExperimentResult:
    """The paper's sweep: threads per block in {64..320}, tile height in
    {4, 8}; the claim is that *strip height* (their product) is the
    governing parameter, with 512 optimal on the C1060 and 1024 on the
    C2050.  The default query is the ladder's longest (5478 residues —
    the regime the intra-task kernel exists for), where partial-strip
    padding does not dominate the comparison."""
    lengths = _intra_workload(seed, scale)
    rows = []
    best = {}
    for dev_name, device in (("C1060", TESLA_C1060), ("C2050", TESLA_C2050)):
        for n_th in threads:
            for t_h in tile_heights:
                if n_th > device.max_threads_per_block:
                    continue
                kernel = ImprovedIntraTaskKernel(
                    ImprovedKernelConfig(threads_per_block=n_th, tile_height=t_h),
                    device,
                )
                g = _intra_gcups(kernel, query_length, lengths, device)
                strip = n_th * t_h
                rows.append((dev_name, n_th, t_h, strip, g))
                key = (dev_name, strip)
                best[key] = max(best.get(key, 0.0), g)
    optima = {}
    for dev_name in ("C1060", "C2050"):
        dev_rows = [(s, g) for (d, s), g in best.items() if d == dev_name]
        optima[dev_name] = max(dev_rows, key=lambda x: x[1])[0]
    return ExperimentResult(
        name="param_exploration",
        title="improved intra-task kernel GCUPs over (threads/block, tile "
        f"height) (query {query_length}, Swiss-Prot intra subset)",
        headers=("device", "threads", "tile_height", "strip", "gcups"),
        rows=tuple(rows),
        notes=(
            f"best strip height: C1060 -> {optima['C1060']}, "
            f"C2050 -> {optima['C2050']} (paper: 512 and 1024)"
        ),
        extra={"optima": optima},
    )


# ----------------------------------------------------------------------
# Section III: the v0..v3 incremental ladder
# ----------------------------------------------------------------------
def ablation_variants(
    seed: int = 0,
    query_length: int = 567,
    device: DeviceSpec = TESLA_C1060,
    scale: float = 1.0,
) -> ExperimentResult:
    """GCUPs of each development stage of the improved kernel next to the
    original kernel — the Section III narrative in one table."""
    lengths = _intra_workload(seed, scale)
    orig = OriginalIntraTaskKernel()
    base = _intra_gcups(orig, query_length, lengths, device)
    rows = [("original", base, 1.0, "the CUDASW++ baseline kernel")]
    for name in VARIANT_LADDER:
        kernel = variant_kernel(name, device)
        g = _intra_gcups(kernel, query_length, lengths, device)
        reason = (
            "register arrays in local memory: "
            + "; ".join(sorted(kernel.compiled.demotion_reasons))
            if kernel.compiled.uses_local_memory
            else "register-resident tiles"
        )
        rows.append((name, g, g / base, reason))
    return ExperimentResult(
        name="ablation_variants",
        title="Section III development ladder on the Swiss-Prot intra "
        f"subset ({device.name}, query {query_length})",
        headers=("variant", "gcups", "speedup_vs_original", "register state"),
        rows=tuple(rows),
        notes="v0 shows no improvement over the original kernel; fixing "
        "the register pitfalls and adding the query profile recovers the "
        "paper's order-of-magnitude gain",
    )


# ----------------------------------------------------------------------
# Section IV/VI: the TAIR threshold experiment + autodetection
# ----------------------------------------------------------------------
def threshold_tuning(
    seed: int = 0,
    query_length: int = 567,
    device: DeviceSpec = TESLA_C2050,
    scale: float = 1.0,
) -> ExperimentResult:
    """TAIR with the improved kernel: default threshold 3072, the paper's
    hand-tuned 1500, and the Section VI automatic detection."""
    rng = np.random.default_rng(seed)
    tair = next(p for p in PAPER_DATABASES if "TAIR" in p.name)
    db = tair.build(rng, scale=scale)
    rows = []
    for label, threshold in (("default", 3072), ("paper-tuned", 1500)):
        app = CudaSW(device, intra_kernel="improved", threshold=threshold)
        r = app.predict(query_length, db)
        rows.append(
            (label, threshold, 100.0 * r.fraction_over_threshold, r.gcups)
        )
    app = CudaSW(device, intra_kernel="improved")
    auto = optimal_threshold(app, query_length, db)
    rows.append(
        ("auto-detected", auto.threshold, 100.0 * auto.fraction_over, auto.gcups)
    )
    gain = rows[1][3] - rows[0][3]
    return ExperimentResult(
        name="threshold_tuning",
        title=f"TAIR threshold tuning with the improved kernel ({device.name}, "
        f"query {query_length})",
        headers=("setting", "threshold", "pct_seqs_intra", "gcups"),
        rows=tuple(rows),
        notes=f"lowering 3072 -> 1500 changes GCUPs by {gain:+.2f} "
        "(the paper reports ~+4 GCUPs); the auto-detected threshold does "
        "at least as well",
        extra={"tuning_gain": gain, "auto_threshold": auto.threshold},
    )


# ----------------------------------------------------------------------
# Section VI: future-work features, modeled
# ----------------------------------------------------------------------
def future_work(
    seed: int = 0,
    query_length: int = 567,
    device: DeviceSpec = TESLA_C2050,
    scale: float = 1.0,
) -> ExperimentResult:
    """Each Section VI proposal applied to the improved kernel (or the
    application), with its modeled effect."""
    rng = np.random.default_rng(seed)
    db = SWISSPROT_PROFILE.build(rng, scale=scale)
    _, above = db.split_by_threshold(3072)
    lengths = above.lengths
    long_query = 5478  # strips matter for the pipeline/pass features

    def kernel_with(**flags):
        return ImprovedIntraTaskKernel(ImprovedKernelConfig(**flags), device)

    base = _intra_gcups(kernel_with(), long_query, lengths, device)
    rows = [("improved kernel (baseline)", base, 0.0)]

    # The shared-memory-only mode is legal only where the boundary rows
    # fit ("for sequence lengths less than 10,000", Section VI) — evaluate
    # it, and the combined configuration, on the subset that fits.
    probe = kernel_with(shared_memory_only=True)
    fits = np.array([probe.shared_only_fits(int(n)) for n in lengths])
    short_lengths = lengths[fits]
    features = (
        ("coalesced boundary I/O", dict(coalesced_boundary=True), lengths),
        (
            f"shared-memory-only boundaries ({fits.mean():.0%} of sequences fit)",
            dict(shared_memory_only=True),
            short_lengths,
        ),
        (
            "persistent pipeline (one fill/flush)",
            dict(persistent_pipeline=True),
            lengths,
        ),
        (
            "all three combined (on fitting sequences)",
            dict(
                coalesced_boundary=True,
                shared_memory_only=True,
                persistent_pipeline=True,
            ),
            short_lengths,
        ),
    )
    for label, flags, subset in features:
        reference = (
            base
            if subset is lengths
            else _intra_gcups(kernel_with(), long_query, subset, device)
        )
        g = _intra_gcups(kernel_with(**flags), long_query, subset, device)
        rows.append((label, g, 100.0 * (g / reference - 1)))

    # Application-level features: streaming copy and multi-GPU scaling.
    plain = CudaSW(device, intra_kernel="improved").predict(query_length, db)
    stream = CudaSW(device, intra_kernel="improved", streaming_copy=True).predict(
        query_length, db
    )
    rows.append(
        (
            "streaming host->device copy",
            stream.gcups,
            100.0 * (stream.gcups / plain.gcups - 1),
        )
    )
    app = CudaSW(device, intra_kernel="improved")
    t1 = plain.total_time
    for gpus in (2, 4):
        tn, _ = multi_gpu_time(app, query_length, db, gpus)
        rows.append(
            (f"{gpus} GPUs (speedup, not GCUPs)", t1 / tn, 0.0)
        )
    return ExperimentResult(
        name="future_work",
        title=f"Section VI proposals, modeled ({device.name})",
        headers=("feature", "gcups_or_speedup", "pct_change"),
        rows=tuple(rows),
        notes="kernel features evaluated on the intra-task subset with the "
        f"{long_query}-residue query; application features on the full "
        f"database with the {query_length}-residue query",
    )
