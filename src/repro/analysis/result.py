"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    float_digits: int = 2,
) -> str:
    """Render rows as an aligned ASCII table."""

    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return f"{v:.{float_digits}f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    out = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        out.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


@dataclass(frozen=True)
class ExperimentResult:
    """Structured output of one experiment driver."""

    name: str
    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    notes: str = ""
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"{self.name}: row width {len(row)} != "
                    f"{len(self.headers)} headers"
                )

    def column(self, header: str) -> list:
        """All values of one column."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def render(self, *, float_digits: int = 2) -> str:
        out = [f"== {self.name}: {self.title} =="]
        out.append(format_table(self.headers, self.rows, float_digits=float_digits))
        if self.notes:
            out.append(self.notes)
        return "\n".join(out)
