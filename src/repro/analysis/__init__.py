"""Experiment drivers regenerating every figure and table of the paper.

One driver per exhibit (see DESIGN.md §4 for the index):

========================  ======================================================
driver                    paper exhibit
========================  ======================================================
:func:`figure2`           kernel GCUPs vs length-distribution standard deviation
:func:`figure3`           Swiss-Prot GCUPs vs threshold (original kernel)
:func:`figure5`           GCUPs and intra-task time share vs % intra sequences
:func:`figure6`           the Figure 5 sweep with the C2050's caches disabled
:func:`figure7`           GCUPs vs query length, incl. the SWPS3 reference
:func:`table1`            global-memory transactions, original vs improved
:func:`table2`            six databases x devices x kernels
:func:`param_exploration` Section IV-A's (n_th, t_height) sweep
:func:`ablation_variants` Section III's v0..v3 development ladder
:func:`threshold_tuning`  Section IV/VI's TAIR threshold experiment
:func:`future_work`       Section VI's proposed optimizations, modeled
:func:`sensitivity_analysis`  robustness of the claims to the calibration
:func:`scalability_comparison`  Section IV-B's cores-vs-GPUs equivalence
========================  ======================================================

Each driver returns an :class:`~repro.analysis.result.ExperimentResult`
whose ``render()`` prints the same rows/series the paper reports;
:mod:`~repro.analysis.compare` pins the qualitative claims.
"""

from repro.analysis.extras import (
    ablation_variants,
    future_work,
    param_exploration,
    threshold_tuning,
)
from repro.analysis.figures import figure2, figure3, figure5, figure6, figure7
from repro.analysis.result import ExperimentResult
from repro.analysis.scalability import scalability_comparison
from repro.analysis.sensitivity import sensitivity_analysis
from repro.analysis.tables import table1, table2

__all__ = [
    "ExperimentResult",
    "ablation_variants",
    "figure2",
    "figure3",
    "figure5",
    "figure6",
    "figure7",
    "future_work",
    "param_exploration",
    "scalability_comparison",
    "sensitivity_analysis",
    "table1",
    "table2",
    "threshold_tuning",
]
