"""Drivers for the paper's tables (I and II)."""

from __future__ import annotations

import numpy as np

from repro.analysis.result import ExperimentResult
from repro.app.cudasw import CudaSW
from repro.cuda.device import TESLA_C1060, TESLA_C2050
from repro.kernels.intratask_improved import ImprovedIntraTaskKernel
from repro.kernels.intratask_original import OriginalIntraTaskKernel
from repro.sequence.synthetic import PAPER_DATABASES, SWISSPROT_PROFILE

__all__ = ["table1", "table2"]


def table1(
    seed: int = 0,
    query_lengths: tuple[int, ...] = (567, 5478),
    threshold: int = 3072,
    scale: float = 1.0,
) -> ExperimentResult:
    """Total global-memory transactions of the two intra-task kernels over
    the Swiss-Prot sequences the intra-task kernel actually processes.

    The paper generated these with the CUDA profiler; here they come from
    the kernels' counted transactions (32-byte segments under the
    coalescing rules of ``repro.cuda.memory``).  The paper's absolute
    numbers depend on that era's partial-counter semantics, so the exhibit
    to reproduce is the *reduction ratio* ("approximate 50:1") and the
    scaling law: per-cell for the original kernel, per-strip-boundary for
    the improved one.
    """
    rng = np.random.default_rng(seed)
    db = SWISSPROT_PROFILE.build(rng, scale=scale)
    _, above = db.split_by_threshold(threshold)
    if above is None:
        raise ValueError("no sequences above the threshold at this scale")
    orig = OriginalIntraTaskKernel()
    imp = ImprovedIntraTaskKernel()  # 256 threads x tile height 4, strip 1024

    rows = []
    ratios = {}
    for m in query_lengths:
        imp_tx = imp.bulk_pair_counts(m, above.lengths).global_transactions
        orig_tx = orig.bulk_pair_counts(m, above.lengths).global_transactions
        ratios[m] = orig_tx / imp_tx
        rows.append(("Improved Kernel", m, imp_tx))
        rows.append(("Original Kernel", m, orig_tx))

    per_strip = imp.pair_counts(5478, int(above.lengths.mean()))
    strips = imp.passes(5478)
    return ExperimentResult(
        name="table1",
        title="total global-memory transactions against the Swiss-Prot "
        f"intra-task subset ({len(above)} sequences over {threshold})",
        headers=("kernel", "query_len", "global_transactions"),
        rows=tuple(rows),
        notes=(
            "reduction ratios: "
            + ", ".join(f"query {m}: {r:,.0f}:1" for m, r in ratios.items())
            + f"; improved kernel needs {strips} strip passes for the 5478 "
            f"query (~{per_strip.global_transactions // max(strips - 1, 1):,} "
            "transactions per interior strip boundary per pair)"
        ),
        extra={"ratios": ratios},
    )


#: The query-length columns printed for Table II (the full CUDASW++ ladder
#: is available via the ``query_lengths`` argument).
_TABLE2_QUERIES = (144, 567, 1000, 2005, 3564, 5478)


def table2(
    seed: int = 0,
    query_lengths: tuple[int, ...] = _TABLE2_QUERIES,
    scale: float = 1.0,
) -> ExperimentResult:
    """GCUPs for the six paper databases x {C1060, C2050} x
    {original, improved} across query lengths."""
    rng = np.random.default_rng(seed)
    rows = []
    gains = {}
    for profile in PAPER_DATABASES:
        db = profile.build(rng, scale=scale)
        pct_over = 100.0 * db.fraction_over(3072)
        for dev_name, device in (("C1060", TESLA_C1060), ("C2050", TESLA_C2050)):
            gcups = {}
            for kernel in ("Original", "Improved"):
                app = CudaSW(device, intra_kernel=kernel.lower())
                values = tuple(
                    app.predict(m, db).gcups for m in query_lengths
                )
                gcups[kernel] = values
                rows.append(
                    (profile.name, f"{pct_over:.2f}%", dev_name, kernel)
                    + values
                )
            gains[(profile.name, dev_name)] = float(
                np.mean(
                    [i / o - 1 for i, o in zip(gcups["Improved"], gcups["Original"])]
                )
            )
    # The paper's reading of its own table: the gain tracks the fraction
    # of sequences over the threshold, smallest on TAIR.
    tair_gain = np.mean(
        [g for (name, _), g in gains.items() if "TAIR" in name]
    )
    best_gain = max(gains.values())
    return ExperimentResult(
        name="table2",
        title="GCUPs for six databases x devices x kernels "
        f"(query lengths {query_lengths})",
        headers=("database", "pct_over", "gpu", "kernel")
        + tuple(f"q{m}" for m in query_lengths),
        rows=tuple(rows),
        notes=(
            f"mean improved-vs-original gain: TAIR {100 * tair_gain:.1f}% "
            f"(lowest, 0.06% over threshold) .. best {100 * best_gain:.1f}%"
        ),
        extra={"gains": gains},
    )
