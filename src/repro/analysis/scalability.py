"""The Section IV-B scalability comparison.

"While SWPS3 can be run on more processors to increase the performance,
CUDASW++ can similarly be run on multiple GPUs.  Using eight x86 cores
will give SWPS3 roughly a two times increase in speed; CUDASW++ will
likewise see a twofold increase if two GPUs are used."

This driver models both scaling axes on the Swiss-Prot workload: SWPS3
across 1..8 Xeon cores (the paper's 4-core host, doubled) and CUDASW++
across 1..4 C1060s, and checks the quoted equivalence (8 cores ~ 2x over
4 cores; 2 GPUs ~ 2x over 1).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.result import ExperimentResult
from repro.app.cudasw import CudaSW
from repro.app.multigpu import multi_gpu_time
from repro.baselines.cpu_cost import XEON_E5345
from repro.baselines.swps3 import Swps3Model, swps3_time_seconds
from repro.cuda.device import TESLA_C1060
from repro.sequence.synthetic import SWISSPROT_PROFILE

__all__ = ["scalability_comparison"]


def scalability_comparison(
    seed: int = 0,
    query_length: int = 567,
    *,
    scale: float = 1.0,
    swps3_sample_rows: int = 40_000,
) -> ExperimentResult:
    """SWPS3 thread scaling vs CUDASW++ GPU scaling on Swiss-Prot."""
    rng = np.random.default_rng(seed)
    db = SWISSPROT_PROFILE.build(rng, scale=scale)
    cells = query_length * db.total_residues

    rows = []

    # SWPS3 over 1..8 cores: measure the striped workload once, then let
    # the CPU model scale threads (an 8-core host = the Xeon doubled).
    model = Swps3Model()
    base_report = model.report(
        query_length, db, rng, sample_rows=swps3_sample_rows
    )
    # Recover the aggregate counts implied by the report's time at 4
    # threads, then re-time for each thread count.
    eight_core = dataclasses.replace(XEON_E5345, name="Xeon x8", cores=8)
    from repro.baselines.sse import StripedCounts

    seg = -(-query_length // 8)
    ops_time_4 = base_report.time_seconds
    # Reconstruct main/lazy rows from the lazy fraction and total ops.
    # (report() extrapolated them; re-derive for re-timing.)
    total_rows = int(
        (ops_time_4 - len(db) * XEON_E5345.per_sequence_overhead_us * 1e-6 / 4)
        * 4 * XEON_E5345.clock_ghz * 1e9
        / (10 + 4 * base_report.lazy_fraction / max(1 - base_report.lazy_fraction, 1e-9))
    ) // 10 * 10
    main_rows = int(total_rows * (1 - base_report.lazy_fraction))
    lazy_rows = int(total_rows * base_report.lazy_fraction)
    counts = StripedCounts(
        cells=cells, columns=db.total_residues, segment_length=seg,
        main_rows=main_rows, lazy_rows=lazy_rows,
    )
    swps3_gcups = {}
    for threads in (1, 2, 4):
        t = swps3_time_seconds(
            counts, XEON_E5345, threads=threads, n_sequences=len(db)
        )
        swps3_gcups[threads] = cells / t / 1e9
        rows.append(("SWPS3", f"{threads} cores", swps3_gcups[threads]))
    t8 = swps3_time_seconds(counts, eight_core, threads=8, n_sequences=len(db))
    swps3_gcups[8] = cells / t8 / 1e9
    rows.append(("SWPS3", "8 cores", swps3_gcups[8]))

    # CUDASW++ (improved) over 1..4 C1060s.
    app = CudaSW(TESLA_C1060, intra_kernel="improved")
    cudasw_gcups = {1: app.predict(query_length, db).gcups}
    rows.append(("CUDASW++ improved", "1 GPU", cudasw_gcups[1]))
    for gpus in (2, 4):
        tn, _ = multi_gpu_time(app, query_length, db, gpus)
        cudasw_gcups[gpus] = cells / tn / 1e9
        rows.append(("CUDASW++ improved", f"{gpus} GPUs", cudasw_gcups[gpus]))

    swps3_doubling = swps3_gcups[8] / swps3_gcups[4]
    gpu_doubling = cudasw_gcups[2] / cudasw_gcups[1]
    return ExperimentResult(
        name="scalability_comparison",
        title="SWPS3 thread scaling vs CUDASW++ GPU scaling "
        f"(Swiss-Prot, query {query_length})",
        headers=("system", "resources", "gcups"),
        rows=tuple(rows),
        notes=(
            f"the paper's quoted equivalence: 8 cores give SWPS3 "
            f"{swps3_doubling:.2f}x over 4 cores; 2 GPUs give CUDASW++ "
            f"{gpu_doubling:.2f}x over 1 — and one GPU still outperforms "
            f"8 cores by {cudasw_gcups[1] / swps3_gcups[8]:.1f}x"
        ),
        extra={
            "swps3_doubling": swps3_doubling,
            "gpu_doubling": gpu_doubling,
            "gpu_vs_8core": cudasw_gcups[1] / swps3_gcups[8],
        },
    )
