"""Drivers for the paper's figures (2, 3, 5, 6, 7)."""

from __future__ import annotations

import numpy as np

from repro.analysis.result import ExperimentResult
from repro.app.cudasw import CudaSW
from repro.baselines.swps3 import Swps3Model
from repro.cuda.cost import CostModel
from repro.cuda.device import TESLA_C1060, TESLA_C2050, DeviceSpec
from repro.cuda.occupancy import occupancy
from repro.kernels.intertask import InterTaskKernel
from repro.kernels.intratask_original import OriginalIntraTaskKernel
from repro.sequence.database import Database
from repro.sequence.synthetic import (
    CUDASW_QUERY_LENGTHS,
    SWISSPROT_PROFILE,
    lognormal_lengths,
)

__all__ = ["figure2", "figure3", "figure5", "figure6", "figure7"]


def _swissprot(seed: int, scale: float = 1.0) -> Database:
    rng = np.random.default_rng(seed)
    return SWISSPROT_PROFILE.build(rng, scale=scale)


# ----------------------------------------------------------------------
# Figure 2 — kernel sensitivity to length variance
# ----------------------------------------------------------------------
def figure2(
    seed: int = 0,
    device: DeviceSpec = TESLA_C1060,
    query_length: int = 567,
    stds: tuple[int, ...] = (100, 300, 500, 700, 900, 1100, 1300, 1500,
                             1700, 1900, 2100, 2300, 2500, 2700),
) -> ExperimentResult:
    """Inter-task vs intra-task GCUPs over log-normal databases of growing
    length variance (one occupancy-sized group, no sorting — the paper's
    setup).  The mean follows the paper: it "varies from 1000 to 2700"
    with the standard deviation."""
    rng = np.random.default_rng(seed)
    inter = InterTaskKernel()
    intra = OriginalIntraTaskKernel()
    model = CostModel(device)

    launch_probe = inter.launch_config(1)
    occ = occupancy(
        device,
        launch_probe.threads_per_block,
        launch_probe.registers_per_thread,
        launch_probe.shared_mem_per_block,
    )
    s = occ.concurrent_threads_device

    rows = []
    for std in stds:
        mean = float(max(1000, std))
        lengths = lognormal_lengths(s, mean, float(std), rng)

        ic = inter.group_counts(query_length, lengths)
        it = model.kernel_time(
            ic,
            inter.launch_config(max(s // inter.threads_per_block, 1)),
            inter.cache_profile(query_length, int(lengths.mean())),
        )
        inter_gcups = ic.cells / it.total / 1e9

        ac = intra.bulk_pair_counts(query_length, lengths)
        at = model.kernel_time(
            ac,
            intra.launch_config(int(lengths.size)),
            intra.cache_profile(query_length, int(lengths.mean())),
        )
        intra_gcups = ac.cells / at.total / 1e9
        rows.append(
            (std, round(float(lengths.mean()), 1), inter_gcups, intra_gcups)
        )

    crossover = next(
        (std for std, _, ig, ag in rows if ig < ag), None
    )
    return ExperimentResult(
        name="figure2",
        title="kernel GCUPs vs stddev of database sequence lengths "
        f"({device.name}, query {query_length})",
        headers=("stddev", "mean_len", "inter_gcups", "intra_gcups"),
        rows=tuple(rows),
        notes=(
            f"inter-task degrades with variance (load imbalance); "
            f"intra-task is flat; crossover at stddev ~{crossover}"
            if crossover
            else "no crossover within the sweep"
        ),
        extra={"crossover_std": crossover},
    )


# ----------------------------------------------------------------------
# Figure 3 — threshold sensitivity of the original CUDASW++
# ----------------------------------------------------------------------
def figure3(
    seed: int = 0,
    device: DeviceSpec = TESLA_C1060,
    query_length: int = 572,
    start_threshold: int = 3072,
    step: int = 100,
    n_points: int = 20,
    scale: float = 1.0,
) -> ExperimentResult:
    """Overall GCUPs on Swiss-Prot as the threshold decreases by 100 per
    run (the paper's 20 runs), original intra-task kernel."""
    db = _swissprot(seed, scale)
    rows = []
    for i in range(n_points):
        threshold = start_threshold - i * step
        app = CudaSW(device, intra_kernel="original", threshold=threshold)
        r = app.predict(query_length, db)
        rows.append(
            (
                threshold,
                100.0 * r.fraction_over_threshold,
                r.gcups,
                100.0 * r.intra_time_fraction,
            )
        )
    drop = rows[0][2] / rows[-1][2]
    return ExperimentResult(
        name="figure3",
        title="CUDASW++ (original kernel) GCUPs on Swiss-Prot vs threshold "
        f"({device.name}, query {query_length})",
        headers=("threshold", "pct_seqs_intra", "gcups", "pct_time_intra"),
        rows=tuple(rows),
        notes=f"GCUPs drop over the sweep: {drop:.2f}x "
        "(small threshold changes, large performance impact)",
        extra={"drop_factor": drop},
    )


# ----------------------------------------------------------------------
# Figures 5 and 6 — threshold sweep, both kernels, both devices
# ----------------------------------------------------------------------
_FIG5_CONFIGS = (
    ("C2050", TESLA_C2050, "improved"),
    ("C2050", TESLA_C2050, "original"),
    ("C1060", TESLA_C1060, "improved"),
    ("C1060", TESLA_C1060, "original"),
)


def _threshold_sweep_rows(
    db: Database,
    query_length: int,
    thresholds: tuple[int, ...],
    cache_enabled: bool,
    devices: tuple = _FIG5_CONFIGS,
):
    rows = []
    for dev_name, device, kernel in devices:
        for threshold in thresholds:
            app = CudaSW(
                device,
                intra_kernel=kernel,
                threshold=threshold,
                cache_enabled=cache_enabled,
            )
            r = app.predict(query_length, db)
            rows.append(
                (
                    dev_name,
                    kernel,
                    threshold,
                    100.0 * r.fraction_over_threshold,
                    r.gcups,
                    100.0 * r.intra_time_fraction,
                )
            )
    return rows


def figure5(
    seed: int = 0,
    query_length: int = 576,
    thresholds: tuple[int, ...] = (3072, 2800, 2600, 2400, 2200, 2000,
                                   1800, 1600, 1400, 1200),
    scale: float = 1.0,
) -> ExperimentResult:
    """(a) GCUPs and (b) intra-task time share as functions of the
    percentage of sequences compared by the intra-task kernel — four
    curves: {original, improved} x {C1060, C2050} on Swiss-Prot."""
    db = _swissprot(seed, scale)
    rows = _threshold_sweep_rows(db, query_length, thresholds, True)

    # Headline gains at the endpoints (the paper quotes them in Fig. 5's
    # caption: 17.5%..67% on the C1060, 6.7%..39.3% on the C2050).
    gains = {}
    for dev in ("C1060", "C2050"):
        by = {
            (k, t): g
            for d, k, t, _, g, _ in rows
            if d == dev
            for t in [t]
        }
        gains[dev] = (
            100.0 * (by[("improved", thresholds[0])] / by[("original", thresholds[0])] - 1),
            100.0 * (by[("improved", thresholds[-1])] / by[("original", thresholds[-1])] - 1),
        )
    return ExperimentResult(
        name="figure5",
        title="GCUPs and intra-task time share vs % sequences compared by "
        f"intra-task (Swiss-Prot, query {query_length})",
        headers=("device", "kernel", "threshold", "pct_seqs_intra",
                 "gcups", "pct_time_intra"),
        rows=tuple(rows),
        notes=(
            f"improved-over-original gain: C1060 {gains['C1060'][0]:.1f}% "
            f"(default) .. {gains['C1060'][1]:.1f}% (lowest threshold); "
            f"C2050 {gains['C2050'][0]:.1f}% .. {gains['C2050'][1]:.1f}%"
        ),
        extra={"gains": gains},
    )


def figure6(
    seed: int = 0,
    query_length: int = 576,
    thresholds: tuple[int, ...] = (3072, 2800, 2600, 2400, 2200, 2000,
                                   1800, 1600, 1400, 1200),
    scale: float = 1.0,
) -> ExperimentResult:
    """The Figure 5 sweep with the C2050's L1/L2 disabled: the original
    kernel's Fermi advantage must disappear (C1060 rows, which have no
    caches to disable, are included for reference)."""
    db = _swissprot(seed, scale)
    rows = _threshold_sweep_rows(db, query_length, thresholds, False)
    # Quantify the collapse: original kernel, C2050, worst threshold,
    # cache on vs off.
    on = _threshold_sweep_rows(
        db, query_length, (thresholds[-1],), True,
        devices=(("C2050", TESLA_C2050, "original"),),
    )[0]
    off = [
        r for r in rows
        if r[0] == "C2050" and r[1] == "original" and r[2] == thresholds[-1]
    ][0]
    return ExperimentResult(
        name="figure6",
        title="the Figure 5 sweep with L1/L2 caches turned off "
        f"(query {query_length})",
        headers=("device", "kernel", "threshold", "pct_seqs_intra",
                 "gcups", "pct_time_intra"),
        rows=tuple(rows),
        notes=(
            f"original kernel, C2050, threshold {thresholds[-1]}: "
            f"{on[4]:.2f} GCUPs with caches, {off[4]:.2f} without — the "
            "Fermi improvement is almost completely attributable to the cache"
        ),
        extra={"c2050_orig_cache_on": on[4], "c2050_orig_cache_off": off[4]},
    )


# ----------------------------------------------------------------------
# Figure 7 — GCUPs vs query length, including SWPS3
# ----------------------------------------------------------------------
def figure7(
    seed: int = 0,
    query_lengths: tuple[int, ...] = CUDASW_QUERY_LENGTHS,
    scale: float = 1.0,
    swps3_sample_rows: int = 60_000,
) -> ExperimentResult:
    """GCUPs on Swiss-Prot across the CUDASW++ query ladder (144..5478):
    original and improved CUDASW++ on both devices, plus SWPS3 on four
    Xeon cores."""
    db = _swissprot(seed, scale)
    rng = np.random.default_rng(seed + 1)
    swps3 = Swps3Model()
    apps = {
        ("C1060", "original"): CudaSW(TESLA_C1060, intra_kernel="original"),
        ("C1060", "improved"): CudaSW(TESLA_C1060, intra_kernel="improved"),
        ("C2050", "original"): CudaSW(TESLA_C2050, intra_kernel="original"),
        ("C2050", "improved"): CudaSW(TESLA_C2050, intra_kernel="improved"),
    }
    rows = []
    for m in query_lengths:
        gcups = {key: app.predict(m, db).gcups for key, app in apps.items()}
        sw = swps3.report(m, db, rng, sample_rows=swps3_sample_rows)
        rows.append(
            (
                m,
                gcups[("C2050", "improved")],
                gcups[("C2050", "original")],
                gcups[("C1060", "improved")],
                gcups[("C1060", "original")],
                sw.gcups,
            )
        )
    avg_gain = float(
        np.mean([r[4] and (r[3] - r[4]) for r in rows])
    )
    return ExperimentResult(
        name="figure7",
        title="GCUPs vs query length on Swiss-Prot (devices x kernels, "
        "+ SWPS3 on 4 Xeon cores)",
        headers=("query_len", "imp_c2050", "orig_c2050", "imp_c1060",
                 "orig_c1060", "swps3"),
        rows=tuple(rows),
        notes=(
            f"average improved-vs-original gain on the C1060: "
            f"{avg_gain:.2f} GCUPs; CUDASW++ beats SWPS3 at every point"
        ),
        extra={"avg_gain_c1060": avg_gain},
    )
