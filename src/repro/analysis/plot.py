"""Terminal plotting for experiment series.

The paper's figures are line charts; the benchmarks and examples render
their data as ASCII so the shapes (declines, crossovers, plateaus) are
visible directly in a terminal or CI log — no plotting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_chart", "bar_chart"]

_DOT = "o+x*#@%&"


def ascii_chart(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter/line chart of one or more series on a shared axis.

    Each series gets its own marker; later series overwrite earlier ones
    where they collide.  Axes are annotated with min/max values.
    """
    if not series:
        raise ValueError("no series given")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    xs = list(x)
    if any(len(ys) != len(xs) for ys in series.values()):
        raise ValueError("all series must match the x vector's length")
    if len(xs) < 2:
        raise ValueError("need at least two points")

    all_y = [v for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    x_lo, x_hi = min(xs), max(xs)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    if x_hi == x_lo:
        raise ValueError("x values are all equal")

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        marker = _DOT[s_idx % len(_DOT)]
        for xv, yv in zip(xs, ys):
            col = round((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if y_label:
        lines.append(y_label)
    top = f"{y_hi:g}"
    bottom = f"{y_lo:g}"
    margin = max(len(top), len(bottom))
    for r, row in enumerate(grid):
        label = top if r == 0 else (bottom if r == height - 1 else "")
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    lines.append(
        " " * margin + f"  {x_lo:g}" + " " * max(1, width - len(f"{x_lo:g}") - len(f"{x_hi:g}") - 2)
        + f"{x_hi:g}"
        + (f"  ({x_label})" if x_label else "")
    )
    legend = "   ".join(
        f"{_DOT[i % len(_DOT)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * margin + "  " + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart (for the ablation/variant comparisons)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must match")
    if not labels:
        raise ValueError("nothing to plot")
    peak = max(values)
    if peak <= 0:
        raise ValueError("values must contain something positive")
    label_w = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{label:>{label_w}} | {bar} {value:g}{unit}")
    return "\n".join(lines)
