"""Paper-vs-measured claim checking.

Every qualitative claim of the paper's evaluation is encoded as a
:class:`ClaimCheck` computed from the experiment drivers' structured
output.  ``run_all_checks`` regenerates the full checklist (this is what
EXPERIMENTS.md records, and what the integration tests assert); absolute
numbers are expected to differ — the substrate is a device model, not the
authors' testbed — but the *shapes* must hold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.extras import (
    ablation_variants,
    param_exploration,
    threshold_tuning,
)
from repro.analysis.figures import figure2, figure3, figure5, figure6, figure7
from repro.analysis.result import ExperimentResult, format_table
from repro.analysis.tables import table1, table2

__all__ = ["ClaimCheck", "run_all_checks", "render_checks"]


@dataclass(frozen=True)
class ClaimCheck:
    """One paper claim with the reproduced measurement."""

    exhibit: str
    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def _fig2_checks(r: ExperimentResult) -> list[ClaimCheck]:
    inter = r.column("inter_gcups")
    intra = r.column("intra_gcups")
    return [
        ClaimCheck(
            "Figure 2",
            "inter-task kernel is very sensitive to length variance",
            "large monotone-ish decline across the stddev sweep",
            f"{inter[0]:.1f} -> {min(inter):.1f} GCUPs "
            f"({inter[0] / min(inter):.1f}x decline)",
            inter[0] / min(inter) > 4.0,
        ),
        ClaimCheck(
            "Figure 2",
            "intra-task kernel is insensitive to length variance",
            "flat curve",
            f"{min(intra):.2f}..{max(intra):.2f} GCUPs",
            max(intra) / min(intra) < 1.15,
        ),
        ClaimCheck(
            "Figure 2",
            "the curves cross at high variance",
            "crossover exists",
            f"crossover at stddev ~{r.extra['crossover_std']}",
            r.extra["crossover_std"] is not None,
        ),
    ]


def _fig3_checks(r: ExperimentResult) -> list[ClaimCheck]:
    gcups = r.column("gcups")
    time_pct = r.column("pct_time_intra")
    seq_pct = r.column("pct_seqs_intra")
    near2 = min(range(len(seq_pct)), key=lambda i: abs(seq_pct[i] - 2.0))
    return [
        ClaimCheck(
            "Figure 3",
            "small threshold decreases cause large performance drops",
            "~17 down to ~5 GCUPs over 20 steps of 100",
            f"{gcups[0]:.1f} -> {gcups[-1]:.1f} GCUPs "
            f"({gcups[0] / gcups[-1]:.2f}x)",
            gcups[0] / gcups[-1] > 1.5 and all(
                a >= b for a, b in zip(gcups, gcups[1:])
            ),
        ),
        ClaimCheck(
            "Figure 3 / Section V",
            "with ~2% of sequences in intra-task, >50% of time is spent there",
            ">50% of running time",
            f"{time_pct[near2]:.1f}% of time at {seq_pct[near2]:.2f}% of sequences",
            time_pct[near2] > 45.0,
        ),
    ]


def _fig5_checks(r: ExperimentResult) -> list[ClaimCheck]:
    gains = r.extra["gains"]
    rows = r.rows
    by = {}
    for dev, kernel, t, pct, g, tf in rows:
        by[(dev, kernel, t)] = (g, tf)
    thresholds = sorted({t for _, _, t, _, _, _ in rows}, reverse=True)
    always_faster = all(
        by[(d, "improved", t)][0] >= by[(d, "original", t)][0]
        for d in ("C1060", "C2050")
        for t in thresholds
    )
    # Time-share claim: improved cuts the intra share by more than half at
    # the sweep bottom on the C1060.
    tf_orig = by[("C1060", "original", thresholds[-1])][1]
    tf_imp = by[("C1060", "improved", thresholds[-1])][1]
    return [
        ClaimCheck(
            "Figure 5(a)",
            "the improved kernel always improves overall performance",
            "gain at every threshold on both devices",
            "holds at every swept point" if always_faster else "violated",
            always_faster,
        ),
        ClaimCheck(
            "Figure 5(a)",
            "gain at the default threshold, C1060",
            "+17.5% (25% at Swiss-Prot default in Sec. IV)",
            f"+{gains['C1060'][0]:.1f}%",
            8.0 <= gains["C1060"][0] <= 40.0,
        ),
        ClaimCheck(
            "Figure 5(a)",
            "gain at the default threshold, C2050",
            "+6.7%",
            f"+{gains['C2050'][0]:.1f}%",
            2.0 <= gains["C2050"][0] <= 20.0,
        ),
        ClaimCheck(
            "Figure 5(a)",
            "gain grows with the intra-task share (C1060 sweep top)",
            "up to +67%",
            f"+{gains['C1060'][1]:.1f}%",
            gains["C1060"][1] > gains["C1060"][0] * 2,
        ),
        ClaimCheck(
            "Figure 5(b)",
            "improved kernel cuts the intra-task time share by half or more",
            ">2x reduction",
            f"{tf_orig:.1f}% -> {tf_imp:.1f}%",
            tf_imp < tf_orig / 2,
        ),
    ]


def _fig6_checks(r: ExperimentResult) -> list[ClaimCheck]:
    on = r.extra["c2050_orig_cache_on"]
    off = r.extra["c2050_orig_cache_off"]
    return [
        ClaimCheck(
            "Figure 6",
            "the original kernel's Fermi gain is almost entirely the caches",
            "cache-off curves collapse toward C1060 behaviour",
            f"C2050/original at sweep bottom: {on:.1f} GCUPs cached, "
            f"{off:.1f} uncached",
            off < 0.85 * on,
        )
    ]


def _fig7_checks(r: ExperimentResult) -> list[ClaimCheck]:
    rows = r.rows
    beats_swps3 = all(
        min(r_[1], r_[2], r_[3], r_[4]) > r_[5] for r_ in rows
    )
    imp_beats_orig = all(r_[3] > r_[4] and r_[1] > r_[2] for r_ in rows)
    c1060_gain_pct = float(
        np.mean([100.0 * (r_[3] / r_[4] - 1.0) for r_ in rows])
    )
    imp = [r_[3] for r_ in rows]
    orig = [r_[4] for r_ in rows]
    return [
        ClaimCheck(
            "Figure 7",
            "CUDASW++ outperforms SWPS3 at all points tested",
            "all query lengths",
            "holds at all query lengths" if beats_swps3 else "violated",
            beats_swps3,
        ),
        ClaimCheck(
            "Figure 7",
            "improved CUDASW++ is consistently higher than the original",
            "~+4 GCUPs / ~25% on average",
            f"+{c1060_gain_pct:.1f}% on the C1060 on average",
            imp_beats_orig and c1060_gain_pct > 10.0,
        ),
        ClaimCheck(
            "Figure 7",
            "improved version is less sensitive to query length",
            "consistent performance above query length 1000",
            f"improved spread {max(imp) / min(imp):.3f}x vs original "
            f"{max(orig) / min(orig):.3f}x",
            max(imp) / min(imp) <= max(orig) / min(orig) * 1.05,
        ),
    ]


def _table1_checks(r: ExperimentResult) -> list[ClaimCheck]:
    ratios = r.extra["ratios"]
    return [
        ClaimCheck(
            "Table I",
            "the improved kernel performs orders of magnitude fewer global "
            "memory transactions",
            "~50:1 reduction (paper's counter semantics)",
            ", ".join(f"query {m}: {v:,.0f}:1" for m, v in ratios.items()),
            all(v > 50 for v in ratios.values()),
        )
    ]


def _table2_checks(r: ExperimentResult) -> list[ClaimCheck]:
    gains = r.extra["gains"]
    all_gain = all(g > 0 for g in gains.values())
    tair = [g for (name, _), g in gains.items() if "TAIR" in name]
    others = [g for (name, _), g in gains.items() if "TAIR" not in name]
    return [
        ClaimCheck(
            "Table II",
            "the improved kernel increases performance on all databases",
            "every database, both devices",
            "holds for all 12 database/device pairs" if all_gain else "violated",
            all_gain,
        ),
        ClaimCheck(
            "Table II",
            "the smallest gain occurs on TAIR (fewest sequences over the "
            "threshold)",
            "TAIR lowest (0.06% over)",
            f"TAIR mean gain {100 * np.mean(tair):.1f}% vs others' minimum "
            f"{100 * min(others):.1f}%",
            np.mean(tair) <= min(others),
        ),
        ClaimCheck(
            "Table II",
            "gains are more pronounced on the C1060 than the C2050",
            "Fermi caching shrinks the gap",
            "C1060 mean gain "
            f"{100 * np.mean([g for (_, d), g in gains.items() if d == 'C1060']):.1f}% "
            "vs C2050 "
            f"{100 * np.mean([g for (_, d), g in gains.items() if d == 'C2050']):.1f}%",
            np.mean([g for (_, d), g in gains.items() if d == "C1060"])
            > np.mean([g for (_, d), g in gains.items() if d == "C2050"]),
        ),
    ]


def _param_checks(r: ExperimentResult) -> list[ClaimCheck]:
    optima = r.extra["optima"]
    # "Several combinations of n_th and t_height result in essentially the
    # same performance" — strip height governs.
    by_strip: dict[tuple[str, int], list[float]] = {}
    best_by_dev: dict[str, float] = {}
    paper_optimum: dict[str, float] = {}
    for dev, n_th, t_h, strip, g in r.rows:
        by_strip.setdefault((dev, strip), []).append(g)
        best_by_dev[dev] = max(best_by_dev.get(dev, 0.0), g)
        target = 512 if dev == "C1060" else 1024
        if strip == target:
            paper_optimum[dev] = max(paper_optimum.get(dev, 0.0), g)
    same_strip_spread = max(
        max(v) / min(v) for v in by_strip.values() if len(v) > 1
    )
    # How close the paper's chosen strip heights come to our surface's
    # best point — the surface is flat near the optimum, so "within a few
    # percent" is the reproducible statement.
    paper_gap = max(
        1.0 - paper_optimum[d] / best_by_dev[d] for d in best_by_dev
    )
    return [
        ClaimCheck(
            "Section IV-A",
            "strip height is the relevant parameter (same strip -> same "
            "performance)",
            "equal-strip configurations perform essentially the same",
            f"max spread among equal-strip configs: "
            f"{100 * (same_strip_spread - 1):.1f}%",
            same_strip_spread < 1.15,
        ),
        ClaimCheck(
            "Section IV-A",
            "the paper's tuned strip heights (512 C1060 / 1024 C2050) sit "
            "on the flat optimum of the surface",
            "optimal strips 512 and 1024",
            f"measured best: C1060 -> {optima['C1060']}, C2050 -> "
            f"{optima['C2050']}; paper's choices within "
            f"{100 * paper_gap:.1f}% of the best point",
            paper_gap < 0.05,
        ),
    ]


def _ablation_checks(r: ExperimentResult) -> list[ClaimCheck]:
    by = {row[0]: row[1] for row in r.rows}
    return [
        ClaimCheck(
            "Section III-A",
            "the first tiled implementation showed no improvement over the "
            "original kernel",
            "v0 ~= original",
            f"v0 {by['v0-naive']:.2f} vs original {by['original']:.2f} GCUPs",
            by["v0-naive"] < 1.6 * by["original"],
        ),
        ClaimCheck(
            "Section III-A",
            "fixing the register pitfalls yields a large step",
            "~2x from register residency",
            f"v2/v1 = {by['v2-hand-unroll'] / by['v1-deep-swap']:.1f}x",
            by["v2-hand-unroll"] > 2 * by["v1-deep-swap"],
        ),
        ClaimCheck(
            "Section I / III",
            "the finished kernel is an order of magnitude over the original",
            "over 11x",
            f"{by['v3-query-profile'] / by['original']:.1f}x",
            by["v3-query-profile"] / by["original"] > 6.0,
        ),
    ]


def _threshold_checks(r: ExperimentResult) -> list[ClaimCheck]:
    gain = r.extra["tuning_gain"]
    auto = r.extra["auto_threshold"]
    return [
        ClaimCheck(
            "Section IV-B / VI",
            "lowering the TAIR threshold from 3072 to 1500 helps the "
            "improved kernel",
            "~+4 GCUPs on the C2050",
            f"{gain:+.2f} GCUPs",
            gain > 0,
        ),
        ClaimCheck(
            "Section VI",
            "the optimal threshold can be auto-detected below the default",
            "transition point below 3072",
            f"auto-detected threshold {auto}",
            auto < 3072,
        ),
    ]


def run_all_checks(
    seed: int = 0, *, scale: float = 1.0, swps3_sample_rows: int = 40_000
) -> list[ClaimCheck]:
    """Run every driver and evaluate every encoded paper claim."""
    checks: list[ClaimCheck] = []
    checks += _fig2_checks(figure2(seed))
    checks += _fig3_checks(figure3(seed, scale=scale))
    checks += _fig5_checks(figure5(seed, scale=scale))
    checks += _fig6_checks(figure6(seed, scale=scale))
    checks += _fig7_checks(
        figure7(seed, scale=scale, swps3_sample_rows=swps3_sample_rows)
    )
    checks += _table1_checks(table1(seed, scale=scale))
    checks += _table2_checks(table2(seed, scale=scale))
    checks += _param_checks(param_exploration(seed, scale=scale))
    checks += _ablation_checks(ablation_variants(seed, scale=scale))
    checks += _threshold_checks(threshold_tuning(seed, scale=scale))
    return checks


def render_checks(checks: list[ClaimCheck]) -> str:
    """ASCII table of the claim checklist."""
    rows = [
        (c.exhibit, c.claim, c.paper_value, c.measured_value,
         "PASS" if c.holds else "FAIL")
        for c in checks
    ]
    passed = sum(c.holds for c in checks)
    table = format_table(
        ("exhibit", "claim", "paper", "measured", "verdict"), rows
    )
    return table + f"\n\n{passed}/{len(checks)} claims hold"
