"""The CUDASW++ application layer.

Reassembles the kernels into the full database-search pipeline of the
paper:

1. sort the database by length, split it at the dispatch threshold
   (default 3072): shorter sequences go to the inter-task kernel, longer
   ones to the intra-task kernel (:class:`~repro.app.cudasw.CudaSW`);
2. partition the inter-task part into groups sized by the occupancy
   calculator, one kernel launch per group
   (:mod:`~repro.app.scheduler`);
3. copy the database to the device (optionally streamed/overlapped,
   Section VI) (:mod:`~repro.app.transfer`);
4. model the run time of every launch with the cost model and report
   GCUPs, the intra-task time fraction (Figure 5b) and ranked hits.

:mod:`~repro.app.threshold` implements Section VI's automatic threshold
detection; :mod:`~repro.app.multigpu` the near-linear multi-GPU scaling
the paper appeals to.
"""

from repro.app.batch import BatchReport, predict_batch, search_batch
from repro.app.cudasw import CudaSW, SearchReport
from repro.app.multigpu import multi_gpu_time, split_round_robin
from repro.app.results import Hit, SearchResult
from repro.app.scheduler import InterTaskSchedule, schedule_inter_task
from repro.app.threshold import optimal_threshold, threshold_sweep
from repro.app.transfer import TransferModel

__all__ = [
    "BatchReport",
    "CudaSW",
    "SearchReport",
    "predict_batch",
    "search_batch",
    "Hit",
    "SearchResult",
    "InterTaskSchedule",
    "schedule_inter_task",
    "TransferModel",
    "optimal_threshold",
    "threshold_sweep",
    "multi_gpu_time",
    "split_round_robin",
]
