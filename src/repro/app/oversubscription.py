"""Beyond the paper: oversubscribed inter-task grids.

The paper's inter-task kernel launches exactly one *wave* of blocks (the
group size ``s`` equals the device's resident-thread capacity), so the
whole launch waits for its longest sequence — the load-imbalance
mechanism behind Figure 2 and the reason the dispatch threshold exists.
A standard CUDA remedy the paper does not explore is *oversubscription*:
launch ``k`` waves worth of blocks in one kernel, and let the hardware
block scheduler backfill SM slots as early blocks retire.  Imbalance then
shrinks to (a) per-block padding (blocks hold sorted-adjacent sequences —
tight) and (b) the *final wave's* tail, paid once per launch instead of
once per wave.

This module models that design point:

* :func:`block_padded_group_counts` — inter-task counts with block-level
  (not launch-level) padding;
* :func:`oversubscribed_inter_time` — launch time as the work-conserving
  throughput bound plus the final-wave tail (the slowest block running on
  a single SM slot);
* :func:`oversubscription_analysis` — the experiment: inter-task GCUPs
  versus length-distribution variance (the Figure 2 axis) for
  oversubscription factors 1/4/16, showing how much of the threshold
  mechanism's job a bigger grid could do.

``benchmarks/bench_extension_oversubscription.py`` regenerates the table.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.result import ExperimentResult
from repro.cuda.cost import CostModel, ceil_div
from repro.cuda.counts import KernelCounts
from repro.cuda.device import TESLA_C1060, DeviceSpec
from repro.cuda.occupancy import occupancy
from repro.kernels.intertask import (
    InterTaskKernel,
    OPS_PER_CELL,
    TILE_COLS,
    TILE_ROWS,
)
from repro.sequence.synthetic import lognormal_lengths

__all__ = [
    "block_padded_group_counts",
    "oversubscribed_inter_time",
    "oversubscription_analysis",
]


def block_padded_group_counts(
    kernel: InterTaskKernel, m: int, lengths: np.ndarray
) -> KernelCounts:
    """Inter-task counts charging idle slots per *block*, not per launch.

    With a work-conserving block scheduler, a thread's warp/block only
    pads to its own block's longest member; lengths must be sorted so
    blocks hold adjacent quantiles (the scheduler's real layout).
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if m <= 0 or lengths.size == 0 or int(lengths.min()) <= 0:
        raise ValueError("invalid workload")
    tpb = kernel.threads_per_block
    counts = kernel.group_counts(m, lengths[:1])  # placeholder for typing
    total = KernelCounts()
    for start in range(0, lengths.size, tpb):
        block = lengths[start : start + tpb]
        tr = ceil_div(m, TILE_ROWS)
        tc_max = int(-(-block.max() // TILE_COLS))
        slot_cells = int(block.size) * tr * TILE_ROWS * tc_max * TILE_COLS
        tc = -(-block // TILE_COLS)
        tiles = tr * tc
        store_words = 8 * tiles
        load_words = 8 * (tiles - tc)
        total += KernelCounts(
            cells=int(m * block.sum()),
            alu_ops=OPS_PER_CELL * slot_cells,
            global_load_transactions=int(np.ceil(load_words / 8).sum()),
            global_store_transactions=int(np.ceil(store_words / 8).sum())
            + int(block.size),
            global_bytes_loaded=int(load_words.sum()) * 4,
            global_bytes_stored=(int(store_words.sum()) + int(block.size)) * 4,
            texture_fetches=12 * int(tiles.sum()),
            idle_thread_steps=slot_cells - int(m * block.sum()),
        )
    del counts
    return total


def oversubscribed_inter_time(
    model: CostModel,
    kernel: InterTaskKernel,
    m: int,
    lengths: np.ndarray,
    oversubscription: int,
) -> float:
    """Modeled inter-task time with ``oversubscription`` waves per launch.

    ``oversubscription == 1`` reproduces the paper's launch-level model
    (every wave synchronizes on its max).  For ``k > 1``, each launch's
    time is the work-conserving throughput bound over block-padded counts
    plus one final-wave tail: the launch's slowest block finishing on a
    single SM slot.
    """
    if oversubscription <= 0:
        raise ValueError("oversubscription must be positive")
    lengths = np.sort(np.asarray(lengths, dtype=np.int64), kind="stable")
    launch_probe = kernel.launch_config(1)
    occ = occupancy(
        model.device,
        launch_probe.threads_per_block,
        launch_probe.registers_per_thread,
        launch_probe.shared_mem_per_block,
    )
    s = occ.concurrent_threads_device

    if oversubscription == 1:
        total = 0.0
        n_launches = 0
        agg = KernelCounts()
        for start in range(0, lengths.size, s):
            agg += kernel.group_counts(m, lengths[start : start + s])
            n_launches += 1
        t = model.kernel_time(
            agg,
            kernel.launch_config(max(s // kernel.threads_per_block, 1)),
            kernel.cache_profile(m, int(lengths.mean())),
            launches=n_launches,
        )
        return t.total

    launch_size = s * oversubscription
    total = 0.0
    dev = model.device
    # A straggler block left alone on its SM gets the whole SM's issue
    # rate (no co-resident blocks to share with).
    sm_rate = (
        dev.cores_per_sm
        * dev.clock_hz
        * model.calibration.issue_efficiency_for(dev.name)
    )
    for start in range(0, lengths.size, launch_size):
        group = lengths[start : start + launch_size]
        counts = block_padded_group_counts(kernel, m, group)
        t = model.kernel_time(
            counts,
            kernel.launch_config(
                max(int(group.size) // kernel.threads_per_block, 1)
            ),
            kernel.cache_profile(m, int(group.mean())),
        )
        # The launch cannot finish before its slowest block does; that
        # block's work is already inside `counts`, so the tail enters as a
        # critical-path floor, not an addend.
        tail_ops = (
            OPS_PER_CELL
            * kernel.threads_per_block
            * ceil_div(m, TILE_ROWS) * TILE_ROWS
            * ceil_div(int(group.max()), TILE_COLS) * TILE_COLS
        )
        total += max(t.total, tail_ops / sm_rate)
    return total


def oversubscription_analysis(
    seed: int = 0,
    device: DeviceSpec = TESLA_C1060,
    query_length: int = 567,
    stds: tuple[int, ...] = (100, 500, 900, 1300, 1700, 2100, 2500),
    factors: tuple[int, ...] = (1, 4, 16),
) -> ExperimentResult:
    """Inter-task GCUPs vs length variance at several oversubscription
    factors — Figure 2's axis, with the knob the paper left on the table.

    The databases are *unsorted single batches* as in Figure 2; for
    ``k = 1`` this is exactly the paper's setup.
    """
    rng = np.random.default_rng(seed)
    kernel = InterTaskKernel()
    model = CostModel(device)
    launch_probe = kernel.launch_config(1)
    occ = occupancy(
        device,
        launch_probe.threads_per_block,
        launch_probe.registers_per_thread,
        launch_probe.shared_mem_per_block,
    )
    n = occ.concurrent_threads_device * max(factors)

    rows = []
    for std in stds:
        mean = float(max(1000, std))
        lengths = lognormal_lengths(n, mean, float(std), rng)
        cells = int(query_length * lengths.sum())
        gcups = []
        for k in factors:
            t = oversubscribed_inter_time(model, kernel, query_length, lengths, k)
            gcups.append(cells / t / 1e9)
        rows.append((std,) + tuple(gcups))

    recovered = rows[-1][len(factors)] / rows[0][len(factors)]
    return ExperimentResult(
        name="extension_oversubscription",
        title="inter-task GCUPs vs length stddev at oversubscription "
        f"factors {factors} ({device.name}, query {query_length})",
        headers=("stddev",) + tuple(f"k={k}" for k in factors),
        rows=tuple(rows),
        notes=(
            "k=1 is the paper's launch-per-wave model (Figure 2's "
            "collapse); larger grids recover most of the lost throughput "
            f"— at the highest variance, k={factors[-1]} retains "
            f"{100 * recovered:.0f}% of its low-variance performance"
        ),
        extra={"factors": factors},
    )
