"""Automatic dispatch-threshold selection (Section VI).

The paper closes by proposing to detect the optimal inter/intra threshold
during database preprocessing: "characterize the relative performance of
the inter-task and intra-task kernels based on the mean and maximum
lengths of a given group of sequences ... find the transition point where
the intra-task kernel will outperform the inter-task kernel".  With the
cost model in hand this is direct: sweep candidate thresholds, model the
end-to-end time of each, pick the best.  The TAIR experiment of Section IV
(threshold 3072 -> 1500 gains ~4 GCUPs with the improved kernel) is the
validation case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.cudasw import CudaSW
from repro.sequence.database import Database

__all__ = ["ThresholdPoint", "threshold_sweep", "optimal_threshold"]


@dataclass(frozen=True)
class ThresholdPoint:
    """One candidate threshold's modeled outcome."""

    threshold: int
    fraction_over: float
    gcups: float
    total_time: float
    intra_time_fraction: float


def _candidate_thresholds(
    db: Database, lo: int, hi: int, max_candidates: int
) -> list[int]:
    lengths = db.lengths
    lo = max(lo, int(lengths.min()) + 1)
    hi = min(hi, int(lengths.max()))
    if hi <= lo:
        return [max(lo, 2)]
    candidates = np.unique(
        np.linspace(lo, hi, num=max_candidates, dtype=np.int64)
    )
    return [int(t) for t in candidates]


def threshold_sweep(
    app: CudaSW,
    query_length: int,
    db: Database,
    *,
    lo: int = 256,
    hi: int = 8192,
    max_candidates: int = 24,
) -> list[ThresholdPoint]:
    """Model the search at a grid of candidate thresholds.

    Returns one :class:`ThresholdPoint` per candidate, in threshold order.
    The sweep re-uses ``app``'s device/kernel configuration and only varies
    the threshold.
    """
    points = []
    for t in _candidate_thresholds(db, lo, hi, max_candidates):
        candidate = CudaSW(
            app.device,
            intra_kernel=app.intra_kernel,
            threshold=t,
            matrix=app.matrix,
            gaps=app.gaps,
            calibration=app.cost.calibration,
            cache_enabled=app.cost.cache.enabled,
            streaming_copy=app.transfer.streaming,
        )
        report = candidate.predict(query_length, db)
        points.append(
            ThresholdPoint(
                threshold=t,
                fraction_over=report.fraction_over_threshold,
                gcups=report.gcups,
                total_time=report.total_time,
                intra_time_fraction=report.intra_time_fraction,
            )
        )
    return points


def optimal_threshold(
    app: CudaSW,
    query_length: int,
    db: Database,
    *,
    lo: int = 256,
    hi: int = 8192,
    max_candidates: int = 24,
) -> ThresholdPoint:
    """The candidate threshold with the best modeled GCUPs."""
    points = threshold_sweep(
        app, query_length, db, lo=lo, hi=hi, max_candidates=max_candidates
    )
    return max(points, key=lambda p: p.gcups)
