"""Automatic dispatch-threshold selection (Section VI).

The paper closes by proposing to detect the optimal inter/intra threshold
during database preprocessing: "characterize the relative performance of
the inter-task and intra-task kernels based on the mean and maximum
lengths of a given group of sequences ... find the transition point where
the intra-task kernel will outperform the inter-task kernel".  With the
cost model in hand this is direct: sweep candidate thresholds, model the
end-to-end time of each, pick the best.  The TAIR experiment of Section IV
(threshold 3072 -> 1500 gains ~4 GCUPs with the improved kernel) is the
validation case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.app.cudasw import CudaSW
from repro.engine.dbstore import DatabaseStore
from repro.engine.pack import DEFAULT_STRIP_WIDTH, plan_chunks
from repro.sequence.database import Database

__all__ = [
    "STRIP_CELL_COST",
    "ThresholdPoint",
    "optimal_threshold",
    "threshold_sweep",
    "tune_split_threshold",
]

#: Modeled cost of one strip-swept cell relative to one striped
#: bulk-swept cell.  Calibrated against the bimodal throughput
#: benchmark: the strip engine pays more vectorized ops per cell than
#: the Farrar sweep (two prefix scans and the cross-strip carry per
#: row), but amortizes its Python row loop over every tail sequence at
#: once, so the measured per-cell ratio stays modest.
STRIP_CELL_COST = 1.6

#: Fixed overhead of one striped column iteration, in lane-equivalents.
#: The Farrar sweep's Python loop advances one database column per
#: iteration regardless of how many lanes the group holds, so a sparse
#: long-tail group (few lanes, thousands of columns) pays the
#: per-iteration interpreter/ufunc cost across very little useful work
#: — the effect the bimodal benchmark shows as striped's collapse on
#: the tail.  A full ``group_size``-lane bulk group amortizes the same
#: overhead over every lane, which is why the bulk side stays cheap.
STRIPED_COLUMN_OVERHEAD = 12.0


@dataclass(frozen=True)
class ThresholdPoint:
    """One candidate threshold's modeled outcome."""

    threshold: int
    fraction_over: float
    gcups: float
    total_time: float
    intra_time_fraction: float


def _downsample(values: np.ndarray, limit: int) -> np.ndarray:
    """Evenly thin a sorted array to at most ``limit`` entries, always
    keeping the first and last."""
    if values.size <= limit:
        return values
    idx = np.unique(
        np.linspace(0, values.size - 1, num=limit).astype(np.int64)
    )
    return values[idx]


def _candidate_thresholds(
    db: Database, lo: int, hi: int, max_candidates: int
) -> list[int]:
    """Candidate thresholds that each produce a *distinct* partition.

    A threshold only changes the inter/intra split when it crosses a
    length actually present in the database, so candidates are the
    deduplicated sorted sequence lengths (the packed-group boundary
    values) clipped to ``[lo, hi]`` — not a fixed ``linspace`` grid,
    which could place several candidates between two identical
    partitions and let :func:`optimal_threshold` return an arbitrary
    one of them.
    """
    lengths = np.unique(db.lengths)
    lo = max(lo, int(lengths.min()) + 1)
    hi = min(hi, int(lengths.max()))
    if hi <= lo:
        return [max(lo, 2)]
    boundaries = lengths[(lengths >= lo) & (lengths <= hi)]
    if boundaries.size == 0:
        return [max(lo, 2)]
    return [int(t) for t in _downsample(boundaries, max_candidates)]


def threshold_sweep(
    app: CudaSW,
    query_length: int,
    db: Database,
    *,
    lo: int = 256,
    hi: int = 8192,
    max_candidates: int = 24,
) -> list[ThresholdPoint]:
    """Model the search at a grid of candidate thresholds.

    Returns one :class:`ThresholdPoint` per candidate, in threshold order.
    The sweep re-uses ``app``'s device/kernel configuration and only varies
    the threshold.
    """
    points = []
    for t in _candidate_thresholds(db, lo, hi, max_candidates):
        candidate = CudaSW(
            app.device,
            intra_kernel=app.intra_kernel,
            threshold=t,
            matrix=app.matrix,
            gaps=app.gaps,
            calibration=app.cost.calibration,
            cache_enabled=app.cost.cache.enabled,
            streaming_copy=app.transfer.streaming,
        )
        report = candidate.predict(query_length, db)
        points.append(
            ThresholdPoint(
                threshold=t,
                fraction_over=report.fraction_over_threshold,
                gcups=report.gcups,
                total_time=report.total_time,
                intra_time_fraction=report.intra_time_fraction,
            )
        )
    return points


def optimal_threshold(
    app: CudaSW,
    query_length: int,
    db: Database,
    *,
    lo: int = 256,
    hi: int = 8192,
    max_candidates: int = 24,
) -> ThresholdPoint:
    """The candidate threshold with the best modeled GCUPs."""
    points = threshold_sweep(
        app, query_length, db, lo=lo, hi=hi, max_candidates=max_candidates
    )
    return max(points, key=lambda p: p.gcups)


def tune_split_threshold(
    lengths: np.ndarray | DatabaseStore,
    *,
    group_size: int,
    strip_width: int = DEFAULT_STRIP_WIDTH,
    max_candidates: int = 64,
    strip_cell_cost: float = STRIP_CELL_COST,
    column_overhead: float = STRIPED_COLUMN_OVERHEAD,
) -> int:
    """Pick the heterogeneous-dispatch length threshold for a database.

    Models exactly the quantities the ``engine.pack.*`` counters report
    for each candidate split: sequences at or under the threshold pack
    into bulk groups via the same :func:`~repro.engine.pack.plan_chunks`
    geometry the packer uses (including the tail-degeneracy gap split),
    each group costing ``max_len x (lanes + column_overhead)`` — its
    padded rectangle plus the striped sweep's fixed per-column
    iteration cost, which is what sinks sparse long-tail groups; longer
    sequences cost ``strip_cell_cost`` per strip-swept cell
    (``ceil(len / strip_width) * strip_width`` each).  The candidate set
    is the deduplicated sequence lengths plus 0 (all-strips) — every
    distinct partition, nothing between two identical ones — and the
    cheapest modeled split wins, preferring the larger threshold on
    ties.  Pure geometry: no packing, no scoring, O(candidates x
    groups).

    ``lengths`` may be an opened
    :class:`~repro.engine.dbstore.DatabaseStore`: the tuner then reads
    the store's *index* lengths — small in-memory arrays loaded at open
    — so auto-thresholding a memmapped multi-gigabyte database costs
    O(index), never faulting the residue blob in.
    """
    if isinstance(lengths, DatabaseStore):
        lengths = lengths.lengths
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.size == 0:
        return 0
    sorted_lengths = np.sort(lengths)
    distinct = np.unique(sorted_lengths)
    candidates = [0, *(int(t) for t in _downsample(distinct, max_candidates))]
    best_t = 0
    best_cost: float | None = None
    for t in candidates:
        n_bulk = int(np.searchsorted(sorted_lengths, t, side="right"))
        bulk = sorted_lengths[:n_bulk]
        tail = sorted_lengths[n_bulk:]
        cost = 0.0
        # tail_floor=0.0 mirrors pack_database_hetero's bulk side: the
        # striped bulk groups are never gap-split.
        for start, end in plan_chunks(bulk, group_size, tail_floor=0.0).ranges:
            cost += float(int(bulk[end - 1])) * (
                (end - start) + column_overhead
            )
        if tail.size:
            strip_lanes = (tail + strip_width - 1) // strip_width
            cost += float(strip_lanes.sum()) * strip_width * strip_cell_cost
        if best_cost is None or cost < best_cost or (
            cost == best_cost and t > best_t
        ):
            best_t, best_cost = t, cost
    return best_t
