"""Search results: per-sequence scores and ranked hits."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Hit", "SearchResult"]


@dataclass(frozen=True)
class Hit:
    """One database sequence's optimal local-alignment score."""

    index: int
    id: str
    length: int
    score: int

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("Smith-Waterman scores are non-negative")


@dataclass(frozen=True)
class SearchResult:
    """All scores of a functional database search."""

    query_id: str
    scores: np.ndarray = field(repr=False)
    ids: tuple[str, ...] = field(repr=False)
    lengths: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        if not (len(self.scores) == len(self.ids) == len(self.lengths)):
            raise ValueError("scores, ids and lengths must have equal length")

    def __len__(self) -> int:
        return len(self.scores)

    def top(self, k: int = 10) -> list[Hit]:
        """The ``k`` best hits, by score descending then index ascending."""
        if k <= 0:
            raise ValueError("k must be positive")
        k = min(k, len(self.scores))
        order = np.lexsort((np.arange(len(self.scores)), -self.scores))[:k]
        return [
            Hit(
                index=int(i),
                id=self.ids[int(i)],
                length=int(self.lengths[int(i)]),
                score=int(self.scores[int(i)]),
            )
            for i in order
        ]

    def score_of(self, seq_id: str) -> int:
        """Score of a database sequence by identifier.

        Raises :class:`KeyError` for an unknown id and
        :class:`ValueError` for an ambiguous one — databases *can*
        carry duplicate ids (FASTA enforces nothing), and silently
        returning the first match would hide that the caller may be
        reading the wrong sequence's score.  Positional access
        (``result.scores[i]``) is always unambiguous.
        """
        try:
            first = self.ids.index(seq_id)
        except ValueError:
            raise KeyError(f"no sequence {seq_id!r} in the result") from None
        if seq_id in self.ids[first + 1 :]:
            n = self.ids.count(seq_id)
            raise ValueError(
                f"sequence id {seq_id!r} is ambiguous: {n} database "
                "sequences share it; look scores up by index instead"
            )
        return int(self.scores[first])

    def write_tsv(self, path: str | os.PathLike) -> Path:
        """Write every sequence's score as TSV, atomically.

        Columns: database index, sequence id, length, score — one row
        per database sequence in database order.  The file lands via
        temp-file-plus-rename (fsync'd), so a crash mid-write can never
        leave a truncated score table behind: readers see the previous
        version or the complete new one.
        """
        from repro.engine.checkpoint import atomic_write_text

        lines = [f"# query\t{self.query_id}", "# index\tid\tlength\tscore"]
        for i in range(len(self.scores)):
            lines.append(
                f"{i}\t{self.ids[i]}\t{int(self.lengths[i])}"
                f"\t{int(self.scores[i])}"
            )
        return atomic_write_text(path, "\n".join(lines) + "\n")
