"""Inter-task group scheduling (Section II-C of the paper).

The database part below the threshold is sorted by length and cut into
groups of ``s`` sequences, where ``s`` is the number of threads the device
keeps resident at the kernel's occupancy ("calculated at runtime based on
machine parameters to maximize the occupancy").  One kernel launch
processes one group, one thread per sequence, and runs as long as the
group's *longest* member — sorting is what keeps groups near-uniform, and
the threshold is what keeps the log-normal tail out of them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cuda.counts import KernelCounts
from repro.cuda.device import DeviceSpec
from repro.cuda.occupancy import occupancy
from repro.kernels.intertask import InterTaskKernel
from repro.sequence.database import Database

__all__ = ["InterTaskSchedule", "schedule_inter_task"]


@dataclass(frozen=True)
class InterTaskSchedule:
    """The launch plan for the inter-task part of a search."""

    group_size: int
    n_launches: int
    counts: KernelCounts
    #: Useful cells over occupied thread-cells, aggregated over launches —
    #: the quantity whose collapse is Figure 2.
    load_balance_efficiency: float

    def __post_init__(self) -> None:
        if self.group_size <= 0 or self.n_launches <= 0:
            raise ValueError("schedule must contain at least one launch")


def schedule_inter_task(
    query_length: int,
    db: Database,
    kernel: InterTaskKernel,
    device: DeviceSpec,
    *,
    presorted: bool = False,
) -> InterTaskSchedule:
    """Plan the inter-task launches for ``db`` (the below-threshold part).

    Parameters
    ----------
    query_length:
        Length of the query sequence.
    db:
        Database (or sub-database) to process with the inter-task kernel.
    presorted:
        Skip the length sort when the caller already sorted (CUDASW++
        sorts once during preprocessing).
    """
    if query_length <= 0:
        raise ValueError("query length must be positive")
    if len(db) == 0:
        raise ValueError("cannot schedule an empty database")

    launch = kernel.launch_config(1)
    occ = occupancy(
        device,
        launch.threads_per_block,
        launch.registers_per_thread,
        launch.shared_mem_per_block,
    )
    s = occ.concurrent_threads_device

    lengths = db.lengths if presorted else np.sort(db.lengths, kind="stable")
    total = KernelCounts()
    n_launches = 0
    for start in range(0, lengths.size, s):
        group = lengths[start : start + s]
        total += kernel.group_counts(query_length, group)
        n_launches += 1

    useful = total.cells
    slots = useful + total.idle_thread_steps
    return InterTaskSchedule(
        group_size=s,
        n_launches=n_launches,
        counts=total,
        load_balance_efficiency=useful / slots if slots else 1.0,
    )
