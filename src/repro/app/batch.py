"""Multi-query searches.

Real search campaigns run query *sets* (the paper itself evaluates a
ladder of 20 queries).  The batch API runs them against one database,
reusing the preprocessing (sort/split/partition happen once per database
in CUDASW++), and aggregates the modeled timing into campaign-level
GCUPs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.app.cudasw import CudaSW, SearchReport
from repro.app.results import SearchResult
from repro.engine import DatabaseStore, FaultPolicy, MemoryBudget
from repro.obs import (
    COLLECT_MODES,
    RunReport,
    collect as obs_collect,
    current as obs_current,
)
from repro.sequence.database import Database
from repro.sequence.sequence import Sequence

__all__ = ["BatchReport", "predict_batch", "search_batch"]


@dataclass(frozen=True)
class BatchReport:
    """Aggregated outcome of a multi-query campaign."""

    reports: tuple[SearchReport, ...]

    def __post_init__(self) -> None:
        if not self.reports:
            raise ValueError("a batch needs at least one query")

    @property
    def total_time(self) -> float:
        """End-to-end time: the database is copied once, searches run
        back to back."""
        compute = sum(r.compute_time for r in self.reports)
        transfer = max(r.transfer_time for r in self.reports)
        return compute + transfer

    @property
    def total_cells(self) -> int:
        """DP cells across every query in the campaign."""
        return sum(r.total_cells for r in self.reports)

    @property
    def gcups(self) -> float:
        """Campaign-level GCUPs (all queries' cells over the wall time)."""
        return self.total_cells / self.total_time / 1e9

    @property
    def per_query_gcups(self) -> tuple[float, ...]:
        """Each query's own modeled GCUPs, in campaign order."""
        return tuple(r.gcups for r in self.reports)

    def worst_query(self) -> SearchReport:
        """The query with the lowest modeled GCUPs."""
        return min(self.reports, key=lambda r: r.gcups)


def predict_batch(
    app: CudaSW, query_lengths: list[int], db: Database
) -> BatchReport:
    """Model a multi-query campaign from query lengths alone."""
    if not query_lengths:
        raise ValueError("a batch needs at least one query")
    return BatchReport(
        reports=tuple(app.predict(m, db) for m in query_lengths)
    )


def search_batch(
    app: CudaSW,
    queries: list[Sequence],
    db: Database | DatabaseStore,
    *,
    engine: str = "batched",
    workers: int = 1,
    fault_policy: FaultPolicy | None = None,
    checkpoint: str | os.PathLike | None = None,
    resume: bool = False,
    memory_budget: MemoryBudget | None = None,
    collect: str = "off",
    split_threshold: int | str | None = None,
    strip_cell_cost: float | None = None,
    striped_column_overhead: float | None = None,
) -> tuple[list[SearchResult], BatchReport]:
    """Functionally search every query; returns per-query results plus
    the aggregated report.

    ``db`` may be an opened :class:`~repro.engine.DatabaseStore` — the
    pre-packed geometry then pays off once per *campaign*: every query
    reuses the same memmapped residues and stored group plan.

    ``engine`` and ``workers`` select the functional score backend per
    :meth:`CudaSW.search` — the batched default reuses CUDASW++'s
    once-per-database preprocessing spirit by scoring whole packed
    groups per NumPy sweep for every query of the campaign;
    ``engine="striped"`` runs the same pipeline with the Farrar
    striped lane kernel, ``engine="hetero"`` dispatches each packed
    group to the bulk or long-tail strip engine by length threshold
    (``split_threshold``: ``"auto"`` or an integer length, hetero
    only).  ``strip_cell_cost`` and ``striped_column_overhead``
    override the ``"auto"`` threshold's cost-model constants for the
    whole campaign (hetero only, see :meth:`CudaSW.search`).

    ``fault_policy`` is applied to every query's search (batched or
    striped engine only).  The policy's deadline is per query, not per campaign; a
    query that exceeds it raises
    :class:`~repro.engine.SearchDeadlineExceeded` with that query's
    partial scores attached.

    ``checkpoint`` names a *base* path for crash-safe write-ahead
    journals, one per query: query ``i`` journals to
    ``<checkpoint>.q<i>`` (zero-padded).  With ``resume=True``,
    already-complete queries replay entirely from their journals and a
    partially journaled query recomputes only its missing groups, so a
    killed campaign restarts from where it died.  ``memory_budget``
    caps per-group sweep memory exactly as in :meth:`CudaSW.search`.

    ``collect`` (``"off"|"counters"|"full"``) opens one campaign-level
    observability session spanning every query: per-query phase spans
    and counters accumulate into a single :class:`~repro.obs.RunReport`
    stored on ``app.last_run_report`` (spans/counters from all queries
    merged; an already-active outer session is reused instead).
    """
    if not queries:
        raise ValueError("a batch needs at least one query")
    if collect not in COLLECT_MODES:
        raise ValueError(
            f"collect must be one of {COLLECT_MODES}, got {collect!r}"
        )

    def run() -> tuple[list[SearchResult], BatchReport]:
        results = []
        reports = []
        for i, query in enumerate(queries):
            journal_path = (
                None
                if checkpoint is None
                else f"{os.fspath(checkpoint)}.q{i:04d}"
            )
            result, report = app.search(
                query, db, engine=engine, workers=workers,
                fault_policy=fault_policy, checkpoint=journal_path,
                resume=resume, memory_budget=memory_budget,
                split_threshold=split_threshold,
                strip_cell_cost=strip_cell_cost,
                striped_column_overhead=striped_column_overhead,
            )
            results.append(result)
            reports.append(report)
        return results, BatchReport(reports=tuple(reports))

    if collect == "off" or obs_current().enabled:
        return run()
    with obs_collect(collect) as instr:
        instr.count("batch.queries", len(queries))
        out = run()
    db_view = db.database if isinstance(db, DatabaseStore) else db
    meta = {
        "batch_queries": len(queries),
        "database_sequences": len(db_view),
        "database_residues": db_view.total_residues,
        "engine": engine,
        "workers": workers,
        "campaign_gcups": out[1].gcups,
    }
    if isinstance(db, DatabaseStore):
        meta["database_store"] = str(db.path)
    app.last_run_report = RunReport.from_instrumentation(
        instr,
        engine_report=app.last_engine_report,
        meta=meta,
    )
    return out
