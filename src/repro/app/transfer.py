"""Host-to-device transfer model (and Section VI's streaming overlap).

CUDASW++ copies the whole encoded database to device memory before the
first alignment.  The paper's future-work list proposes copying a small
slice first, starting alignments on it, and streaming the rest in the
background — hiding most of the copy behind compute.  Both policies are
modeled here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import DeviceSpec

__all__ = ["TransferModel"]

#: Encoded residues are one byte each; offsets/lengths add a few percent.
METADATA_OVERHEAD = 1.05


@dataclass(frozen=True)
class TransferModel:
    """PCIe copy-time model.

    Parameters
    ----------
    device:
        Target device (provides the PCIe bandwidth).
    streaming:
        When true, only the first chunk's copy time is exposed; the
        remainder overlaps with kernel execution and only the part that
        compute cannot cover becomes visible (Section VI).
    first_chunk_fraction:
        Fraction of the database copied synchronously before compute
        starts in streaming mode.
    """

    device: DeviceSpec
    streaming: bool = False
    first_chunk_fraction: float = 0.05

    def __post_init__(self) -> None:
        if not 0 < self.first_chunk_fraction <= 1:
            raise ValueError("first_chunk_fraction must be in (0, 1]")

    def database_bytes(self, total_residues: int) -> int:
        """Device-resident size of an encoded database."""
        if total_residues < 0:
            raise ValueError("total_residues must be non-negative")
        return int(total_residues * METADATA_OVERHEAD)

    def fits_in_device_memory(self, total_residues: int) -> bool:
        """Whether the database fits at all (the paper notes NR/TrEMBL do
        not fit a single C1060/C2050 without streaming)."""
        return self.database_bytes(total_residues) <= self.device.global_mem_bytes

    def visible_copy_time(self, total_residues: int, compute_time: float) -> float:
        """Copy time that extends the end-to-end run.

        Non-streaming: the full copy is serial with compute.  Streaming:
        the first chunk is serial; the rest is hidden under ``compute_time``
        and only any excess shows.
        """
        if compute_time < 0:
            raise ValueError("compute_time must be non-negative")
        nbytes = self.database_bytes(total_residues)
        full = nbytes / self.device.pcie_bandwidth_bytes_per_second
        if not self.streaming:
            return full
        first = full * self.first_chunk_fraction
        rest = full - first
        return first + max(0.0, rest - compute_time)
