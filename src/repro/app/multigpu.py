"""Multi-GPU scaling model.

"The kernel tasks are independent, and thus the running time will scale
almost linearly with the number of GPUs available" (Section IV-B).  The
unit of work is the *kernel launch*: an occupancy-sized group of sorted
sequences (inter-task) or a block's pair (intra-task), and a launch runs
as long as its longest member — so naive round-robin over sequences (or
over groups) strands the expensive tail groups on one card.  The splitter
therefore schedules whole sorted groups with the classic LPT greedy rule:
estimate each group's cost (members x longest member, the launch-boundary
synchronization model of :mod:`repro.app.scheduler`), assign
largest-first to the least-loaded card.  Tests cover both the near-linear
scaling this achieves and the imbalance naive dealing suffers.
"""

from __future__ import annotations

import numpy as np

from repro.app.cudasw import CudaSW, SearchReport
from repro.cuda.occupancy import occupancy
from repro.sequence.database import Database

__all__ = ["split_round_robin", "split_lpt", "multi_gpu_time",
           "inter_task_group_size"]


def _blocks(db: Database, block_size: int) -> list[np.ndarray]:
    order = np.argsort(db.lengths, kind="stable")
    return [
        order[start : start + block_size]
        for start in range(0, len(db), block_size)
    ]


def _validate_split(db: Database, num_gpus: int, block_size: int) -> None:
    if num_gpus <= 0:
        raise ValueError("num_gpus must be positive")
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if num_gpus > max(len(db) // block_size, 1):
        raise ValueError(
            f"cannot split {len(db)} sequences in blocks of {block_size} "
            f"over {num_gpus} GPUs"
        )


def split_round_robin(
    db: Database, num_gpus: int, *, block_size: int = 1
) -> list[Database]:
    """Naive shard: deal sorted blocks of ``block_size`` round-robin.

    Kept for comparison (and for ``block_size=1`` sequence dealing); the
    searcher uses :func:`split_lpt`, which balances the tail groups.
    """
    _validate_split(db, num_gpus, block_size)
    blocks = _blocks(db, block_size)
    return [
        db.select(np.concatenate(blocks[g::num_gpus]), name=f"{db.name}[gpu{g}]")
        for g in range(num_gpus)
    ]


def split_lpt(
    db: Database, num_gpus: int, *, block_size: int, threshold: int = 3072
) -> list[Database]:
    """LPT shard: whole sorted groups, largest estimated cost first, each
    to the currently least-loaded card.

    A group's cost estimate follows the dispatch: below-threshold members
    run inter-task and cost ``count x longest`` (launch-boundary
    synchronization); above-threshold members run intra-task, which is
    load-balanced per pair, so they cost their residue sum.
    """
    _validate_split(db, num_gpus, block_size)
    blocks = _blocks(db, block_size)
    costs = []
    for idx in blocks:
        lens = db.lengths[idx]
        below = lens[lens < threshold]
        above = lens[lens >= threshold]
        cost = float(above.sum())
        if below.size:
            cost += float(below.size) * float(below.max())
        costs.append(cost)
    loads = [0.0] * num_gpus
    assigned: list[list[np.ndarray]] = [[] for _ in range(num_gpus)]
    for b in np.argsort(costs)[::-1]:
        g = int(np.argmin(loads))
        assigned[g].append(blocks[int(b)])
        loads[g] += costs[int(b)]
    shards = []
    for g in range(num_gpus):
        if not assigned[g]:  # pragma: no cover - prevented by validation
            raise ValueError("a GPU received no work")
        idx = np.concatenate(assigned[g])
        shards.append(db.select(idx, name=f"{db.name}[gpu{g}]"))
    return shards


def inter_task_group_size(app: CudaSW) -> int:
    """The occupancy-derived inter-task group size of ``app``'s device."""
    launch = app.inter_kernel.launch_config(1)
    occ = occupancy(
        app.device,
        launch.threads_per_block,
        launch.registers_per_thread,
        launch.shared_mem_per_block,
    )
    return occ.concurrent_threads_device


def multi_gpu_time(
    app: CudaSW, query_length: int, db: Database, num_gpus: int
) -> tuple[float, list[SearchReport]]:
    """Wall time (slowest card) and per-card reports for an N-GPU search."""
    shards = split_lpt(
        db, num_gpus,
        block_size=inter_task_group_size(app),
        threshold=app.threshold,
    )
    reports = [app.predict(query_length, shard) for shard in shards]
    return max(r.total_time for r in reports), reports
