"""End-to-end CUDASW++: threshold dispatch, timing model, functional search.

:class:`CudaSW` is the reproduction's equivalent of the ``cudasw``
executable: configure a device, an intra-task kernel generation
(original or improved) and a threshold, then either

* :meth:`CudaSW.predict` — model the run time and GCUPs of a search from
  sequence lengths alone (how every figure/table experiment runs at
  Swiss-Prot scale), or
* :meth:`CudaSW.search` — actually compute every alignment score
  (functional mode, for examples and integration tests), with the same
  timing report attached.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, SubstitutionMatrix
from repro.cuda.calibration import DEFAULT_CALIBRATION, CostCalibration
from repro.cuda.cost import CostModel
from repro.cuda.counts import KernelCounts
from repro.cuda.device import TESLA_C1060, DeviceSpec
from repro.kernels.base import PairKernel
from repro.kernels.intertask import InterTaskKernel
from repro.kernels.intratask_improved import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
)
from repro.kernels.intratask_original import OriginalIntraTaskKernel
from repro.app.results import SearchResult
from repro.app.scheduler import schedule_inter_task
from repro.app.transfer import TransferModel
from repro.engine import (
    BatchedEngine,
    DatabaseStore,
    EngineReport,
    FaultPolicy,
    MemoryBudget,
)
from repro.obs import (
    COLLECT_MODES,
    RunReport,
    collect as obs_collect,
    current as obs_current,
)
from repro.sequence.database import Database
from repro.sequence.sequence import Sequence
from repro.sw.antidiagonal import sw_score_antidiagonal
from repro.sw.scalar import sw_score_scalar
from repro.sw.utils import as_codes

__all__ = ["CudaSW", "SearchReport", "tuned_improved_config", "SEARCH_ENGINES"]

#: The paper's default dispatch threshold.
DEFAULT_THRESHOLD = 3072

#: Functional score backends selectable in :meth:`CudaSW.search`.
SEARCH_ENGINES = ("scalar", "antidiagonal", "batched", "striped", "hetero")


def tuned_improved_config(device: DeviceSpec) -> ImprovedKernelConfig:
    """The strip heights Section IV-A found optimal: 512 on the C1060
    (128 threads x tile height 4) and 1024 on the C2050 (256 x 4)."""
    if device.name == TESLA_C1060.name:
        return ImprovedKernelConfig(threads_per_block=128, tile_height=4)
    return ImprovedKernelConfig(threads_per_block=256, tile_height=4)


@dataclass(frozen=True)
class SearchReport:
    """Modeled timing breakdown of one database search."""

    device: str
    query_length: int
    threshold: int
    n_inter_sequences: int
    n_intra_sequences: int
    fraction_over_threshold: float
    inter_time: float
    intra_time: float
    transfer_time: float
    inter_counts: KernelCounts
    intra_counts: KernelCounts
    inter_launches: int
    load_balance_efficiency: float
    total_cells: int

    @property
    def compute_time(self) -> float:
        """Kernel time only: inter- plus intra-task, excluding copies."""
        return self.inter_time + self.intra_time

    @property
    def total_time(self) -> float:
        """End-to-end modeled time: compute plus visible transfer."""
        return self.compute_time + self.transfer_time

    @property
    def gcups(self) -> float:
        """Overall GCUPs: query length x database residues over run time
        (the paper's metric)."""
        return self.total_cells / self.total_time / 1e9

    @property
    def intra_time_fraction(self) -> float:
        """Fraction of running time spent in the intra-task kernel — the
        y-axis of the paper's Figure 5(b)."""
        if self.total_time <= 0:
            return 0.0
        return self.intra_time / self.total_time


class CudaSW:
    """The CUDASW++ application on the device model."""

    def __init__(
        self,
        device: DeviceSpec = TESLA_C1060,
        *,
        intra_kernel: str | PairKernel = "improved",
        threshold: int | str = DEFAULT_THRESHOLD,
        matrix: SubstitutionMatrix = BLOSUM62,
        gaps: GapPenalty | None = None,
        calibration: CostCalibration = DEFAULT_CALIBRATION,
        cache_enabled: bool = True,
        streaming_copy: bool = False,
    ) -> None:
        auto_threshold = threshold == "auto"
        if auto_threshold:
            threshold = DEFAULT_THRESHOLD  # placeholder until tuned per-db
        if not isinstance(threshold, int) or threshold <= 0:
            raise ValueError(
                "threshold must be a positive integer or 'auto' "
                f"(got {threshold!r})"
            )
        #: Section VI mode: re-detect the optimal threshold per database
        #: during :meth:`predict`/:meth:`search` preprocessing.
        self.auto_threshold = auto_threshold
        self.device = device
        self.threshold = threshold
        self.matrix = matrix
        self.gaps = gaps or GapPenalty.cudasw_default()
        self.inter_kernel = InterTaskKernel()
        if isinstance(intra_kernel, PairKernel):
            self.intra_kernel = intra_kernel
        elif intra_kernel == "original":
            self.intra_kernel = OriginalIntraTaskKernel()
        elif intra_kernel == "improved":
            self.intra_kernel = ImprovedIntraTaskKernel(
                tuned_improved_config(device), device
            )
        else:
            raise ValueError(
                f"intra_kernel must be 'original', 'improved' or a kernel, "
                f"got {intra_kernel!r}"
            )
        self.cost = CostModel(device, calibration, cache_enabled=cache_enabled)
        self.transfer = TransferModel(device, streaming=streaming_copy)
        self._auto_cache: dict = {}
        #: Packing/execution accounting of the last batched-engine search
        #: (``None`` until a ``engine="batched"`` search runs; reset to
        #: ``None`` by every :meth:`search` so other engines never show a
        #: previous search's stats).
        self.last_engine_report: EngineReport | None = None
        #: Merged observability document of the last
        #: ``search(..., collect="counters"|"full")`` call (``None``
        #: otherwise, or when an outer ``obs.collect`` session owns the
        #: collection).
        self.last_run_report: RunReport | None = None

    def _resolve_threshold(self, query_length: int, db: Database) -> int:
        """The dispatch threshold for this database: the configured one,
        or — in ``threshold='auto'`` mode — the Section VI detected
        optimum (cached per database fingerprint)."""
        if not self.auto_threshold:
            return self.threshold
        fingerprint = (
            len(db),
            db.total_residues,
            int(db.lengths.max()),
            query_length,
        )
        if self._auto_cache.get("fingerprint") == fingerprint:
            return self._auto_cache["threshold"]
        from repro.app.threshold import optimal_threshold

        best = optimal_threshold(self, query_length, db, max_candidates=12)
        self._auto_cache = {
            "fingerprint": fingerprint,
            "threshold": best.threshold,
        }
        return best.threshold

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------
    def predict(self, query_length: int, db: Database) -> SearchReport:
        """Model the run time of searching ``db`` with a query of the
        given length.  Works on lengths-only databases."""
        if query_length <= 0:
            raise ValueError("query length must be positive")
        threshold = self._resolve_threshold(query_length, db)
        below, above = db.split_by_threshold(threshold)

        inter_time = 0.0
        inter_counts = KernelCounts()
        inter_launches = 0
        balance = 1.0
        if below is not None:
            schedule = schedule_inter_task(
                query_length, below, self.inter_kernel, self.device
            )
            inter_counts = schedule.counts
            inter_launches = schedule.n_launches
            balance = schedule.load_balance_efficiency
            launch = self.inter_kernel.launch_config(
                max(schedule.group_size // self.inter_kernel.threads_per_block, 1)
            )
            profile = self.inter_kernel.cache_profile(
                query_length, int(below.lengths.mean())
            )
            inter_time = self.cost.kernel_time(
                inter_counts, launch, profile, launches=schedule.n_launches
            ).total

        intra_time = 0.0
        intra_counts = KernelCounts()
        if above is not None:
            intra_counts = self.intra_kernel.bulk_pair_counts(
                query_length, above.lengths
            )
            launch = self.intra_kernel.launch_config(len(above))
            profile = self.intra_kernel.cache_profile(
                query_length, int(above.lengths.mean())
            )
            intra_time = self.cost.kernel_time(
                intra_counts, launch, profile
            ).total

        transfer_time = self.transfer.visible_copy_time(
            db.total_residues, inter_time + intra_time
        )
        instr = obs_current()
        if instr.enabled:
            # The modeled Table I quantities for this dispatch split.
            instr.count("model.predict_calls", 1)
            instr.count("model.cells", query_length * db.total_residues)
            instr.count(
                "model.inter.sequences", 0 if below is None else len(below)
            )
            instr.count("model.inter.launches", inter_launches)
            instr.count(
                "model.inter.global_transactions",
                inter_counts.global_transactions,
            )
            instr.count(
                "model.intra.sequences", 0 if above is None else len(above)
            )
            instr.count(
                "model.intra.global_transactions",
                intra_counts.global_transactions,
            )
        return SearchReport(
            device=self.device.name,
            query_length=query_length,
            threshold=threshold,
            n_inter_sequences=0 if below is None else len(below),
            n_intra_sequences=0 if above is None else len(above),
            fraction_over_threshold=db.fraction_over(threshold),
            inter_time=inter_time,
            intra_time=intra_time,
            transfer_time=transfer_time,
            inter_counts=inter_counts,
            intra_counts=intra_counts,
            inter_launches=inter_launches,
            load_balance_efficiency=balance,
            total_cells=query_length * db.total_residues,
        )

    # ------------------------------------------------------------------
    # Functional search
    # ------------------------------------------------------------------
    def search(
        self,
        query: Sequence,
        db: Database | DatabaseStore,
        *,
        engine: str = "batched",
        workers: int = 1,
        group_size: int | None = None,
        fault_policy: FaultPolicy | None = None,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
        memory_budget: MemoryBudget | None = None,
        simulate_kernels: bool = False,
        collect: str = "off",
        memory_phases: bool = False,
        split_threshold: int | str | None = None,
        strip_cell_cost: float | None = None,
        striped_column_overhead: float | None = None,
    ) -> tuple[SearchResult, SearchReport]:
        """Compute every database sequence's score, plus the timing report.

        ``db`` is a materialized :class:`Database` or an opened
        :class:`~repro.engine.DatabaseStore` (``repro db build`` +
        :func:`~repro.engine.open_database`): the store path reads
        residues through a validated memory map, reuses the group
        geometry persisted at build time, and ships group references —
        not pickled arrays — to pool workers.  Scores are bit-identical
        either way, on every engine.

        Parameters
        ----------
        engine:
            Functional score backend: ``"batched"`` (default) packs
            length-sorted groups and advances all lanes per NumPy step
            (:class:`~repro.engine.BatchedEngine`; packing accounting
            lands in :attr:`last_engine_report`), ``"striped"`` the
            same packed pipeline with the Farrar striped lane kernel
            and saturating 8/16-bit score tiers
            (:mod:`repro.engine.striped`), ``"hetero"`` the paper's
            length-threshold split — sequences at or under the split
            threshold sweep as striped bulk groups, longer ones as
            bounded-padding strip groups
            (:mod:`repro.engine.strips`) in the same search —
            ``"antidiagonal"`` runs the per-pair wavefront aligner,
            ``"scalar"`` the textbook reference.  All engines are
            bit-identical, which tests verify; they differ only in
            throughput.
        workers:
            Worker processes for the batched/striped engines' group
            fan-out (1 = serial; ignored by the per-pair engines).
        group_size:
            Lanes per packed group for the batched/striped engines
            (default :data:`~repro.engine.DEFAULT_GROUP_SIZE`).
        fault_policy:
            :class:`~repro.engine.FaultPolicy` for the batched
            engine's fan-out: per-task timeout, bounded retries with
            backoff, and a whole-search deadline (on expiry a
            :class:`~repro.engine.SearchDeadlineExceeded` is raised
            carrying partial scores).  Only the batched engine
            dispatches work units, so combining a policy with another
            engine or ``simulate_kernels`` is an error.
        checkpoint:
            Path of a crash-safe write-ahead journal
            (:class:`~repro.engine.CheckpointJournal`): every completed
            group's scores are durably appended as the search runs, so
            a ``SIGKILL``/OOM/reboot costs at most the group in flight.
            Batched engine only (like ``fault_policy``).  A search that
            dies behind a deadline
            (:class:`~repro.engine.SearchDeadlineExceeded`) leaves its
            completed groups in the journal, so it is resumable too.
        resume:
            With ``checkpoint``: replay the existing journal (validated
            against a content fingerprint of query + database + scoring
            parameters; a stale or corrupt journal raises
            :class:`~repro.engine.CheckpointError` instead of being
            merged) and recompute only the unjournaled groups.  Scores
            are bit-identical to an uninterrupted run.  Without
            ``resume``, an existing journal is truncated and the search
            starts fresh.
        memory_budget:
            Optional :class:`~repro.engine.MemoryBudget` capping any
            single packed group's estimated sweep working set; oversized
            groups are split at packing time instead of OOM-killing the
            process (batched engine only; scores unchanged).
        simulate_kernels:
            When true, every pair runs through the dispatched kernel's
            functional simulator instead of ``engine`` (slow; small
            databases only) while counts/timing still come from the
            kernel models.
        collect:
            Observability mode (:data:`repro.obs.COLLECT_MODES`):
            ``"off"`` (default) records nothing, ``"counters"`` fills a
            counter registry, ``"full"`` also traces timed spans per
            phase.  When not off, the merged
            :class:`~repro.obs.RunReport` lands in
            :attr:`last_run_report` — unless an outer
            :func:`repro.obs.collect` session is active, in which case
            this search contributes to it and the outer owner builds
            the report.
        memory_phases:
            With ``collect="full"``, also track per-phase tracemalloc
            peaks, surfaced as ``engine.mem.<phase>.peak_bytes``
            counters and cross-checked against the
            :class:`~repro.engine.MemoryBudget` estimator (ignored
            when this search joins an outer session, which owns the
            session configuration).
        split_threshold:
            Heterogeneous dispatch length threshold, ``engine="hetero"``
            only: ``"auto"`` (the default for hetero; tuned per
            database by :func:`repro.app.threshold.tune_split_threshold`
            from the packed-group geometry) or an integer length
            ``>= 0`` — sequences at or under it go to the striped bulk
            engine, longer ones to the strip-sweep engine.
        strip_cell_cost, striped_column_overhead:
            Cost-model knobs for the ``"auto"`` split threshold
            (``engine="hetero"`` only): the relative cost of one
            strip-engine cell versus a striped bulk cell, and the fixed
            per-column striped overhead.  ``None`` keeps the measured
            defaults (:data:`~repro.app.threshold.STRIP_CELL_COST`,
            :data:`~repro.app.threshold.STRIPED_COLUMN_OVERHEAD`); a
            machine whose measured ratio differs can recalibrate the
            split without editing the module constants.
        """
        if collect not in COLLECT_MODES:
            raise ValueError(
                f"collect must be one of {COLLECT_MODES}, got {collect!r}"
            )
        # Reset per-search accounting up front so a scalar/antidiagonal/
        # simulate_kernels search never leaves a previous batched search's
        # stats visible.
        self.last_engine_report = None
        self.last_run_report = None
        # A pre-packed store searches through its memmapped Database
        # view; the store handle rides along so the batched engines can
        # reuse its geometry and ship group references to pool workers.
        store: DatabaseStore | None = None
        if isinstance(db, DatabaseStore):
            store = db
            db = store.database
        if not db.has_residues:
            raise ValueError("functional search needs a materialized database")
        if query.alphabet != db.alphabet:
            raise ValueError("query and database alphabets differ")
        if engine not in SEARCH_ENGINES:
            raise ValueError(
                f"engine must be one of {SEARCH_ENGINES}, got {engine!r}"
            )
        batched_only = {
            "fault_policy": fault_policy,
            "checkpoint": checkpoint,
            "memory_budget": memory_budget,
        }
        for name, value in batched_only.items():
            if value is not None and (
                engine not in ("batched", "striped", "hetero")
                or simulate_kernels
            ):
                raise ValueError(
                    f"{name} applies to the batched/striped/hetero "
                    f"engines only (got engine={engine!r}, "
                    f"simulate_kernels={simulate_kernels})"
                )
        if split_threshold is not None and (
            engine != "hetero" or simulate_kernels
        ):
            raise ValueError(
                "split_threshold applies to engine='hetero' only "
                f"(got engine={engine!r}, "
                f"simulate_kernels={simulate_kernels})"
            )
        for name, value in (
            ("strip_cell_cost", strip_cell_cost),
            ("striped_column_overhead", striped_column_overhead),
        ):
            if value is not None and (
                engine != "hetero" or simulate_kernels
            ):
                raise ValueError(
                    f"{name} applies to engine='hetero' only "
                    f"(got engine={engine!r}, "
                    f"simulate_kernels={simulate_kernels})"
                )
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")

        if collect == "off" or obs_current().enabled:
            return self._search_traced(
                query, db, engine, workers, group_size, fault_policy,
                checkpoint, resume, memory_budget, simulate_kernels,
                split_threshold, strip_cell_cost, striped_column_overhead,
                store,
            )
        with obs_collect(collect, memory=memory_phases) as instr:
            result, report = self._search_traced(
                query, db, engine, workers, group_size, fault_policy,
                checkpoint, resume, memory_budget, simulate_kernels,
                split_threshold, strip_cell_cost, striped_column_overhead,
                store,
            )
        meta = {
            "query_id": query.id,
            "query_length": len(query),
            "database_sequences": len(db),
            "database_residues": db.total_residues,
            "engine": "simulate_kernels" if simulate_kernels else engine,
            "workers": workers,
            "device": self.device.name,
        }
        if store is not None:
            meta["database_store"] = str(store.path)
        self.last_run_report = RunReport.from_instrumentation(
            instr,
            engine_report=self.last_engine_report,
            search_report=report,
            meta=meta,
        )
        return result, report

    def _search_traced(
        self,
        query: Sequence,
        db: Database,
        engine: str,
        workers: int,
        group_size: int | None,
        fault_policy: FaultPolicy | None,
        checkpoint: str | os.PathLike | None,
        resume: bool,
        memory_budget: MemoryBudget | None,
        simulate_kernels: bool,
        split_threshold: int | str | None = None,
        strip_cell_cost: float | None = None,
        striped_column_overhead: float | None = None,
        store: DatabaseStore | None = None,
    ) -> tuple[SearchResult, SearchReport]:
        """The search pipeline, phases wrapped in ambient-tracer spans."""
        instr = obs_current()
        with instr.span("search"):
            with instr.span("threshold_resolve"):
                threshold = self._resolve_threshold(len(query), db)
            # Per-query work hoisted out of the pair loop: encode/validate
            # the query once; the batched engine likewise builds its query
            # profile once per search.
            with instr.span("query_encode"):
                q_codes = as_codes(query, self.matrix)

            if simulate_kernels:
                with instr.span("simulate_kernels"):
                    scores = np.zeros(len(db), dtype=np.int64)
                    for i in range(len(db)):
                        d_codes = db.codes_of(i)
                        kernel: PairKernel = (
                            self.intra_kernel
                            if d_codes.size >= threshold
                            else self.inter_kernel
                        )
                        scores[i] = kernel.run_pair(
                            q_codes, d_codes, self.matrix, self.gaps
                        ).score
            elif engine in ("batched", "striped", "hetero"):
                lane_engine = {
                    "batched": "gotoh",
                    "striped": "striped",
                    "hetero": "hetero",
                }[engine]
                batched = BatchedEngine(
                    self.matrix,
                    self.gaps,
                    workers=workers,
                    fault_policy=fault_policy,
                    memory_budget=memory_budget,
                    lane_engine=lane_engine,
                    split_threshold=(
                        split_threshold if engine == "hetero" else None
                    ),
                    strip_cell_cost=(
                        strip_cell_cost if engine == "hetero" else None
                    ),
                    striped_column_overhead=(
                        striped_column_overhead
                        if engine == "hetero"
                        else None
                    ),
                    **(
                        {}
                        if group_size is None
                        else {"group_size": group_size}
                    ),
                )
                scores, self.last_engine_report = batched.search(
                    q_codes,
                    store if store is not None else db,
                    checkpoint=checkpoint,
                    resume=resume,
                )
            else:
                score_pair = (
                    sw_score_scalar
                    if engine == "scalar"
                    else sw_score_antidiagonal
                )
                with instr.span("pair_loop"):
                    scores = np.zeros(len(db), dtype=np.int64)
                    for i in range(len(db)):
                        scores[i] = score_pair(
                            q_codes, db.codes_of(i), self.matrix, self.gaps
                        )
                    instr.count("engine.pairs_scored", len(db))

            with instr.span("collect_results"):
                result = SearchResult(
                    query_id=query.id,
                    scores=scores,
                    ids=tuple(db.id_of(i) for i in range(len(db))),
                    lengths=db.lengths.copy(),
                )
            with instr.span("model"):
                report = self.predict(len(query), db)
        return result, report
