"""Structured run reports: spans + counters + engine/model accounting.

:class:`RunReport` is the single versioned JSON document a profiled run
produces — the merge of the span forest (phase timings), the counter
registry (Table I-style work totals), the batched engine's
:class:`~repro.engine.EngineReport` (packing accounting) and the
modeled :class:`~repro.app.cudasw.SearchReport` (device timing model).
The CLI's ``--metrics-out`` writes it, ``--profile`` renders it, and
benchmarks emit their results through the same writer so ``BENCH_*``
artifacts carry phase breakdowns.

``to_prometheus`` emits the counters and span totals in the Prometheus
text exposition format, for a future service front end to scrape.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.context import AnyInstrumentation
from repro.obs.spans import Span

if TYPE_CHECKING:
    from repro.app.cudasw import SearchReport
    from repro.engine import EngineReport

__all__ = ["RunReport", "SCHEMA_VERSION", "sanitize_metric_name"]

#: Version of the JSON document layout.  Bump on breaking changes.
SCHEMA_VERSION = 1

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _engine_report_dict(engine_report: EngineReport) -> dict[str, Any]:
    return {
        "group_size": engine_report.group_size,
        "workers": engine_report.workers,
        "lane_engine": engine_report.lane_engine,
        "n_groups": engine_report.n_groups,
        "group_sizes": list(engine_report.group_sizes),
        "group_max_lengths": list(engine_report.group_max_lengths),
        "group_efficiencies": list(engine_report.group_efficiencies),
        "residues": engine_report.residues,
        "padded_cells": engine_report.padded_cells,
        "padding_efficiency": engine_report.padding_efficiency,
    }


def _search_report_dict(search_report: SearchReport) -> dict[str, Any]:
    return {
        "device": search_report.device,
        "query_length": search_report.query_length,
        "threshold": search_report.threshold,
        "n_inter_sequences": search_report.n_inter_sequences,
        "n_intra_sequences": search_report.n_intra_sequences,
        "inter_time": search_report.inter_time,
        "intra_time": search_report.intra_time,
        "transfer_time": search_report.transfer_time,
        "total_time": search_report.total_time,
        "gcups": search_report.gcups,
        "load_balance_efficiency": search_report.load_balance_efficiency,
        "total_cells": search_report.total_cells,
        "inter_global_transactions":
            search_report.inter_counts.global_transactions,
        "intra_global_transactions":
            search_report.intra_counts.global_transactions,
    }


@dataclass(frozen=True)
class RunReport:
    """One run's merged observability document."""

    collect: str
    spans: tuple[Span, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    engine: dict[str, Any] | None = None
    model: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_instrumentation(
        cls,
        instr: AnyInstrumentation,
        *,
        engine_report: EngineReport | None = None,
        search_report: SearchReport | None = None,
        meta: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Snapshot a finished collection session into a report.

        ``engine_report``/``search_report`` are the existing
        :class:`EngineReport` / :class:`SearchReport` objects to merge
        (either may be ``None``).
        """
        spans = () if instr.tracer is None else instr.tracer.roots
        counters = {} if instr.counters is None else instr.counters.as_dict()
        return cls(
            collect=instr.mode,
            spans=spans,
            counters=counters,
            engine=(
                None if engine_report is None
                else _engine_report_dict(engine_report)
            ),
            model=(
                None if search_report is None
                else _search_report_dict(search_report)
            ),
            meta=dict(meta or {}),
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.run_report",
            "schema_version": SCHEMA_VERSION,
            "collect": self.collect,
            "spans": [s.as_dict() for s in self.spans],
            "counters": dict(self.counters),
            "engine": self.engine,
            "model": self.model,
            "meta": dict(self.meta),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the JSON document to ``path`` atomically and return it.

        Uses temp-file-plus-rename so a crash mid-write never leaves a
        truncated (unparseable) report on disk.
        """
        from repro.engine.checkpoint import atomic_write_text

        return atomic_write_text(path, self.to_json())

    # -- derived views --------------------------------------------------
    def span_seconds(self) -> dict[str, float]:
        """Summed duration per slash-joined span path."""
        totals: dict[str, float] = {}
        for root in self.spans:
            for path, span in root.walk():
                totals[path] = totals.get(path, 0.0) + span.seconds
        return totals

    def render_profile(self) -> str:
        """The ``--profile`` view: span tree plus counter table."""
        parts = ["== span tree =="]
        if self.spans:
            from repro.obs.spans import render_forest

            parts.append(render_forest(self.spans))
        else:
            parts.append(
                "(no spans recorded"
                + (
                    " — collect mode was 'counters')"
                    if self.collect == "counters"
                    else ")"
                )
            )
        parts.append("")
        parts.append("== counters ==")
        if self.counters:
            width = max(len(k) for k in self.counters)
            parts.append(
                "\n".join(
                    f"{k:<{width}}  {v:>16,}"
                    for k, v in sorted(self.counters.items())
                )
            )
        else:
            parts.append("(no counters recorded)")
        if self.engine is not None:
            parts.append("")
            parts.append("== engine packing ==")
            parts.append(
                f"groups: {self.engine['n_groups']}  "
                f"residues: {self.engine['residues']:,}  "
                f"padded cells: {self.engine['padded_cells']:,}  "
                f"padding efficiency: "
                f"{self.engine['padding_efficiency']:.3f}"
            )
        return "\n".join(parts)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """Prometheus text exposition of counters and span totals."""
        lines = [
            f"# HELP {prefix}_counter_total "
            "Instrumentation counter totals for one run.",
            f"# TYPE {prefix}_counter_total counter",
        ]
        for name, value in sorted(self.counters.items()):
            lines.append(
                f'{prefix}_counter_total{{name="{name}"}} {value}'
            )
        span_totals = self.span_seconds()
        if span_totals:
            lines.append(
                f"# HELP {prefix}_span_seconds "
                "Summed duration of each traced span path."
            )
            lines.append(f"# TYPE {prefix}_span_seconds gauge")
            for path, seconds in sorted(span_totals.items()):
                lines.append(
                    f'{prefix}_span_seconds{{path="{path}"}} {seconds:.9f}'
                )
        return "\n".join(lines) + "\n"


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name fragment (used by exporters that
    flatten counter names into metric names rather than labels)."""
    out = _PROM_SANITIZE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out
