"""Structured run reports: spans + counters + engine/model accounting.

:class:`RunReport` is the single versioned JSON document a profiled run
produces — the merge of the span forest (phase timings, parent process
plus pid-tagged worker lanes), the counter registry (Table I-style work
totals), the histogram registry (distributions: per-group sweep
seconds, padding efficiency, …), the batched engine's
:class:`~repro.engine.EngineReport` (packing accounting) and the
modeled :class:`~repro.app.cudasw.SearchReport` (device timing model).
The CLI's ``--metrics-out`` writes it, ``--profile`` renders it,
``--trace-out`` exports the span forest as Chrome trace-event JSON,
and benchmarks emit their results through the same writer so
``BENCH_*`` artifacts carry phase breakdowns.

``to_prometheus`` emits the counters, span totals and histograms in
the Prometheus text exposition format (histograms as
``_bucket``/``_sum``/``_count`` series with cumulative ``le`` labels),
for a future service front end to scrape.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.obs.context import AnyInstrumentation
from repro.obs.spans import Span

if TYPE_CHECKING:
    from repro.app.cudasw import SearchReport
    from repro.engine import EngineReport

__all__ = [
    "RunReport",
    "SCHEMA_VERSION",
    "desanitize_metric_name",
    "format_le",
    "sanitize_metric_name",
]

#: Version of the JSON document layout.  Bump on breaking changes.
#: v2 added ``histograms``, ``worker_lanes`` and ``pid``.
SCHEMA_VERSION = 2

_PROM_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def _engine_report_dict(engine_report: EngineReport) -> dict[str, Any]:
    return {
        "group_size": engine_report.group_size,
        "workers": engine_report.workers,
        "lane_engine": engine_report.lane_engine,
        "n_groups": engine_report.n_groups,
        "group_sizes": list(engine_report.group_sizes),
        "group_max_lengths": list(engine_report.group_max_lengths),
        "group_efficiencies": list(engine_report.group_efficiencies),
        "residues": engine_report.residues,
        "padded_cells": engine_report.padded_cells,
        "padding_efficiency": engine_report.padding_efficiency,
    }


def _search_report_dict(search_report: SearchReport) -> dict[str, Any]:
    return {
        "device": search_report.device,
        "query_length": search_report.query_length,
        "threshold": search_report.threshold,
        "n_inter_sequences": search_report.n_inter_sequences,
        "n_intra_sequences": search_report.n_intra_sequences,
        "inter_time": search_report.inter_time,
        "intra_time": search_report.intra_time,
        "transfer_time": search_report.transfer_time,
        "total_time": search_report.total_time,
        "gcups": search_report.gcups,
        "load_balance_efficiency": search_report.load_balance_efficiency,
        "total_cells": search_report.total_cells,
        "inter_global_transactions":
            search_report.inter_counts.global_transactions,
        "intra_global_transactions":
            search_report.intra_counts.global_transactions,
    }


@dataclass(frozen=True)
class RunReport:
    """One run's merged observability document."""

    collect: str
    spans: tuple[Span, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    worker_lanes: dict[int, tuple[Span, ...]] = field(default_factory=dict)
    engine: dict[str, Any] | None = None
    model: dict[str, Any] | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    pid: int = 0

    # -- construction ---------------------------------------------------
    @classmethod
    def from_instrumentation(
        cls,
        instr: AnyInstrumentation,
        *,
        engine_report: EngineReport | None = None,
        search_report: SearchReport | None = None,
        meta: dict[str, Any] | None = None,
    ) -> "RunReport":
        """Snapshot a finished collection session into a report.

        ``engine_report``/``search_report`` are the existing
        :class:`EngineReport` / :class:`SearchReport` objects to merge
        (either may be ``None``).
        """
        spans = () if instr.tracer is None else instr.tracer.roots
        counters = {} if instr.counters is None else instr.counters.as_dict()
        histograms = (
            {} if instr.histograms is None else instr.histograms.as_dict()
        )
        lanes = {
            pid: tuple(lane_spans)
            for pid, lane_spans in getattr(
                instr, "worker_lanes", {}
            ).items()
        }
        return cls(
            collect=instr.mode,
            spans=spans,
            counters=counters,
            histograms=histograms,
            worker_lanes=lanes,
            engine=(
                None if engine_report is None
                else _engine_report_dict(engine_report)
            ),
            model=(
                None if search_report is None
                else _search_report_dict(search_report)
            ),
            meta=dict(meta or {}),
            pid=getattr(instr, "pid", 0),
        )

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro.run_report",
            "schema_version": SCHEMA_VERSION,
            "collect": self.collect,
            "pid": self.pid,
            "spans": [s.as_dict() for s in self.spans],
            "counters": dict(self.counters),
            "histograms": {
                name: dict(data)
                for name, data in sorted(self.histograms.items())
            },
            "worker_lanes": [
                {
                    "pid": pid,
                    "spans": [s.as_dict() for s in lane],
                }
                for pid, lane in sorted(self.worker_lanes.items())
            ],
            "engine": self.engine,
            "model": self.model,
            "meta": dict(self.meta),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def write(self, path: str | Path) -> Path:
        """Write the JSON document to ``path`` atomically and return it.

        Uses temp-file-plus-rename so a crash mid-write never leaves a
        truncated (unparseable) report on disk.
        """
        from repro.engine.checkpoint import atomic_write_text

        return atomic_write_text(path, self.to_json())

    # -- trace export ---------------------------------------------------
    def to_trace_dict(self) -> dict[str, Any]:
        """The span forest (worker lanes included) as a Chrome
        trace-event document (see :mod:`repro.obs.trace_export`)."""
        from repro.obs.trace_export import trace_document

        return trace_document(
            self.spans,
            self.worker_lanes,
            main_pid=self.pid,
            meta={"collect": self.collect, **self.meta},
        )

    def to_trace_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_trace_dict(), indent=indent) + "\n"

    def write_trace(self, path: str | Path) -> Path:
        """Atomically write the Chrome trace JSON to ``path``."""
        from repro.engine.checkpoint import atomic_write_text

        return atomic_write_text(path, self.to_trace_json())

    # -- derived views --------------------------------------------------
    def span_seconds(self) -> dict[str, float]:
        """Summed duration per slash-joined span path (parent process
        only; worker lanes are summarized separately)."""
        totals: dict[str, float] = {}
        for root in self.spans:
            for path, span in root.walk():
                totals[path] = totals.get(path, 0.0) + span.seconds
        return totals

    def worker_lane_seconds(self) -> dict[int, dict[str, float]]:
        """Per worker pid: summed duration per slash-joined span path."""
        out: dict[int, dict[str, float]] = {}
        for pid, lane in sorted(self.worker_lanes.items()):
            totals: dict[str, float] = {}
            for root in lane:
                for path, span in root.walk():
                    totals[path] = totals.get(path, 0.0) + span.seconds
            out[pid] = totals
        return out

    def render_profile(self) -> str:
        """The ``--profile`` view: span tree, histogram percentiles,
        worker lanes, counter table."""
        parts = ["== span tree =="]
        if self.spans:
            from repro.obs.spans import render_forest

            parts.append(render_forest(self.spans))
        else:
            parts.append(
                "(no spans recorded"
                + (
                    " — collect mode was 'counters')"
                    if self.collect == "counters"
                    else ")"
                )
            )
        if self.worker_lanes:
            parts.append("")
            parts.append("== worker lanes ==")
            from repro.obs.spans import render_forest

            for pid, lane in sorted(self.worker_lanes.items()):
                busy = sum(s.seconds for s in lane)
                parts.append(
                    f"worker pid {pid}: {len(lane)} spans, "
                    f"{busy * 1e3:.3f} ms busy"
                )
                parts.append(render_forest(lane))
        if self.histograms:
            parts.append("")
            parts.append("== histograms ==")
            parts.append(_render_histograms(self.histograms))
        parts.append("")
        parts.append("== counters ==")
        if self.counters:
            width = max(len(k) for k in self.counters)
            parts.append(
                "\n".join(
                    f"{k:<{width}}  {v:>16,}"
                    for k, v in sorted(self.counters.items())
                )
            )
        else:
            parts.append("(no counters recorded)")
        if self.engine is not None:
            parts.append("")
            parts.append("== engine packing ==")
            parts.append(
                f"groups: {self.engine['n_groups']}  "
                f"residues: {self.engine['residues']:,}  "
                f"padded cells: {self.engine['padded_cells']:,}  "
                f"padding efficiency: "
                f"{self.engine['padding_efficiency']:.3f}"
            )
        return "\n".join(parts)

    def to_prometheus(self, *, prefix: str = "repro") -> str:
        """Prometheus text exposition of counters, span totals and
        histograms (``_bucket``/``_sum``/``_count`` with cumulative
        ``le`` labels)."""
        lines = [
            f"# HELP {prefix}_counter_total "
            "Instrumentation counter totals for one run.",
            f"# TYPE {prefix}_counter_total counter",
        ]
        for name, value in sorted(self.counters.items()):
            lines.append(
                f'{prefix}_counter_total{{name="{name}"}} {value}'
            )
        span_totals = self.span_seconds()
        if span_totals:
            lines.append(
                f"# HELP {prefix}_span_seconds "
                "Summed duration of each traced span path."
            )
            lines.append(f"# TYPE {prefix}_span_seconds gauge")
            for path, seconds in sorted(span_totals.items()):
                lines.append(
                    f'{prefix}_span_seconds{{path="{path}"}} {seconds:.9f}'
                )
        if self.histograms:
            lines.append(
                f"# HELP {prefix}_histogram "
                "Instrumentation histogram distributions for one run."
            )
            lines.append(f"# TYPE {prefix}_histogram histogram")
            for name, data in sorted(self.histograms.items()):
                bounds = [float(b) for b in data["bounds"]]
                counts = [int(c) for c in data["bucket_counts"]]
                cumulative = 0
                for bound, count in zip(
                    bounds + [math.inf], counts
                ):
                    cumulative += count
                    lines.append(
                        f'{prefix}_histogram_bucket{{name="{name}",'
                        f'le="{format_le(bound)}"}} {cumulative}'
                    )
                lines.append(
                    f'{prefix}_histogram_sum{{name="{name}"}} '
                    f"{float(data['sum']):.9g}"
                )
                lines.append(
                    f'{prefix}_histogram_count{{name="{name}"}} '
                    f"{int(data['count'])}"
                )
        return "\n".join(lines) + "\n"


def _render_histograms(histograms: dict[str, dict[str, Any]]) -> str:
    """Percentile table for ``--profile``: one row per histogram."""
    from repro.obs.histogram import Histogram

    header = (
        f"{'histogram':<40} {'count':>8} {'sum':>12} "
        f"{'p50':>10} {'p95':>10} {'max':>10}"
    )
    rows = [header]
    for name, data in sorted(histograms.items()):
        hist = Histogram.from_dict(name, data)
        if hist.count == 0:
            rows.append(
                f"{name:<40} {0:>8} {'-':>12} {'-':>10} {'-':>10} {'-':>10}"
            )
            continue
        rows.append(
            f"{name:<40} {hist.count:>8} {hist.sum:>12.4g} "
            f"{hist.p50:>10.4g} {hist.p95:>10.4g} {hist.max:>10.4g}"
        )
    return "\n".join(rows)


def format_le(bound: float) -> str:
    """Canonical ``le`` label value for a bucket boundary.

    Round-trip safe: ``float(format_le(b)) == b`` for every boundary,
    including ``.``-bearing fractions (shortest-repr formatting) and
    the infinite overflow bucket (``"+Inf"``, which ``float`` parses
    back to ``inf``).
    """
    if math.isinf(bound):
        return "+Inf" if bound > 0 else "-Inf"
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def sanitize_metric_name(name: str) -> str:
    """A Prometheus-legal metric name fragment (used by exporters that
    flatten counter/histogram names into metric names rather than
    labels).

    Invertible for dot-namespaced names: pre-existing underscores are
    doubled before ``.`` maps to ``_``, so
    :func:`desanitize_metric_name` recovers the original — including
    flattened bucket boundaries like ``0.005`` or ``inf`` (all-legal
    characters pass through untouched).  Other illegal characters
    collapse to ``_`` (lossy, for display only).
    """
    out = name.replace("_", "__")
    out = _PROM_SANITIZE.sub("_", out)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def desanitize_metric_name(name: str) -> str:
    """Invert :func:`sanitize_metric_name` for names whose only
    illegal characters were dots (the dot-namespaced registry names
    and numeric bucket boundaries): ``__`` becomes ``_``, remaining
    single ``_`` becomes ``.``."""
    return (
        name.replace("__", "\x00").replace("_", ".").replace("\x00", "_")
    )
