"""Named counter registry — the reproduction's Table I methodology.

The paper's central evidence is *counted work*: Table I totals
global-memory transactions per kernel, and Figure 2 relates useful to
padded work.  :class:`CounterRegistry` is the in-process accumulator for
exactly those quantities: dot-namespaced integer counters
(``engine.pack.padded_cells``, ``kernel.intra_original(T=256).cells``)
that instrumented code increments as work happens and reports aggregate.

Counters are deliberately dumb — monotonic non-negative integer adds
under a lock — so they can sit on hot-ish paths (per packed group, per
kernel launch; never per DP cell) without distorting what they measure.
"""

from __future__ import annotations

import threading
from typing import Iterator

__all__ = ["CounterRegistry"]


class CounterRegistry:
    """Thread-safe map of dot-namespaced counter names to integer totals."""

    __slots__ = ("_counters", "_lock")

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()

    def add(self, name: str, value: int = 1) -> None:
        """Increment ``name`` by ``value`` (creating it at 0)."""
        if not name:
            raise ValueError("counter name cannot be empty")
        value = int(value)
        if value < 0:
            raise ValueError(
                f"counters are monotonic; cannot add {value} to {name!r}"
            )
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def record_max(self, name: str, value: int) -> None:
        """Raise ``name`` to ``value`` if larger (still monotonic —
        used for peak gauges such as ``engine.mem.*.peak_bytes``)."""
        if not name:
            raise ValueError("counter name cannot be empty")
        value = int(value)
        if value < 0:
            raise ValueError(
                f"counters are non-negative; cannot record {value} "
                f"for {name!r}"
            )
        with self._lock:
            if value > self._counters.get(name, 0):
                self._counters[name] = value

    def get(self, name: str, default: int = 0) -> int:
        with self._lock:
            return self._counters.get(name, default)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._counters

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters)

    def __iter__(self) -> Iterator[str]:
        return iter(self.as_dict())

    def merge(self, other: "CounterRegistry") -> None:
        """Fold another registry's totals into this one."""
        for name, value in other.as_dict().items():
            self.add(name, value)

    def namespace(self, prefix: str) -> dict[str, int]:
        """All counters under ``prefix.`` (or equal to ``prefix``)."""
        dot = prefix + "."
        return {
            k: v
            for k, v in self.as_dict().items()
            if k == prefix or k.startswith(dot)
        }

    def as_dict(self) -> dict[str, int]:
        """Snapshot of every counter, sorted by name."""
        with self._lock:
            return dict(sorted(self._counters.items()))

    def render(self) -> str:
        """Human-readable two-column table, sorted by name."""
        items = self.as_dict()
        if not items:
            return "(no counters recorded)"
        width = max(len(k) for k in items)
        return "\n".join(f"{k:<{width}}  {v:>16,}" for k, v in items.items())
