"""CI perf-regression gate over the benchmark history.

The throughput benchmark (``benchmarks/bench_engine_throughput.py``)
appends one JSONL entry per engine per run to ``BENCH_history.jsonl``:
the measured MCUPs, a *host speed factor* (how fast this machine runs a
fixed reference NumPy workload, so histories from different machines
stay comparable) and the normalized MCUPs the gate actually compares.

``repro bench gate`` (or ``tools/perf_gate.py``) groups the history by
``(engine, sequences, query_length)``, takes each key's newest entry as
the candidate and the *median* of the prior entries as the rolling
baseline, and fails when the candidate's normalized MCUPs falls more
than ``tolerance`` below that baseline.  The median plus a fractional
tolerance is the noise armor: a single slow historical run cannot drag
the baseline, and run-to-run jitter below the tolerance never fails the
gate, while a genuine sustained regression (the CI default tolerance
still catches a ~30% drop several times over) does.

Keys without enough prior history are reported as ``skipped`` rather
than failed, so a freshly added engine or database size needs one
committed baseline run before it is gated.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

__all__ = [
    "DEFAULT_MIN_BASELINE",
    "DEFAULT_TOLERANCE",
    "GateOutcome",
    "KeyVerdict",
    "append_history",
    "gate",
    "history_entry",
    "host_speed_factor",
    "next_run_index",
    "read_history",
]

#: Allowed fractional drop below the baseline median before a key fails.
DEFAULT_TOLERANCE = 0.2

#: Prior entries a key needs before it is gated (else it is skipped).
DEFAULT_MIN_BASELINE = 1

#: Reference seconds for the calibration workload, fixed once from the
#: machine that seeded the committed history.  ``host_speed_factor``
#: divides the local measurement by this, so =1.0 on the reference
#: machine, >1.0 on slower ones; normalized MCUPs = MCUPs * factor.
_REFERENCE_SECONDS = 0.0112

#: Calibration workload geometry (deterministic: fixed seed, fixed
#: shapes, pure NumPy — the same operations the sweeps spend their
#: time in).
_CALIBRATION_SIZE = 384
_CALIBRATION_REPEATS = 24


def host_speed_factor(*, best_of: int = 3) -> float:
    """This host's speed on the fixed reference workload, as a factor
    relative to the machine that seeded the history (1.0 = reference,
    2.0 = twice as slow).  Best-of-``best_of`` timing keeps a scheduler
    hiccup from inflating the factor."""
    rng = np.random.default_rng(20110516)  # IPDPS 2011 publication date
    a = rng.integers(0, 127, size=(_CALIBRATION_SIZE, _CALIBRATION_SIZE))
    a = a.astype(np.int32)
    b = np.zeros_like(a)
    best = float("inf")
    for _ in range(max(1, best_of)):
        start = time.perf_counter()
        acc = b.copy()
        for _rep in range(_CALIBRATION_REPEATS):
            np.maximum(acc[:-1, :-1] + a[1:, 1:], acc[1:, 1:], out=acc[1:, 1:])
            np.maximum.accumulate(acc, axis=1, out=acc)
            np.subtract(acc, 1, out=acc)
            np.maximum(acc, 0, out=acc)
        best = min(best, time.perf_counter() - start)
    return best / _REFERENCE_SECONDS


def history_entry(
    *,
    engine: str,
    sequences: int,
    query_length: int,
    mcups: float,
    run_index: int,
    host_factor: float,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """One normalized JSONL history record."""
    entry: dict[str, Any] = {
        "schema": "repro.bench_history",
        "run_index": int(run_index),
        "engine": engine,
        "sequences": int(sequences),
        "query_length": int(query_length),
        "mcups": float(mcups),
        "host_factor": float(host_factor),
        "normalized_mcups": float(mcups) * float(host_factor),
    }
    if meta:
        entry["meta"] = dict(meta)
    return entry


def read_history(path: str | Path) -> list[dict[str, Any]]:
    """Parse the JSONL history file (missing file -> empty list).

    Unparseable or foreign-schema lines are skipped, not fatal: the
    gate should degrade to "less baseline", never crash CI on a
    half-written line.
    """
    p = Path(path)
    if not p.exists():
        return []
    entries: list[dict[str, Any]] = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        # A half-written trailing line degrades to "less baseline";
        # crashing CI on it would make the gate flakier than the
        # regressions it guards against.
        except json.JSONDecodeError:  # repro-lint: disable=RPL105
            continue
        if (
            isinstance(entry, dict)
            and entry.get("schema") == "repro.bench_history"
        ):
            entries.append(entry)
    return entries


def next_run_index(entries: list[dict[str, Any]]) -> int:
    """The next monotonic run index for a history (1 + the max seen)."""
    return 1 + max(
        (int(e.get("run_index", 0)) for e in entries), default=0
    )


def append_history(
    path: str | Path, new_entries: list[dict[str, Any]]
) -> Path:
    """Append entries to the JSONL history file (created if missing)."""
    p = Path(path)
    with p.open("a") as fh:
        for entry in new_entries:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return p


@dataclass(frozen=True)
class KeyVerdict:
    """One ``(engine, sequences, query_length)`` key's gate result."""

    engine: str
    sequences: int
    query_length: int
    status: str  # "ok" | "regressed" | "skipped"
    current: float
    baseline: float | None
    baseline_runs: int

    @property
    def ratio(self) -> float | None:
        if self.baseline is None or self.baseline <= 0:
            return None
        return self.current / self.baseline

    def render(self) -> str:
        key = f"{self.engine} (n={self.sequences}, q={self.query_length})"
        if self.status == "skipped":
            return (
                f"SKIP  {key}: {self.baseline_runs} baseline run(s), "
                "not enough history to gate"
            )
        ratio = self.ratio
        detail = (
            f"{self.current:.1f} vs baseline {self.baseline:.1f} "
            f"normalized MCUPs"
            + (f" ({ratio:.2f}x)" if ratio is not None else "")
        )
        mark = "ok  " if self.status == "ok" else "FAIL"
        return f"{mark}  {key}: {detail}"


@dataclass(frozen=True)
class GateOutcome:
    """The whole gate run: per-key verdicts plus the overall verdict."""

    verdicts: tuple[KeyVerdict, ...]
    tolerance: float
    history_path: str
    errors: tuple[str, ...] = field(default=())

    @property
    def passed(self) -> bool:
        return not self.errors and all(
            v.status != "regressed" for v in self.verdicts
        )

    def render(self) -> str:
        lines = [
            f"perf gate over {self.history_path} "
            f"(tolerance {self.tolerance:.0%} below baseline median):"
        ]
        lines.extend(f"error: {e}" for e in self.errors)
        lines.extend(v.render() for v in self.verdicts)
        if not self.verdicts and not self.errors:
            lines.append("(no gateable entries in history)")
        lines.append("PASS" if self.passed else "FAIL")
        return "\n".join(lines)


def gate(
    history_path: str | Path,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_baseline: int = DEFAULT_MIN_BASELINE,
) -> GateOutcome:
    """Gate the newest run in the history against the rolling baseline.

    For each ``(engine, sequences, query_length)`` key, the entry with
    the highest ``run_index`` is the candidate and the median
    ``normalized_mcups`` of the remaining entries is the baseline; the
    key regresses when ``candidate < (1 - tolerance) * baseline``.
    Keys with fewer than ``min_baseline`` prior entries are skipped.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(
            f"tolerance must be in [0, 1), got {tolerance}"
        )
    entries = read_history(history_path)
    if not entries:
        return GateOutcome(
            verdicts=(),
            tolerance=tolerance,
            history_path=str(history_path),
            errors=(f"no benchmark history at {history_path}",),
        )
    by_key: dict[tuple[str, int, int], list[dict[str, Any]]] = {}
    for entry in entries:
        key = (
            str(entry["engine"]),
            int(entry["sequences"]),
            int(entry["query_length"]),
        )
        by_key.setdefault(key, []).append(entry)
    latest_run = max(int(e["run_index"]) for e in entries)
    verdicts: list[KeyVerdict] = []
    for (engine, sequences, query_length), group in sorted(by_key.items()):
        group.sort(key=lambda e: int(e["run_index"]))
        candidate = group[-1]
        if int(candidate["run_index"]) != latest_run:
            # Key absent from the newest run (e.g. scalar skipped in the
            # CI smoke): nothing new to gate.
            continue
        prior = group[:-1]
        current = float(candidate["normalized_mcups"])
        if len(prior) < min_baseline:
            verdicts.append(
                KeyVerdict(
                    engine=engine,
                    sequences=sequences,
                    query_length=query_length,
                    status="skipped",
                    current=current,
                    baseline=None,
                    baseline_runs=len(prior),
                )
            )
            continue
        baseline = statistics.median(
            float(e["normalized_mcups"]) for e in prior
        )
        status = (
            "regressed"
            if current < (1.0 - tolerance) * baseline
            else "ok"
        )
        verdicts.append(
            KeyVerdict(
                engine=engine,
                sequences=sequences,
                query_length=query_length,
                status=status,
                current=current,
                baseline=baseline,
                baseline_runs=len(prior),
            )
        )
    return GateOutcome(
        verdicts=tuple(verdicts),
        tolerance=tolerance,
        history_path=str(history_path),
    )
