"""Per-span-phase memory peaks via ``tracemalloc`` (opt-in).

The engine's :class:`~repro.engine.budget.MemoryBudget` caps group
working sets on an *estimate* (`estimate_group_bytes`); this tracker
supplies the measurement to check that estimate against: when a
session is opened with ``obs.collect("full", memory=True)``, every
span entry/exit brackets a ``tracemalloc`` peak window and the phase's
peak lands in the counter registry as
``engine.mem.<phase>.peak_bytes`` (a running maximum over same-named
phases, via :meth:`~repro.obs.counters.CounterRegistry.record_max`).

Nesting is handled with a pending-max stack: entering a child phase
captures the parent's peak so far and resets the process peak; on the
child's exit its peak propagates up, so a parent phase always reports
``>=`` the deepest child inside it.  ``tracemalloc`` peaks are
process-global, so concurrently traced threads share one window — the
numbers are per-phase attributions, not isolated measurements — and
tracing costs real time, which is why memory tracking is opt-in and
never part of the ``collect="off"`` overhead budget.
"""

from __future__ import annotations

import tracemalloc

from repro.obs.counters import CounterRegistry

__all__ = ["MemoryPhaseTracker"]


class MemoryPhaseTracker:
    """Span phase hook recording tracemalloc peaks as counters."""

    __slots__ = ("_counters", "_stack", "_started_here")

    def __init__(self, counters: CounterRegistry) -> None:
        self._counters = counters
        #: Pending peak maxima for open phases, innermost last.
        self._stack: list[int] = []
        self._started_here = False

    def start(self) -> None:
        """Begin tracing allocations (no-op if already tracing)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_here = True

    def stop(self) -> None:
        """Stop tracing iff this tracker started it."""
        if self._started_here and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_here = False

    # -- span hooks (called by the tracer) ------------------------------
    def enter_phase(self) -> None:
        if not tracemalloc.is_tracing():
            self._stack.append(0)
            return
        # Bank the enclosing phase's peak so far before resetting the
        # process-global peak for the child's window.
        if self._stack:
            _, peak = tracemalloc.get_traced_memory()
            if peak > self._stack[-1]:
                self._stack[-1] = peak
        tracemalloc.reset_peak()
        self._stack.append(0)

    def exit_phase(self, name: str) -> None:
        pending = self._stack.pop() if self._stack else 0
        if not tracemalloc.is_tracing():
            return
        _, peak = tracemalloc.get_traced_memory()
        peak = max(peak, pending)
        self._counters.record_max(f"engine.mem.{name}.peak_bytes", peak)
        if self._stack and peak > self._stack[-1]:
            self._stack[-1] = peak
        tracemalloc.reset_peak()
