"""Chrome trace-event export of a merged span forest.

Serializes a run's spans — parent process and pid-tagged worker lanes —
as the Trace Event Format JSON that ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev) load directly: an object with a
``traceEvents`` array of complete (``"ph": "X"``) events, timestamps
and durations in microseconds, one ``pid`` lane per process.

Each lane's timestamps are relative to that process's own epoch (the
parent session's creation, or the worker's pool initialization), so
events within a lane are monotonically consistent but lanes are not
clock-synchronized against each other — good enough to read phase
structure and per-worker load balance, which is what the export is
for.  Process-name metadata events label the lanes.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from repro.obs.spans import Span

__all__ = ["trace_document", "trace_json"]

#: Event category stamped on every span event.
_CATEGORY = "repro"


def _span_events(
    span: Span, pid: int, events: list[dict[str, Any]]
) -> None:
    events.append(
        {
            "name": span.name,
            "cat": _CATEGORY,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round(max(span.seconds, 0.0) * 1e6, 3),
            "pid": pid,
            "tid": 0,
        }
    )
    for child in span.children:
        _span_events(child, pid, events)


def _process_name_event(pid: int, label: str) -> dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": label},
    }


def trace_document(
    spans: Iterable[Span],
    worker_lanes: Mapping[int, Iterable[Span]] | None = None,
    *,
    main_pid: int = 0,
    meta: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Build the Trace Event Format document (a JSON-able dict).

    ``spans`` is the parent-process span forest, rendered on the
    ``main_pid`` lane; ``worker_lanes`` maps worker pids to their
    shipped span forests, each rendered on its own lane.  ``meta``
    lands in the document's ``otherData`` section (Perfetto shows it
    in the trace info panel).
    """
    events: list[dict[str, Any]] = [
        _process_name_event(main_pid, f"search (pid {main_pid})")
    ]
    for root in spans:
        _span_events(root, main_pid, events)
    for pid in sorted(worker_lanes or {}):
        events.append(_process_name_event(pid, f"worker (pid {pid})"))
        for root in (worker_lanes or {})[pid]:
            _span_events(root, pid, events)
    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if meta:
        doc["otherData"] = dict(meta)
    return doc


def trace_json(
    spans: Iterable[Span],
    worker_lanes: Mapping[int, Iterable[Span]] | None = None,
    *,
    main_pid: int = 0,
    meta: Mapping[str, Any] | None = None,
    indent: int | None = None,
) -> str:
    """:func:`trace_document` serialized to a JSON string."""
    return (
        json.dumps(
            trace_document(
                spans, worker_lanes, main_pid=main_pid, meta=meta
            ),
            indent=indent,
        )
        + "\n"
    )
