"""Observability: tracing spans, counters, structured run reports.

The reproduction's answer to the paper's measurement methodology —
Table I counts global-memory transactions per kernel and Figure 2
measures load-balance efficiency, and those numbers are what justified
the improved intra-task kernel.  This package provides the equivalent
layer for the functional engines and kernel models:

* :mod:`~repro.obs.spans` — nested ``perf_counter`` timed regions (the
  CUDA-event-timing analogue) around each search phase;
* :mod:`~repro.obs.counters` — a dot-namespaced counter registry (the
  Table I methodology) incremented by the engine, the executor (every
  fault-policy retry/timeout/crash/serial-recovery lands in
  ``engine.executor.*``, so a degraded search is fully accounted) and
  the kernel models;
* :mod:`~repro.obs.context` — the ambient activation
  (:func:`collect` / :func:`current`) with a no-op ``off`` mode whose
  overhead the test suite bounds at ≤2%;
* :mod:`~repro.obs.histogram` — fixed-bucket mergeable histograms (the
  distribution companion to the counters: per-group sweep seconds,
  padding efficiency, lazy-F correction rounds, retry delays);
* :mod:`~repro.obs.memphase` — opt-in per-span-phase tracemalloc peaks
  surfaced as ``engine.mem.*`` counters;
* :mod:`~repro.obs.trace_export` — Chrome trace-event JSON export of
  the merged span forest (parent plus pid-tagged worker lanes);
* :mod:`~repro.obs.report` — :class:`RunReport`, the versioned JSON
  merge of spans + counters + histograms + worker lanes +
  :class:`~repro.engine.EngineReport` +
  :class:`~repro.app.cudasw.SearchReport`, with a ``--profile`` text
  rendering, a Prometheus exposition helper and the trace export
  front end.

Typical use::

    from repro import obs

    with obs.collect("full") as instr:
        result, report = app.search(query, db)
    run_report = obs.RunReport.from_instrumentation(
        instr,
        engine_report=app.last_engine_report,
        search_report=report,
    )
    run_report.write("run.json")

or, turnkey, ``app.search(query, db, collect="full")`` followed by
``app.last_run_report``.  See ``docs/observability.md``.
"""

from repro.obs.context import (
    COLLECT_MODES,
    NO_OP,
    AnyInstrumentation,
    Instrumentation,
    WorkerTelemetry,
    activate,
    collect,
    current,
)
from repro.obs.counters import CounterRegistry
from repro.obs.histogram import (
    BUCKET_SCHEMES,
    DEFAULT_BUCKETS,
    Histogram,
    HistogramRegistry,
    bucket_scheme,
)
from repro.obs.memphase import MemoryPhaseTracker
from repro.obs.report import (
    SCHEMA_VERSION,
    RunReport,
    desanitize_metric_name,
    format_le,
    sanitize_metric_name,
)
from repro.obs.spans import Span, SpanPhaseHook, Tracer, render_forest
from repro.obs.trace_export import trace_document, trace_json

__all__ = [
    "COLLECT_MODES",
    "NO_OP",
    "AnyInstrumentation",
    "Instrumentation",
    "WorkerTelemetry",
    "activate",
    "collect",
    "current",
    "CounterRegistry",
    "BUCKET_SCHEMES",
    "DEFAULT_BUCKETS",
    "Histogram",
    "HistogramRegistry",
    "bucket_scheme",
    "MemoryPhaseTracker",
    "SCHEMA_VERSION",
    "RunReport",
    "desanitize_metric_name",
    "format_le",
    "sanitize_metric_name",
    "Span",
    "SpanPhaseHook",
    "Tracer",
    "render_forest",
    "trace_document",
    "trace_json",
]
