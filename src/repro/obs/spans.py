"""Nested timed regions — the functional analogue of CUDA event timing.

A :class:`Span` is one ``perf_counter``-timed region of a search
(``pack``, ``fan_out``, ``rank`` …); spans nest, so a finished trace is
a forest of phase trees.  :class:`Tracer` maintains the open-span stack
*per thread* (``threading.local``) and appends finished root spans to a
lock-guarded list, so concurrently traced threads interleave safely.
Worker *processes* inherit a copy of the tracer under ``fork`` and
cannot corrupt the parent; instead each worker chunk runs its own
session and ships finished spans back as telemetry, which the parent
merges into pid-tagged lanes (see ``repro.engine.executor``).

Span starts are recorded relative to the tracer's epoch (its creation
time), so a serialized trace shows phase ordering without wall-clock
anchoring.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Protocol

__all__ = ["Span", "SpanPhaseHook", "Tracer", "render_forest"]


class SpanPhaseHook(Protocol):
    """Optional per-span callbacks a :class:`Tracer` invokes on span
    entry/exit (how :class:`~repro.obs.memphase.MemoryPhaseTracker`
    brackets tracemalloc peak windows around phases)."""

    def enter_phase(self) -> None: ...

    def exit_phase(self, name: str) -> None: ...


@dataclass
class Span:
    """One timed region.  ``start`` is seconds since the tracer epoch;
    ``seconds`` is the region's duration (0.0 until closed)."""

    name: str
    start: float
    seconds: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("span name cannot be empty")

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
            "children": [c.as_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`as_dict` output (how worker
        telemetry and serialized reports round-trip span forests)."""
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            seconds=float(data["seconds"]),
            children=[cls.from_dict(c) for c in data.get("children", ())],
        )

    def walk(self, _path: str = "") -> list[tuple[str, "Span"]]:
        """Flatten to ``(slash/joined/path, span)`` pairs, depth-first."""
        path = f"{_path}/{self.name}" if _path else self.name
        out = [(path, self)]
        for child in self.children:
            out.extend(child.walk(path))
        return out


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span", "_is_root")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._span = Span(
            name=name, start=time.perf_counter() - tracer._epoch
        )
        self._is_root = False

    def __enter__(self) -> Span:
        stack = self._tracer._stack()
        self._is_root = not stack
        if stack:
            stack[-1].children.append(self._span)
        stack.append(self._span)
        hook = self._tracer._phase_hook
        if hook is not None:
            hook.enter_phase()
        return self._span

    def __exit__(self, *exc: object) -> None:
        span = self._span
        span.seconds = (
            time.perf_counter() - self._tracer._epoch
        ) - span.start
        hook = self._tracer._phase_hook
        if hook is not None:
            hook.exit_phase(span.name)
        stack = self._tracer._stack()
        if stack and stack[-1] is span:
            stack.pop()
        if self._is_root:
            self._tracer._add_root(span)


class Tracer:
    """Collects a forest of :class:`Span` trees.

    ``epoch`` anchors span starts (default: creation time); a worker
    process passes its own long-lived base so spans from successive
    per-chunk sessions share one monotonic lane timeline.
    ``phase_hook`` receives enter/exit callbacks around every span
    (see :class:`SpanPhaseHook`).
    """

    def __init__(
        self,
        *,
        epoch: float | None = None,
        phase_hook: SpanPhaseHook | None = None,
    ) -> None:
        self._epoch = time.perf_counter() if epoch is None else epoch
        self._phase_hook = phase_hook
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # -- recording ------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """``with tracer.span("pack"): ...`` — open a timed child region
        of the innermost open span on this thread (or a new root)."""
        return _SpanContext(self, name)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _add_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)

    # -- reading --------------------------------------------------------
    @property
    def roots(self) -> tuple[Span, ...]:
        """Finished top-level spans, in completion order."""
        with self._lock:
            return tuple(self._roots)

    def total_seconds(self, name: str) -> float:
        """Summed duration of every span named ``name``, anywhere."""
        return sum(
            s.seconds
            for root in self.roots
            for _, s in root.walk()
            if s.name == name
        )

    def render(self) -> str:
        return render_forest(self.roots)


def render_forest(spans: Iterable[Span]) -> str:
    """Indented tree of a span forest; same-name siblings aggregate into
    one line (``sweep x8``) so per-group spans stay readable."""
    lines: list[str] = []
    _render_level(list(spans), 0, lines)
    return "\n".join(lines) if lines else "(no spans recorded)"


def _render_level(spans: list[Span], depth: int, lines: list[str]) -> None:
    # Aggregate same-name siblings, preserving first-appearance order.
    order: list[str] = []
    grouped: dict[str, list[Span]] = {}
    for s in spans:
        if s.name not in grouped:
            grouped[s.name] = []
            order.append(s.name)
        grouped[s.name].append(s)
    for name in order:
        group = grouped[name]
        seconds = sum(s.seconds for s in group)
        label = name if len(group) == 1 else f"{name} x{len(group)}"
        pad = max(44 - 2 * depth, 1)
        lines.append(
            f"{'  ' * depth}{label:<{pad}}{seconds * 1e3:>12.3f} ms"
        )
        children = [c for s in group for c in s.children]
        if children:
            _render_level(children, depth + 1, lines)
