"""Fixed-bucket histograms — the distributional half of the registry.

Counters collapse a run to totals; the paper's load-balance argument
(Figure 2) and the partition/balance designs of SWAPHI and SaLoBa rest
on *distributions* — per-partition runtime spread, workload-balance
histograms.  :class:`Histogram` records exactly that shape of data on
the hot paths: per-group sweep seconds, cells per group, padding
efficiency, lazy-F correction rounds, retry backoff delays.

Buckets are fixed per metric name (:data:`BUCKET_SCHEMES`), which makes
histograms **mergeable**: two histograms over the same boundaries merge
by adding bucket counts — the property that lets worker processes ship
their histograms back with each chunk result and the parent fold them
into one distribution (see ``repro.engine.executor``), and that a
Prometheus scrape relies on (`le` labels must be stable across
processes and restarts).

Observations are floats; each lands in the first bucket whose upper
boundary is ``>= value`` (the last bucket is an implicit ``+Inf``
overflow).  ``p50``/``p95`` interpolate linearly inside the landing
bucket — exact enough for profiling, cheap enough for hot paths.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Iterator, Mapping, Sequence

__all__ = [
    "BUCKET_SCHEMES",
    "DEFAULT_BUCKETS",
    "Histogram",
    "HistogramRegistry",
    "bucket_scheme",
]

#: Fallback boundaries for names without a dedicated scheme: a decade
#: ladder wide enough to shape most positive measurements.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0,
)

#: Upper bucket boundaries per registered histogram name.  Every scheme
#: is strictly increasing and finite; the overflow (``+Inf``) bucket is
#: implicit.  Schemes are part of the observability contract (see the
#: registry appendix in ``docs/observability.md``): changing one changes
#: every exported ``le`` label.
BUCKET_SCHEMES: dict[str, tuple[float, ...]] = {
    # Wall time of one group sweep (serial or worker-side).
    "engine.sweep.group_seconds": (
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
        0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
    ),
    # Padded cells per packed group (group_size x max_length).
    "engine.pack.group_cells": (
        1e3, 1e4, 5e4, 1e5, 2.5e5, 5e5, 1e6, 2.5e6, 5e6, 1e7, 1e8,
    ),
    # Per-group padding efficiency — Figure 2's load-balance quantity.
    "engine.pack.group_efficiency": (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0,
    ),
    # Corrective lazy-F rounds per striped group (0 for most groups).
    "engine.striped.lazy_f_rounds": (
        0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1_000.0,
    ),
    # Backoff delay before a pool task retry (FaultPolicy.retry_delay).
    "engine.executor.retry_delay_seconds": (
        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    ),
    # Wall time to build an .rdb store (dominated by FASTA streaming +
    # fingerprint hashing; scales with database residues).
    "engine.dbstore.build_seconds": (
        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
        2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
    ),
    # Startup latency: wall time of one open_database() call.  The fast
    # tier is O(index) — sub-millisecond for small stores, low
    # milliseconds for multi-million-sequence indexes — while the deep
    # tier CRC-walks the residue blob, so the ladder spans sub-ms
    # mmap-only opens through multi-second deep verifies.
    "engine.dbstore.open_seconds": (
        0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
        0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    ),
}


def bucket_scheme(name: str) -> tuple[float, ...]:
    """The bucket boundaries for ``name`` (the registered scheme, or
    :data:`DEFAULT_BUCKETS` for unregistered names)."""
    return BUCKET_SCHEMES.get(name, DEFAULT_BUCKETS)


class Histogram:
    """One named fixed-bucket histogram.

    ``bounds`` are the strictly increasing, finite upper boundaries;
    bucket ``i`` counts observations ``<= bounds[i]`` (and above
    ``bounds[i-1]``), with one extra implicit overflow bucket for
    values past the last boundary.  Thread-safe; merge requires
    identical boundaries.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not name:
            raise ValueError("histogram name cannot be empty")
        bounds_t = tuple(float(b) for b in bounds)
        if not bounds_t:
            raise ValueError(f"histogram {name!r} needs >= 1 boundary")
        for lo, hi in zip(bounds_t, bounds_t[1:]):
            if not lo < hi:
                raise ValueError(
                    f"histogram {name!r} boundaries must be strictly "
                    f"increasing, got {bounds_t}"
                )
        if not all(math.isfinite(b) for b in bounds_t):
            raise ValueError(
                f"histogram {name!r} boundaries must be finite "
                f"(the +Inf bucket is implicit)"
            )
        self.name = name
        self.bounds = bounds_t
        self.bucket_counts = [0] * (len(bounds_t) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[idx] += 1
            self.count += 1
            self.sum += value
            if value > self.max:
                self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram over identical boundaries into this
        one (how worker-process distributions reach the parent)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {other.name!r} "
                f"(bounds {other.bounds}) into {self.name!r} "
                f"(bounds {self.bounds}): boundaries differ"
            )
        with other._lock:
            counts = list(other.bucket_counts)
            o_count, o_sum, o_max = other.count, other.sum, other.max
        with self._lock:
            for i, c in enumerate(counts):
                self.bucket_counts[i] += c
            self.count += o_count
            self.sum += o_sum
            if o_max > self.max:
                self.max = o_max

    # -- summaries ------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (linear interpolation inside the
        landing bucket; observations in the overflow bucket report the
        recorded maximum).  ``nan`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self.bucket_counts)
            total = self.count
            observed_max = self.max
        if total == 0:
            return math.nan
        rank = q * total
        cumulative = 0.0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if cumulative + c >= rank:
                if i == len(self.bounds):  # overflow bucket
                    return observed_max
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i]
                frac = (rank - cumulative) / c
                return lo + (hi - lo) * frac
            cumulative += c
        return observed_max

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    # -- serialization --------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Picklable/JSON-able snapshot (``from_dict`` round-trips it)."""
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count,
                "sum": self.sum,
                "max": self.max if self.count else None,
            }

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "Histogram":
        hist = cls(name, tuple(data["bounds"]))
        counts = list(data["bucket_counts"])
        if len(counts) != len(hist.bucket_counts):
            raise ValueError(
                f"histogram {name!r} snapshot has {len(counts)} buckets, "
                f"expected {len(hist.bucket_counts)}"
            )
        hist.bucket_counts = [int(c) for c in counts]
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        raw_max = data.get("max")
        hist.max = -math.inf if raw_max is None else float(raw_max)
        return hist


class HistogramRegistry:
    """Thread-safe map of histogram names to :class:`Histogram`.

    ``observe(name, value)`` creates the histogram on first use with
    the boundaries :func:`bucket_scheme` assigns to the name, so call
    sites stay one-liners and every process agrees on the buckets.
    """

    __slots__ = ("_histograms", "_lock")

    def __init__(self) -> None:
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def observe(self, name: str, value: float) -> None:
        self._get_or_create(name).observe(value)

    def _get_or_create(self, name: str) -> Histogram:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(
                    name, bucket_scheme(name)
                )
            return hist

    def get(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._histograms

    def __len__(self) -> int:
        with self._lock:
            return len(self._histograms)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._histograms))

    def merge(self, other: "HistogramRegistry") -> None:
        """Fold another registry's histograms into this one."""
        with other._lock:
            items = list(other._histograms.items())
        for name, hist in items:
            self._get_or_create(name).merge(hist)

    def merge_dicts(self, snapshots: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold serialized histogram snapshots (the cross-process wire
        format of :meth:`Histogram.as_dict`) into this registry."""
        for name, data in snapshots.items():
            self._get_or_create(name).merge(Histogram.from_dict(name, data))

    def as_dict(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every histogram, sorted by name."""
        with self._lock:
            items = sorted(self._histograms.items())
        return {name: hist.as_dict() for name, hist in items}
