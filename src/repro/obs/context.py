"""The active-instrumentation context.

Instrumented code never threads a collector through its signatures: it
asks :func:`current` for the ambient :class:`Instrumentation` and calls
``span``/``count`` on it.  When nothing is collecting, :func:`current`
returns the module-level :data:`NO_OP` singleton whose methods do
nothing — one ``ContextVar`` read plus a no-op call per instrumentation
site, which is why instrumentation sites sit at phase/group/launch
granularity (never per DP cell) and the ``collect="off"`` overhead
stays under the 2% budget the test suite enforces.

``ContextVar`` makes the context async- and thread-correct (each thread
or task sees its own activation), and ``fork``-started worker processes
inherit a *copy* — their mutations stay in the child, so the parent's
registry cannot be corrupted; deterministic worker-side counts are
re-accounted parent-side by the executor.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.cuda.counts import KernelCounts
from repro.obs.counters import CounterRegistry
from repro.obs.spans import Tracer, _SpanContext

__all__ = [
    "COLLECT_MODES",
    "AnyInstrumentation",
    "Instrumentation",
    "NO_OP",
    "collect",
    "current",
]

#: Collection modes: ``off`` records nothing, ``counters`` records the
#: counter registry only (no timing), ``full`` records counters + spans.
COLLECT_MODES = ("off", "counters", "full")

#: KernelCounts fields surfaced as per-kernel counters (the Table I
#: metric plus the quantities Figures 2/5 are built from).
_KERNEL_COUNTER_FIELDS = (
    "cells",
    "global_load_transactions",
    "global_store_transactions",
    "wavefront_steps",
    "idle_thread_steps",
)


class _NullContext:
    """Reusable do-nothing context manager (``span`` result when off)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Instrumentation:
    """One collection session: a counter registry plus (in ``full``
    mode) a span tracer."""

    __slots__ = ("mode", "counters", "tracer")

    def __init__(self, mode: str = "full") -> None:
        if mode not in COLLECT_MODES or mode == "off":
            raise ValueError(
                f"mode must be 'counters' or 'full', got {mode!r} "
                f"(use NO_OP for 'off')"
            )
        self.mode = mode
        self.counters = CounterRegistry()
        self.tracer = Tracer() if mode == "full" else None

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str) -> _SpanContext | _NullContext:
        """Timed region context manager (no-op in ``counters`` mode)."""
        if self.tracer is None:
            return _NULL_CONTEXT
        return self.tracer.span(name)

    def count(self, name: str, value: int = 1) -> None:
        self.counters.add(name, value)

    def count_kernel(self, kernel_name: str, counts: KernelCounts) -> None:
        """Record one kernel execution's :class:`KernelCounts` under
        ``kernel.<name>.*`` — the per-kernel Table I ledger."""
        prefix = f"kernel.{kernel_name}"
        add = self.counters.add
        add(f"{prefix}.launches", 1)
        for field in _KERNEL_COUNTER_FIELDS:
            add(f"{prefix}.{field}", getattr(counts, field))
        add(f"{prefix}.global_transactions", counts.global_transactions)


class _NoOpInstrumentation:
    """The ``off`` singleton: every operation is a cheap no-op."""

    __slots__ = ()

    mode = "off"
    enabled = False
    counters = None
    tracer = None

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def count(self, name: str, value: int = 1) -> None:
        return None

    def count_kernel(self, kernel_name: str, counts: KernelCounts) -> None:
        return None


NO_OP = _NoOpInstrumentation()

#: What instrumented code actually receives: a live session or the
#: inert singleton.  Both expose the same span/count/count_kernel
#: surface, so instrumentation sites take this union.
AnyInstrumentation = Instrumentation | _NoOpInstrumentation

_ACTIVE: ContextVar[AnyInstrumentation] = ContextVar(
    "repro_obs_active", default=NO_OP
)


def current() -> AnyInstrumentation:
    """The ambient instrumentation (:data:`NO_OP` when none active)."""
    return _ACTIVE.get()


@contextmanager
def collect(mode: str = "full") -> Iterator[AnyInstrumentation]:
    """Activate a fresh :class:`Instrumentation` for the enclosed block.

    ``collect("off")`` yields :data:`NO_OP` (and deactivates any outer
    collection for the block), so callers can pass a mode string
    through unconditionally.
    """
    if mode not in COLLECT_MODES:
        raise ValueError(
            f"collect mode must be one of {COLLECT_MODES}, got {mode!r}"
        )
    instr = NO_OP if mode == "off" else Instrumentation(mode)
    token = _ACTIVE.set(instr)
    try:
        yield instr
    finally:
        _ACTIVE.reset(token)
