"""The active-instrumentation context.

Instrumented code never threads a collector through its signatures: it
asks :func:`current` for the ambient :class:`Instrumentation` and calls
``span``/``count``/``observe`` on it.  When nothing is collecting,
:func:`current` returns the module-level :data:`NO_OP` singleton whose
methods do nothing — one ``ContextVar`` read plus a no-op call per
instrumentation site, which is why instrumentation sites sit at
phase/group/launch granularity (never per DP cell) and the
``collect="off"`` overhead stays under the 2% budget the test suite
enforces.

``ContextVar`` makes the context async- and thread-correct (each thread
or task sees its own activation).  Worker *processes* open their own
session per chunk (see ``repro.engine.executor``) and ship the snapshot
back as a :class:`WorkerTelemetry` with the chunk result; the parent
folds accepted snapshots in with :meth:`Instrumentation.merge_worker`
— counters and histograms merge into the shared registries, spans land
in pid-tagged worker lanes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

from repro.cuda.counts import KernelCounts
from repro.obs.counters import CounterRegistry
from repro.obs.histogram import HistogramRegistry
from repro.obs.memphase import MemoryPhaseTracker
from repro.obs.spans import Span, Tracer, _SpanContext

__all__ = [
    "COLLECT_MODES",
    "AnyInstrumentation",
    "Instrumentation",
    "NO_OP",
    "WorkerTelemetry",
    "activate",
    "collect",
    "current",
]

#: Collection modes: ``off`` records nothing, ``counters`` records the
#: counter/histogram registries only (no timing), ``full`` adds spans.
COLLECT_MODES = ("off", "counters", "full")

#: KernelCounts fields surfaced as per-kernel counters (the Table I
#: metric plus the quantities Figures 2/5 are built from).
_KERNEL_COUNTER_FIELDS = (
    "cells",
    "global_load_transactions",
    "global_store_transactions",
    "wavefront_steps",
    "idle_thread_steps",
)


class _NullContext:
    """Reusable do-nothing context manager (``span`` result when off)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()


@dataclass(frozen=True)
class WorkerTelemetry:
    """One worker-side collection session's picklable snapshot.

    Shipped back with each accepted chunk result: ``counters`` and
    ``histograms`` (serialized with
    :meth:`~repro.obs.histogram.Histogram.as_dict`) merge into the
    parent's registries; ``spans`` append to the worker's pid-tagged
    lane, with starts relative to the *worker's* epoch (set once per
    process, so successive chunks share one monotonic lane timeline).
    """

    pid: int
    mode: str
    counters: dict[str, int]
    histograms: dict[str, dict[str, Any]]
    spans: tuple[Span, ...]

    @classmethod
    def snapshot(cls, instr: "Instrumentation") -> "WorkerTelemetry":
        return cls(
            pid=os.getpid(),
            mode=instr.mode,
            counters=instr.counters.as_dict(),
            histograms=instr.histograms.as_dict(),
            spans=() if instr.tracer is None else instr.tracer.roots,
        )


class Instrumentation:
    """One collection session: counter + histogram registries plus (in
    ``full`` mode) a span tracer, and optional memory-phase tracking."""

    __slots__ = ("mode", "pid", "counters", "histograms", "tracer",
                 "worker_lanes", "_mem_tracker")

    def __init__(
        self,
        mode: str = "full",
        *,
        memory: bool = False,
        epoch: float | None = None,
    ) -> None:
        if mode not in COLLECT_MODES or mode == "off":
            raise ValueError(
                f"mode must be 'counters' or 'full', got {mode!r} "
                f"(use NO_OP for 'off')"
            )
        if memory and mode != "full":
            raise ValueError(
                "memory-phase tracking brackets spans, so it requires "
                f"mode='full' (got {mode!r})"
            )
        self.mode = mode
        self.pid = os.getpid()
        self.counters = CounterRegistry()
        self.histograms = HistogramRegistry()
        #: Worker-process span forests merged in by :meth:`merge_worker`,
        #: keyed by worker pid.
        self.worker_lanes: dict[int, list[Span]] = {}
        self._mem_tracker: MemoryPhaseTracker | None = None
        if memory:
            self._mem_tracker = MemoryPhaseTracker(self.counters)
            self._mem_tracker.start()
        self.tracer = (
            Tracer(epoch=epoch, phase_hook=self._mem_tracker)
            if mode == "full"
            else None
        )

    @property
    def enabled(self) -> bool:
        return True

    @property
    def memory(self) -> bool:
        """Whether memory-phase tracking is live for this session."""
        return self._mem_tracker is not None

    def close(self) -> None:
        """Release session resources (stops tracemalloc if this session
        started it).  :func:`collect` calls it on block exit."""
        if self._mem_tracker is not None:
            self._mem_tracker.stop()

    def span(self, name: str) -> _SpanContext | _NullContext:
        """Timed region context manager (no-op in ``counters`` mode)."""
        if self.tracer is None:
            return _NULL_CONTEXT
        return self.tracer.span(name)

    def count(self, name: str, value: int = 1) -> None:
        self.counters.add(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record one histogram observation (buckets per
        :func:`~repro.obs.histogram.bucket_scheme`)."""
        self.histograms.observe(name, value)

    def count_kernel(self, kernel_name: str, counts: KernelCounts) -> None:
        """Record one kernel execution's :class:`KernelCounts` under
        ``kernel.<name>.*`` — the per-kernel Table I ledger."""
        prefix = f"kernel.{kernel_name}"
        add = self.counters.add
        add(f"{prefix}.launches", 1)
        for field in _KERNEL_COUNTER_FIELDS:
            add(f"{prefix}.{field}", getattr(counts, field))
        add(f"{prefix}.global_transactions", counts.global_transactions)

    def merge_worker(self, telemetry: WorkerTelemetry) -> None:
        """Fold an accepted chunk's worker-side session into this one.

        Exactly-once by construction: the executor snapshots a *fresh*
        session per chunk attempt and merges only accepted results, so
        retried or discarded chunks never double-count and totals stay
        bit-identical to the serial path.
        """
        for name, value in telemetry.counters.items():
            self.counters.add(name, value)
        self.histograms.merge_dicts(telemetry.histograms)
        if telemetry.spans:
            self.worker_lanes.setdefault(telemetry.pid, []).extend(
                telemetry.spans
            )


class _NoOpInstrumentation:
    """The ``off`` singleton: every operation is a cheap no-op."""

    __slots__ = ()

    mode = "off"
    enabled = False
    memory = False
    counters = None
    histograms = None
    tracer = None

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def count(self, name: str, value: int = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def count_kernel(self, kernel_name: str, counts: KernelCounts) -> None:
        return None

    def merge_worker(self, telemetry: WorkerTelemetry) -> None:
        return None

    def close(self) -> None:
        return None


NO_OP = _NoOpInstrumentation()

#: What instrumented code actually receives: a live session or the
#: inert singleton.  Both expose the same span/count/observe/
#: count_kernel surface, so instrumentation sites take this union.
AnyInstrumentation = Instrumentation | _NoOpInstrumentation

_ACTIVE: ContextVar[AnyInstrumentation] = ContextVar(
    "repro_obs_active", default=NO_OP
)


def current() -> AnyInstrumentation:
    """The ambient instrumentation (:data:`NO_OP` when none active)."""
    return _ACTIVE.get()


@contextmanager
def activate(instr: AnyInstrumentation) -> Iterator[AnyInstrumentation]:
    """Activate an already-constructed session for the enclosed block
    (how the executor's workers install a custom-epoch session; most
    callers want :func:`collect`).  Does not :meth:`close` it."""
    token = _ACTIVE.set(instr)
    try:
        yield instr
    finally:
        _ACTIVE.reset(token)


@contextmanager
def collect(
    mode: str = "full", *, memory: bool = False
) -> Iterator[AnyInstrumentation]:
    """Activate a fresh :class:`Instrumentation` for the enclosed block.

    ``collect("off")`` yields :data:`NO_OP` (and deactivates any outer
    collection for the block), so callers can pass a mode string
    through unconditionally.  ``memory=True`` (``full`` mode only)
    turns on per-phase tracemalloc peaks (``engine.mem.*`` counters);
    it is ignored when the mode is ``off``.
    """
    if mode not in COLLECT_MODES:
        raise ValueError(
            f"collect mode must be one of {COLLECT_MODES}, got {mode!r}"
        )
    instr: AnyInstrumentation = (
        NO_OP if mode == "off" else Instrumentation(mode, memory=memory)
    )
    token = _ACTIVE.set(instr)
    try:
        yield instr
    finally:
        _ACTIVE.reset(token)
        instr.close()
