"""Farrar's striped SIMD Smith-Waterman on emulated SSE lanes.

The striped layout (Farrar 2007, used by SWPS3) assigns query position
``p`` to vector row ``p mod seg`` and lane ``p // seg`` with
``seg = ceil(m / V)``.  The inner loop then advances all ``V`` lanes one
query position at a time with no intra-vector dependencies; the price is
that the vertical gap state ``F`` cannot cross lane boundaries inside the
main loop, which the **lazy-F** pass repairs afterwards.

Our lazy-F pass differs from Farrar's published loop in one deliberate
way: when it raises an ``H`` value it also refreshes the stored ``E`` for
the next column (``E = max(E, H - rho)``).  Farrar's original skips that
update, which can underestimate scores in rare corner cases; this
implementation is tested for *bit-exact* agreement with the scalar
reference over random inputs, so it takes the safe form.  The extra
vector op is charged in the operation counts.

Lanes are emulated with a numpy axis; computation is int32, so the plain
entry point is exact by construction.  SWPS3's *adaptive precision* is
modeled too: :func:`striped_smith_waterman_adaptive` runs a saturating
"8-bit" pass (16 lanes, H capped at :data:`SATURATION_LIMIT`) and reruns
at "16-bit" (8 lanes, exact) only when the cap is hit — exactness below
the cap holds because saturation that never engages cannot perturb
anything.  The :class:`StripedCounts`/:class:`AdaptiveCounts` records
drive the CPU cost model of :mod:`repro.baselines.cpu_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = [
    "StripedProfile",
    "StripedCounts",
    "striped_smith_waterman",
    "striped_smith_waterman_adaptive",
    "SATURATION_LIMIT",
]

#: Saturation ceiling of the 8-bit first pass (SWPS3 biases scores into
#: unsigned bytes; 255 is the representable maximum).
SATURATION_LIMIT = 255

#: SSE2 lanes at 16-bit precision.
DEFAULT_LANES = 8

#: Vector instructions per segment row of the main loop (adds, maxes,
#: loads/stores of H/E/F — Farrar's inner loop is ~10 ops).
MAIN_OPS_PER_ROW = 10
#: Vector instructions per lazy-F row visit.
LAZY_OPS_PER_ROW = 4


@dataclass(frozen=True)
class StripedCounts:
    """Work performed by one striped alignment."""

    cells: int
    columns: int
    segment_length: int
    main_rows: int
    lazy_rows: int

    @property
    def vector_ops(self) -> int:
        return MAIN_OPS_PER_ROW * self.main_rows + LAZY_OPS_PER_ROW * self.lazy_rows

    @property
    def lazy_fraction(self) -> float:
        """Share of row visits spent in the lazy-F loop — the source of
        SWPS3's query-length sensitivity in the paper's Figure 7."""
        total = self.main_rows + self.lazy_rows
        return self.lazy_rows / total if total else 0.0


class StripedProfile:
    """Striped query profile: ``scores[a][row] = vector over lanes``."""

    def __init__(
        self,
        query_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        if lanes <= 0:
            raise ValueError("lanes must be positive")
        query_codes = np.asarray(query_codes, dtype=np.uint8)
        if query_codes.ndim != 1 or query_codes.size == 0:
            raise ValueError("query must be a non-empty 1-D code array")
        self.lanes = lanes
        self.length = int(query_codes.size)
        self.segment_length = -(-self.length // lanes)
        # Pad query positions beyond m with the matrix minimum so padding
        # lanes can never win.
        padded = np.full(self.segment_length * lanes, matrix.alphabet.size - 1,
                         dtype=np.int64)
        pad_mask = np.ones(self.segment_length * lanes, dtype=bool)
        padded[: self.length] = query_codes
        pad_mask[: self.length] = False
        # position p -> (row p % seg, lane p // seg)
        rows = np.arange(self.segment_length * lanes) % self.segment_length
        lanes_idx = np.arange(self.segment_length * lanes) // self.segment_length
        scores = np.empty(
            (matrix.alphabet.size, self.segment_length, lanes), dtype=np.int32
        )
        for a in range(matrix.alphabet.size):
            col = matrix.scores[np.minimum(padded, matrix.alphabet.size - 1), a]
            col = np.where(pad_mask, matrix.min_score, col)
            scores[a, rows, lanes_idx] = col
        self.scores = scores
        self.scores.setflags(write=False)


def _lane_shift(v: np.ndarray, fill: int) -> np.ndarray:
    """Move each lane's value to the next lane (query position += seg ...
    i.e. the striped successor); lane 0 receives ``fill``."""
    out = np.empty_like(v)
    out[0] = fill
    out[1:] = v[:-1]
    return out


def striped_smith_waterman(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
    lanes: int = DEFAULT_LANES,
    profile: StripedProfile | None = None,
    clamp: int | None = None,
) -> tuple[int, StripedCounts]:
    """Local-alignment score via the striped algorithm.

    Returns the score and the operation counts (for the CPU cost model).
    Without ``clamp`` the score is exact.  ``clamp`` emulates a saturating
    low-precision pass (SWPS3's 8-bit mode): H values cap there, and a
    returned score equal to ``clamp`` means the pass overflowed — any
    score *below* the clamp is still exact, because saturation never
    engaged on the optimal path or anywhere else.
    """
    if clamp is not None and clamp <= 0:
        raise ValueError("clamp must be positive")
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    if profile is None:
        profile = StripedProfile(q, matrix, lanes)
    elif profile.length != q.size or profile.lanes != lanes:
        raise ValueError("profile does not match the query/lane configuration")
    seg = profile.segment_length
    V = profile.lanes
    rho, sigma = gaps.rho, gaps.sigma
    neg = np.int32(NEG_INF)

    h_store = np.zeros((seg, V), dtype=np.int32)
    h_load = np.zeros((seg, V), dtype=np.int32)
    e = np.full((seg, V), neg, dtype=np.int32)
    best = 0
    main_rows = 0
    lazy_rows = 0

    for j in range(d.size):
        prof = profile.scores[d[j]]
        # vH enters row 0 as the previous column's last row, lane-shifted:
        # that is H(prev column, position p - 1) for each lane start.
        vh = _lane_shift(h_store[seg - 1], 0)
        h_load, h_store = h_store, h_load
        vf = np.full(V, neg, dtype=np.int32)

        for i in range(seg):
            main_rows += 1
            vh = vh + prof[i]
            vh = np.maximum(vh, e[i])
            vh = np.maximum(vh, vf)
            vh = np.maximum(vh, 0)
            if clamp is not None:
                np.minimum(vh, clamp, out=vh)
            step_best = int(vh.max())
            if step_best > best:
                best = step_best
            h_store[i] = vh
            open_h = vh - rho
            e[i] = np.maximum(e[i] - sigma, open_h)
            vf = np.maximum(vf - sigma, open_h)
            vh = h_load[i]

        # ---- lazy-F: propagate F across lane boundaries to fixpoint ----
        carry = vf
        for _cycle in range(V):
            carry = _lane_shift(carry, neg)
            if not (carry > 0).any():
                break  # H >= 0 everywhere: a non-positive F never matters
            updated = False
            for i in range(seg):
                lazy_rows += 1
                if (carry > h_store[i]).any():
                    updated = True
                    np.maximum(h_store[i], carry, out=h_store[i])
                    if clamp is not None:
                        np.minimum(h_store[i], clamp, out=h_store[i])
                    # Keep E consistent with the corrected H (see module
                    # docstring).
                    np.maximum(e[i], h_store[i] - rho, out=e[i])
                    step_best = int(h_store[i].max())
                    if step_best > best:
                        best = step_best
                carry = carry - sigma
                if not (carry > 0).any():
                    break
            if not updated:
                break

    counts = StripedCounts(
        cells=int(q.size) * int(d.size),
        columns=int(d.size),
        segment_length=seg,
        main_rows=main_rows,
        lazy_rows=lazy_rows,
    )
    return best, counts


@dataclass(frozen=True)
class AdaptiveCounts:
    """Work of an adaptive (8-bit first, 16-bit on overflow) alignment."""

    byte_pass: StripedCounts
    word_pass: StripedCounts | None

    @property
    def overflowed(self) -> bool:
        return self.word_pass is not None

    @property
    def vector_ops(self) -> int:
        ops = self.byte_pass.vector_ops
        if self.word_pass is not None:
            ops += self.word_pass.vector_ops
        return ops


def striped_smith_waterman_adaptive(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
    *,
    byte_lanes: int = 16,
    word_lanes: int = DEFAULT_LANES,
    byte_profile: StripedProfile | None = None,
    word_profile: StripedProfile | None = None,
) -> tuple[int, AdaptiveCounts]:
    """SWPS3's adaptive precision scheme, emulated.

    A saturating "8-bit" pass runs first with twice the lanes (16 x uint8
    per SSE register); if its score hits :data:`SATURATION_LIMIT` the pair
    reruns at "16-bit" precision (8 lanes, exact).  The returned score is
    always exact; the counts record both passes so the CPU cost model can
    price the scheme.
    """
    q = as_codes(query, matrix)
    byte_score, byte_counts = striped_smith_waterman(
        q, database, matrix, gaps, byte_lanes,
        profile=byte_profile, clamp=SATURATION_LIMIT,
    )
    if byte_score < SATURATION_LIMIT:
        return byte_score, AdaptiveCounts(byte_counts, None)
    word_score, word_counts = striped_smith_waterman(
        q, database, matrix, gaps, word_lanes, profile=word_profile,
    )
    return word_score, AdaptiveCounts(byte_counts, word_counts)
