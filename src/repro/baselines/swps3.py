"""The SWPS3 baseline model (Figure 7's reference curve).

SWPS3 (Szalkowski et al. 2008) is a multi-threaded striped-SIMD
Smith-Waterman.  Here it is reproduced as:

* the *algorithm* — :func:`repro.baselines.sse.striped_smith_waterman`,
  bit-exact against the scalar reference;
* the *machine* — :func:`repro.baselines.cpu_cost.swps3_time_seconds` on
  the paper's 4-core 2.33 GHz Xeon;
* the *scale bridge* — running the real algorithm over a whole Swiss-Prot
  stand-in is infeasible in Python, so :class:`Swps3Model` measures the
  striped loop's behaviour (including the data-dependent lazy-F workload,
  the paper's stated reason for SWPS3's query-length sensitivity) on a
  sampled subset and extrapolates the operation counts to the full
  database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, SubstitutionMatrix
from repro.baselines.cpu_cost import XEON_E5345, CpuSpec, swps3_time_seconds
from repro.baselines.sse import (
    DEFAULT_LANES,
    StripedCounts,
    StripedProfile,
    striped_smith_waterman,
)
from repro.sequence.database import Database
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES
from repro.sequence.sequence import Sequence

__all__ = ["Swps3Model", "Swps3Report"]


@dataclass(frozen=True)
class Swps3Report:
    """Modeled outcome of one SWPS3 database search."""

    query_length: int
    total_cells: int
    time_seconds: float
    lazy_fraction: float
    sampled_columns: int

    @property
    def gcups(self) -> float:
        return self.total_cells / self.time_seconds / 1e9


class Swps3Model:
    """SWPS3 on the paper's 4-core Xeon."""

    def __init__(
        self,
        cpu: CpuSpec = XEON_E5345,
        *,
        matrix: SubstitutionMatrix = BLOSUM62,
        gaps: GapPenalty | None = None,
        lanes: int = DEFAULT_LANES,
    ) -> None:
        self.cpu = cpu
        self.matrix = matrix
        self.gaps = gaps or GapPenalty.cudasw_default()
        self.lanes = lanes

    # ------------------------------------------------------------------
    # Functional search (exact scores; small databases)
    # ------------------------------------------------------------------
    def search(self, query: Sequence, db: Database) -> tuple[np.ndarray, list[StripedCounts]]:
        """Exact scores for every database sequence via the striped loop."""
        if not db.has_residues:
            raise ValueError("functional search needs a materialized database")
        profile = StripedProfile(query.codes, self.matrix, self.lanes)
        scores = np.zeros(len(db), dtype=np.int64)
        counts = []
        for i in range(len(db)):
            s, c = striped_smith_waterman(
                query.codes,
                db.codes_of(i),
                self.matrix,
                self.gaps,
                self.lanes,
                profile=profile,
            )
            scores[i] = s
            counts.append(c)
        return scores, counts

    # ------------------------------------------------------------------
    # Scale model
    # ------------------------------------------------------------------
    def report(
        self,
        query_length: int,
        db: Database,
        rng: np.random.Generator,
        *,
        sample_rows: int = 150_000,
    ) -> Swps3Report:
        """Model a full-database search from a measured sample.

        A random query of ``query_length`` is aligned against sampled
        database sequences (materialized residues if present, otherwise
        synthetic residues of the sampled lengths) until ``sample_rows``
        main-loop segment rows have been executed — a row budget, so the
        sampling cost is independent of the query length; the measured
        main/lazy row rates are then extrapolated to the whole database.
        """
        if query_length <= 0:
            raise ValueError("query length must be positive")
        if sample_rows <= 0:
            raise ValueError("sample_rows must be positive")
        query = Sequence.random(
            "swps3-query", query_length, rng,
            frequencies=SWISSPROT_AA_FREQUENCIES,
        )
        profile = StripedProfile(query.codes, self.matrix, self.lanes)
        seg = profile.segment_length

        sampled_cols = 0
        sampled_main = 0
        sampled_lazy = 0
        order = rng.permutation(len(db))
        for idx in order:
            idx = int(idx)
            if db.has_residues:
                d_codes = db.codes_of(idx)
            else:
                d_codes = db.alphabet.random_codes(
                    int(db.lengths[idx]), rng,
                    frequencies=SWISSPROT_AA_FREQUENCIES,
                )
            _, c = striped_smith_waterman(
                query.codes, d_codes, self.matrix, self.gaps, self.lanes,
                profile=profile,
            )
            sampled_cols += c.columns
            sampled_main += c.main_rows
            sampled_lazy += c.lazy_rows
            if sampled_main >= sample_rows:
                break

        total_columns = db.total_residues
        scale = total_columns / sampled_cols
        extrapolated = StripedCounts(
            cells=query_length * total_columns,
            columns=total_columns,
            segment_length=seg,
            main_rows=int(sampled_main * scale),
            lazy_rows=int(sampled_lazy * scale),
        )
        time = swps3_time_seconds(
            extrapolated, self.cpu, n_sequences=len(db)
        )
        return Swps3Report(
            query_length=query_length,
            total_cells=query_length * total_columns,
            time_seconds=time,
            lazy_fraction=extrapolated.lazy_fraction,
            sampled_columns=sampled_cols,
        )
