"""A BLAST-family seed-and-extend heuristic.

The paper's introduction frames exact Smith-Waterman against heuristics
"such as the Basic Local Alignment Search Tool (BLAST) ... much faster
than a naive implementation of SW but do not guarantee the optimality of
the alignment found."  This module supplies that comparator:

1. **seeding** — exact ``word_size``-mer matches between query and
   subject (hashed query index);
2. **two-hit trigger** — two non-overlapping hits on the same diagonal
   within a window (Altschul et al. 1997);
3. **ungapped X-drop extension** along the diagonal;
4. **gapped banded extension** (reusing
   :func:`repro.sw.banded.sw_score_banded`) around extensions whose
   ungapped score clears the trigger.

The reported score is a *lower bound* on the exact local-alignment score
(every stage only ever explores genuine alignments), which is precisely
the non-optimality trade tests pin down.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, SubstitutionMatrix
from repro.sequence.database import Database
from repro.sequence.sequence import Sequence
from repro.sw.banded import sw_score_banded

__all__ = ["BlastParams", "BlastLikeSearcher"]


@dataclass(frozen=True)
class BlastParams:
    """Heuristic tuning knobs (defaults follow protein-BLAST practice)."""

    word_size: int = 3
    #: Maximum diagonal distance between two hits that trigger extension.
    two_hit_window: int = 40
    #: Stop ungapped extension after the running score drops this far
    #: below its maximum.
    xdrop: int = 12
    #: Minimum ungapped score to attempt gapped extension.
    gapped_trigger: int = 18
    #: Band half-width of the gapped extension.
    band: int = 16
    #: Extra subject/query margin around the ungapped segment.
    margin: int = 24

    def __post_init__(self) -> None:
        if self.word_size <= 0:
            raise ValueError("word_size must be positive")
        if min(self.two_hit_window, self.xdrop, self.band, self.margin) < 0:
            raise ValueError("heuristic parameters must be non-negative")


class BlastLikeSearcher:
    """Query-indexed seed-and-extend search."""

    def __init__(
        self,
        query: Sequence,
        matrix: SubstitutionMatrix = BLOSUM62,
        gaps: GapPenalty | None = None,
        params: BlastParams | None = None,
    ) -> None:
        self.query = query
        self.matrix = matrix
        self.gaps = gaps or GapPenalty.cudasw_default()
        self.params = params or BlastParams()
        if len(query) < self.params.word_size:
            raise ValueError(
                f"query shorter than the word size "
                f"({len(query)} < {self.params.word_size})"
            )
        self._index = self._build_index(query.codes, self.params.word_size)

    @staticmethod
    def _build_index(codes: np.ndarray, k: int) -> dict[bytes, list[int]]:
        index: dict[bytes, list[int]] = defaultdict(list)
        data = codes.tobytes()
        for i in range(len(data) - k + 1):
            index[data[i : i + k]].append(i)
        return dict(index)

    # ------------------------------------------------------------------
    def _ungapped_extend(
        self, d_codes: np.ndarray, q_pos: int, d_pos: int
    ) -> tuple[int, int, int]:
        """X-drop ungapped extension through seed (q_pos, d_pos).

        Returns ``(score, q_start, q_end)`` of the best ungapped segment.
        """
        q = self.query.codes
        W = self.matrix.scores
        xdrop = self.params.xdrop
        k = self.params.word_size

        # Seed score.
        score = sum(
            int(W[q[q_pos + i], d_codes[d_pos + i]]) for i in range(k)
        )
        best = score
        # Extend right.
        run = score
        i = q_pos + k
        j = d_pos + k
        best_right = 0
        while i < q.size and j < d_codes.size:
            run += int(W[q[i], d_codes[j]])
            if run > best:
                best = run
                best_right = i - (q_pos + k) + 1
            if run < best - xdrop:
                break
            i += 1
            j += 1
        # Extend left.
        run = best
        i = q_pos - 1
        j = d_pos - 1
        best_left = 0
        while i >= 0 and j >= 0:
            run += int(W[q[i], d_codes[j]])
            if run > best:
                best = run
                best_left = q_pos - i
            if run < best - xdrop:
                break
            i -= 1
            j -= 1
        q_start = q_pos - best_left
        q_end = q_pos + k + best_right
        return best, q_start, q_end

    def _gapped_extend(
        self, d_codes: np.ndarray, q_start: int, q_end: int, diagonal: int
    ) -> int:
        """Banded gapped extension around an ungapped segment."""
        p = self.params
        q_lo = max(0, q_start - p.margin)
        q_hi = min(len(self.query), q_end + p.margin)
        d_lo = max(0, q_lo + diagonal - p.band)
        d_hi = min(d_codes.size, q_hi + diagonal + p.band)
        if q_hi <= q_lo or d_hi <= d_lo:
            return 0
        return sw_score_banded(
            self.query.codes[q_lo:q_hi],
            d_codes[d_lo:d_hi],
            self.matrix,
            self.gaps,
            band=p.band + abs((d_lo - q_lo) - diagonal),
        )

    # ------------------------------------------------------------------
    def score_sequence(self, d_codes: np.ndarray) -> int:
        """Heuristic score of the query against one subject sequence."""
        d_codes = np.asarray(d_codes, dtype=np.uint8)
        p = self.params
        k = p.word_size
        if d_codes.size < k:
            return 0
        data = d_codes.tobytes()
        last_hit: dict[int, int] = {}
        extended: set[tuple[int, int]] = set()
        best = 0
        for j in range(d_codes.size - k + 1):
            positions = self._index.get(data[j : j + k])
            if not positions:
                continue
            for q_pos in positions:
                diag = j - q_pos
                prev = last_hit.get(diag)
                if prev is None or j - prev > p.two_hit_window:
                    # First hit on this diagonal (or the previous one went
                    # stale): remember it and wait for a partner.
                    last_hit[diag] = j
                    continue
                if j - prev < k:
                    # Overlapping hit: keep the earlier anchor so a
                    # non-overlapping partner can still pair with it.
                    continue
                last_hit[diag] = j
                bucket = (diag, j // max(p.two_hit_window, 1))
                if bucket in extended:
                    continue
                extended.add(bucket)
                ungapped, q_start, q_end = self._ungapped_extend(
                    d_codes, q_pos, j - q_pos + q_pos
                )
                if ungapped > best:
                    best = ungapped
                if ungapped >= p.gapped_trigger:
                    gapped = self._gapped_extend(d_codes, q_start, q_end, diag)
                    if gapped > best:
                        best = gapped
        return best

    def search(self, db: Database) -> np.ndarray:
        """Heuristic scores for every database sequence."""
        if not db.has_residues:
            raise ValueError("heuristic search needs a materialized database")
        return np.array(
            [self.score_sequence(db.codes_of(i)) for i in range(len(db))],
            dtype=np.int64,
        )
