"""Baselines the paper compares against (or motivates with).

* :mod:`~repro.baselines.sse` + :mod:`~repro.baselines.swps3` — a faithful
  implementation of Farrar's *striped* SIMD Smith-Waterman, including the
  lazy-F correction loop, on emulated SSE lanes, with the 4-core Xeon cost
  model used to draw SWPS3's curve in Figure 7.
* :mod:`~repro.baselines.blastlike` — a seed-and-extend heuristic in the
  BLAST family (exact word seeds, two-hit trigger, X-drop ungapped
  extension, banded gapped extension): fast, but without the optimality
  guarantee — the paper's Section I framing for why exact SW on GPUs
  matters.
"""

from repro.baselines.blastlike import BlastLikeSearcher, BlastParams
from repro.baselines.cpu_cost import CpuSpec, XEON_E5345, swps3_time_seconds
from repro.baselines.sse import (
    SATURATION_LIMIT,
    AdaptiveCounts,
    StripedProfile,
    striped_smith_waterman,
    striped_smith_waterman_adaptive,
)
from repro.baselines.swps3 import Swps3Model, Swps3Report

__all__ = [
    "AdaptiveCounts",
    "BlastLikeSearcher",
    "BlastParams",
    "CpuSpec",
    "StripedProfile",
    "Swps3Model",
    "Swps3Report",
    "XEON_E5345",
    "striped_smith_waterman",
    "striped_smith_waterman_adaptive",
    "SATURATION_LIMIT",
    "swps3_time_seconds",
]
