"""CPU cost model for the SWPS3 baseline.

The paper ran SWPS3 "using four cores of an Intel Xeon processor clocked
at 2.33 GHz" as the Figure 7 reference curve.  The model converts the
striped algorithm's counted vector operations into seconds on that
machine; like the GPU model, the hardware facts live in the spec and the
behavioural constant (sustained issue rate) is a documented calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.sse import StripedCounts

__all__ = ["CpuSpec", "XEON_E5345", "swps3_time_seconds"]


@dataclass(frozen=True)
class CpuSpec:
    """A multicore SIMD CPU."""

    name: str
    clock_ghz: float
    cores: int
    #: SIMD lanes at the working precision (SSE2: 8 x 16-bit).
    lanes: int
    #: Sustained SSE instructions per cycle per core on this loop
    #: (dependent-op chains keep it near 1).
    sustained_ipc: float = 1.0
    #: Per-database-sequence software overhead (dispatch, profile reuse).
    per_sequence_overhead_us: float = 0.4

    def __post_init__(self) -> None:
        if min(self.clock_ghz, self.cores, self.lanes, self.sustained_ipc) <= 0:
            raise ValueError("CPU spec values must be positive")


#: The paper's SWPS3 host: 4 cores of a 2.33 GHz Xeon (E5345-class).
XEON_E5345 = CpuSpec(name="Xeon 2.33 GHz", clock_ghz=2.33, cores=4, lanes=8)


def swps3_time_seconds(
    counts: StripedCounts | list[StripedCounts],
    cpu: CpuSpec = XEON_E5345,
    *,
    threads: int | None = None,
    n_sequences: int | None = None,
) -> float:
    """Modeled wall time of striped searches distributed over cores.

    Sequences parallelize perfectly across cores (SWPS3 is multi-threaded
    over database sequences); within a core the vector ops issue at the
    sustained rate.

    Parameters
    ----------
    n_sequences:
        Database entries the per-sequence overhead applies to; defaults to
        the number of count records (the extrapolating scale model passes
        one aggregated record for many sequences).
    """
    if isinstance(counts, StripedCounts):
        counts = [counts]
    if not counts:
        raise ValueError("no counts given")
    threads = cpu.cores if threads is None else threads
    if threads <= 0 or threads > cpu.cores:
        raise ValueError(f"threads must be in [1, {cpu.cores}]")
    n_sequences = len(counts) if n_sequences is None else n_sequences
    if n_sequences <= 0:
        raise ValueError("n_sequences must be positive")
    total_ops = sum(c.vector_ops for c in counts)
    op_time = total_ops / (threads * cpu.clock_ghz * 1e9 * cpu.sustained_ipc)
    overhead = n_sequences * cpu.per_sequence_overhead_us * 1e-6 / threads
    return op_time + overhead
