"""repro — a reproduction of *Improving CUDASW++* (Hains et al., IPDPS 2011).

The package implements, from scratch and in pure Python/numpy:

* the Smith-Waterman local-alignment substrate (``repro.sw``),
* sequence/database handling and the paper's synthetic database profiles
  (``repro.sequence``, ``repro.alphabet``),
* a CUDA device model with memory-transaction accounting, caches, occupancy
  and an analytical cost model (``repro.cuda``),
* the CUDASW++ kernels — inter-task, original intra-task, and the paper's
  improved intra-task kernel with its incremental variants
  (``repro.kernels``),
* the end-to-end CUDASW++ application with threshold dispatch
  (``repro.app``),
* the SWPS3 and BLAST-like baselines (``repro.baselines``), and
* drivers regenerating every figure and table of the paper
  (``repro.analysis``).

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
paper-vs-measured results.
"""

__version__ = "1.0.0"
