"""The CUDA occupancy calculator.

Occupancy — resident warps over the hardware maximum — determines how well
a kernel hides memory and pipeline latency.  CUDASW++ sizes its inter-task
groups from exactly this calculation ("s is calculated at runtime based on
machine parameters to maximize the occupancy", Section II-C), which is why
the application layer needs a faithful implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import DeviceSpec

__all__ = ["Occupancy", "occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    threads_per_block: int
    device: DeviceSpec
    limited_by: str

    @property
    def resident_threads_per_sm(self) -> int:
        return self.blocks_per_sm * self.threads_per_block

    @property
    def resident_warps_per_sm(self) -> int:
        return self.resident_threads_per_sm // self.device.warp_size

    @property
    def occupancy(self) -> float:
        """Resident threads over the device maximum, in [0, 1]."""
        return self.resident_threads_per_sm / self.device.max_threads_per_sm

    @property
    def concurrent_threads_device(self) -> int:
        """Threads resident across the whole device — CUDASW++'s inter-task
        group size ``s``."""
        return self.resident_threads_per_sm * self.device.num_sms

    @property
    def concurrent_blocks_device(self) -> int:
        return self.blocks_per_sm * self.device.num_sms


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    registers_per_thread: int,
    shared_mem_per_block: int,
) -> Occupancy:
    """Resident blocks per SM for a kernel configuration.

    Applies the four hardware limits (block slots, thread slots, register
    file, shared memory) and reports which one binds.
    """
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"{threads_per_block} threads/block exceeds the device limit "
            f"{device.max_threads_per_block}"
        )
    if threads_per_block % device.warp_size:
        raise ValueError(
            f"threads_per_block must be a multiple of the warp size "
            f"({device.warp_size}), got {threads_per_block}"
        )
    if registers_per_thread < 0 or shared_mem_per_block < 0:
        raise ValueError("resource usages must be non-negative")
    if registers_per_thread > device.max_registers_per_thread:
        raise ValueError(
            f"{registers_per_thread} registers/thread exceeds the device "
            f"limit {device.max_registers_per_thread}"
        )
    if shared_mem_per_block > device.shared_mem_per_sm_bytes:
        raise ValueError(
            f"shared memory per block ({shared_mem_per_block} B) exceeds the "
            f"per-SM capacity ({device.shared_mem_per_sm_bytes} B)"
        )

    limits = {"block slots": device.max_blocks_per_sm}
    limits["thread slots"] = device.max_threads_per_sm // threads_per_block
    if registers_per_thread > 0:
        limits["registers"] = device.registers_per_sm // (
            registers_per_thread * threads_per_block
        )
    if shared_mem_per_block > 0:
        limits["shared memory"] = (
            device.shared_mem_per_sm_bytes // shared_mem_per_block
        )

    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks == 0:
        raise ValueError(
            f"kernel configuration does not fit on {device.name}: "
            f"limited by {limiter}"
        )
    return Occupancy(
        blocks_per_sm=blocks,
        threads_per_block=threads_per_block,
        device=device,
        limited_by=limiter,
    )
