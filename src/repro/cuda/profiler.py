"""Profiler: per-launch records and aggregate reports.

Plays the role the CUDA Visual Profiler plays in the paper — in particular
it produces the *total global memory transactions* figures of Table I.
Kernels register one :class:`LaunchRecord` per launch; the profiler
aggregates per kernel name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.counts import KernelCounts

__all__ = ["LaunchRecord", "CudaProfiler"]


@dataclass(frozen=True)
class LaunchRecord:
    """One kernel launch's identity and measured work."""

    kernel_name: str
    counts: KernelCounts
    grid_blocks: int
    threads_per_block: int
    time_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0 or self.threads_per_block <= 0:
            raise ValueError("launch geometry must be positive")


@dataclass
class CudaProfiler:
    """Accumulates launch records and summarizes them."""

    records: list[LaunchRecord] = field(default_factory=list)

    def record(self, record: LaunchRecord) -> None:
        self.records.append(record)

    def launches(self, kernel_name: str | None = None) -> list[LaunchRecord]:
        if kernel_name is None:
            return list(self.records)
        return [r for r in self.records if r.kernel_name == kernel_name]

    def kernel_names(self) -> list[str]:
        seen: list[str] = []
        for r in self.records:
            if r.kernel_name not in seen:
                seen.append(r.kernel_name)
        return seen

    def total_counts(self, kernel_name: str | None = None) -> KernelCounts:
        """Aggregate counts, optionally restricted to one kernel."""
        total = KernelCounts()
        for r in self.launches(kernel_name):
            total += r.counts
        return total

    def global_memory_transactions(self, kernel_name: str | None = None) -> int:
        """The Table I metric: total global-memory transactions."""
        return self.total_counts(kernel_name).global_transactions

    def total_time(self, kernel_name: str | None = None) -> float:
        """Summed modeled time (launches without a time count as 0)."""
        return sum(
            r.time_seconds or 0.0 for r in self.launches(kernel_name)
        )

    def time_fraction(self, kernel_name: str) -> float:
        """Fraction of total recorded time spent in one kernel — the
        quantity of the paper's Figure 5(b)."""
        total = self.total_time()
        if total <= 0:
            raise ValueError("no timed launches recorded")
        return self.total_time(kernel_name) / total

    def report(self) -> str:
        """Human-readable per-kernel summary table."""
        lines = [
            f"{'kernel':<28} {'launches':>8} {'cells':>14} "
            f"{'gld tx':>12} {'gst tx':>12} {'time (s)':>10}"
        ]
        for name in self.kernel_names():
            counts = self.total_counts(name)
            lines.append(
                f"{name:<28} {len(self.launches(name)):>8} "
                f"{counts.cells:>14} {counts.global_load_transactions:>12} "
                f"{counts.global_store_transactions:>12} "
                f"{self.total_time(name):>10.4f}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        self.records.clear()
