"""Kernel work accounting.

:class:`KernelCounts` is the common currency between the three layers of
the performance story:

1. the **functional kernels** increment counts while computing real
   alignment scores;
2. each kernel's **closed-form formulas** predict the same counts from
   ``(m, n, parameters)`` alone — tests assert exact equality with (1);
3. the **cost model** converts counts into seconds.

Counting conventions
--------------------
* ``global_load/store_transactions`` are *memory transactions* (what the
  CUDA profiler calls gld/gst transactions), i.e. already divided by the
  coalescing width where applicable — kernels apply
  :func:`repro.cuda.memory.transactions_per_warp_access` when they count.
* ``alu_ops`` are executed thread-instructions (a busy thread-step counts
  its instructions; idle lanes under divergence count into
  ``idle_thread_steps`` instead).
* ``wavefront_steps`` are the *serial* dependent steps of the kernel
  (anti-diagonal steps, or tile-wavefront steps inside a strip); they feed
  the latency/overhead term of the cost model.
* ``passes`` are strip passes (pipeline fill/flush events).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["KernelCounts"]


@dataclass
class KernelCounts:
    """Work performed by (or predicted for) a kernel execution."""

    cells: int = 0
    alu_ops: int = 0
    global_load_transactions: int = 0
    global_store_transactions: int = 0
    global_bytes_loaded: int = 0
    global_bytes_stored: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    texture_fetches: int = 0
    syncs: int = 0
    wavefront_steps: int = 0
    #: Wavefront steps whose critical path contains a *dependent* global
    #: memory access (the original kernel's every step; the improved
    #: kernel's steps in strips past the first, whose thread 0 loads the
    #: boundary row).  These are the steps that expose memory latency.
    dependent_global_steps: int = 0
    passes: int = 0
    idle_thread_steps: int = 0

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if not isinstance(v, int):
                raise TypeError(f"{f.name} must be an int, got {type(v).__name__}")
            if v < 0:
                raise ValueError(f"{f.name} must be non-negative, got {v}")

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def __add__(self, other: "KernelCounts") -> "KernelCounts":
        if not isinstance(other, KernelCounts):
            return NotImplemented
        return KernelCounts(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "KernelCounts") -> "KernelCounts":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: int) -> "KernelCounts":
        """Counts for ``factor`` identical executions."""
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return KernelCounts(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def global_transactions(self) -> int:
        """Total global-memory transactions (the paper's Table I metric)."""
        return self.global_load_transactions + self.global_store_transactions

    @property
    def global_bytes(self) -> int:
        return self.global_bytes_loaded + self.global_bytes_stored

    @property
    def shared_accesses(self) -> int:
        return self.shared_loads + self.shared_stores

    def global_transactions_per_cell(self) -> float:
        """Average global transactions per cell update (the paper's key
        efficiency metric — ~50:1 between the two intra-task kernels)."""
        if self.cells == 0:
            raise ValueError("no cells recorded")
        return self.global_transactions / self.cells

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
