"""Analytical kernel-time model (roofline plus critical-path overheads).

Converts a launch's :class:`~repro.cuda.counts.KernelCounts` into seconds.
The model is a classic throughput roofline —

    T_throughput = max(T_alu, T_dram, T_l1, T_texture, T_shared)

— plus *critical-path* overheads that throughput cannot hide: per-step
scheduling and barriers, exposed memory latency on dependent wavefront
steps, strip-pass pipeline fill/flush, and kernel-launch cost.  Every term
is scaled by the launch's actual concurrency (occupancy, and how many SMs
the grid can feed), which is what makes one model reproduce both the
memory-bound original intra-task kernel and the compute-bound inter-task
and improved kernels.

Counts are *totals across all blocks of the launch*; critical-path terms
divide by the number of blocks executing in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.cache import CacheConfig, CacheHierarchyModel
from repro.cuda.calibration import DEFAULT_CALIBRATION, CostCalibration
from repro.cuda.counts import KernelCounts
from repro.cuda.device import DeviceSpec
from repro.cuda.occupancy import occupancy

__all__ = ["LaunchConfig", "KernelTime", "CostModel"]


@dataclass(frozen=True)
class LaunchConfig:
    """Execution configuration of one kernel launch."""

    grid_blocks: int
    threads_per_block: int
    registers_per_thread: int
    shared_mem_per_block: int
    #: "shared" when wavefront steps synchronize through shared memory
    #: (improved kernel), "global" when each step performs a dependent
    #: global-memory round trip (original intra-task kernel), "none" for
    #: kernels without inter-thread steps (inter-task).
    step_memory: str = "none"

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError("grid_blocks must be positive")
        if self.step_memory not in ("none", "shared", "global"):
            raise ValueError(f"unknown step_memory {self.step_memory!r}")


@dataclass(frozen=True)
class KernelTime:
    """Time breakdown of a launch (seconds)."""

    total: float
    t_alu: float
    t_dram: float
    t_l1: float
    t_texture: float
    t_shared: float
    t_steps: float
    t_latency: float
    t_passes: float
    t_launch: float
    cache_hit_rate: float
    bound_by: str

    def gcups(self, cells: int) -> float:
        """Giga cell updates per second achieved for ``cells`` updates."""
        if self.total <= 0:
            raise ValueError("non-positive kernel time")
        return cells / self.total / 1e9

    def render(self) -> str:
        """Human-readable breakdown of where the launch's time goes."""
        parts = [
            ("ALU issue", self.t_alu),
            ("DRAM bandwidth", self.t_dram),
            ("L1/L2 service", self.t_l1),
            ("texture units", self.t_texture),
            ("shared memory", self.t_shared),
        ]
        lines = [
            f"bound by: {self.bound_by} "
            f"(cache hit rate {self.cache_hit_rate:.0%})"
        ]
        for label, value in parts:
            marker = " <- roofline" if value == max(v for _, v in parts) else ""
            lines.append(f"  {label:<15} {1e3 * value:9.3f} ms{marker}")
        lines.append(f"  {'step/sync path':<15} {1e3 * self.t_steps:9.3f} ms")
        lines.append(f"  {'exposed latency':<15} {1e3 * self.t_latency:9.3f} ms")
        lines.append(f"  {'pipeline passes':<15} {1e3 * self.t_passes:9.3f} ms")
        lines.append(f"  {'launch overhead':<15} {1e3 * self.t_launch:9.3f} ms")
        lines.append(f"  {'total':<15} {1e3 * self.total:9.3f} ms")
        return "\n".join(lines)


class CostModel:
    """Analytical time model for one device."""

    def __init__(
        self,
        device: DeviceSpec,
        calibration: CostCalibration = DEFAULT_CALIBRATION,
        *,
        cache_enabled: bool = True,
    ) -> None:
        self.device = device
        self.calibration = calibration
        self.cache = CacheHierarchyModel(device, enabled=cache_enabled)

    # ------------------------------------------------------------------
    def kernel_time(
        self,
        counts: KernelCounts,
        launch: LaunchConfig,
        cache_profile: CacheConfig | None = None,
        *,
        launches: int = 1,
    ) -> KernelTime:
        """Time for a launch performing ``counts`` of work.

        Parameters
        ----------
        counts:
            Totals across all blocks of the launch (or across all
            ``launches`` identical launches).
        launch:
            Execution configuration.
        cache_profile:
            The kernel's cache-traffic description (None -> no caching
            benefit).
        launches:
            Number of kernel launches these counts span (adds launch
            overhead; the grid/occupancy math uses one launch's grid).
        """
        if launches <= 0:
            raise ValueError("launches must be positive")
        dev = self.device
        cal = self.calibration

        occ = occupancy(
            dev,
            launch.threads_per_block,
            launch.registers_per_thread,
            launch.shared_mem_per_block,
        )
        active_sms = min(dev.num_sms, launch.grid_blocks)
        parallel_blocks = min(
            launch.grid_blocks, occ.blocks_per_sm * active_sms
        )
        # Warps actually resident per active SM (the grid may not fill the
        # occupancy limit).
        warps_per_block = launch.threads_per_block // dev.warp_size
        resident_warps = min(
            occ.resident_warps_per_sm,
            max(1, (launch.grid_blocks * warps_per_block) // active_sms),
        )

        # --- throughput terms -----------------------------------------
        alu_util = min(1.0, resident_warps / cal.warps_to_hide_alu)
        issue = (
            dev.instruction_throughput_per_second
            * (active_sms / dev.num_sms)
            * cal.issue_efficiency_for(dev.name)
            * alu_util
        )
        t_alu = counts.alu_ops / issue if counts.alu_ops else 0.0

        hit = self.cache.hit_rate(
            cache_profile,
            blocks_per_sm=occ.blocks_per_sm,
            concurrent_blocks=max(parallel_blocks, 1),
        )
        dram_bytes = counts.global_bytes_loaded * (1.0 - hit) + (
            counts.global_bytes_stored * (1.0 - hit * cal.store_cache_benefit)
        )
        bw_scale = min(
            1.0, (active_sms / dev.num_sms) / cal.bw_sm_saturation_fraction
        )
        bw = dev.global_bandwidth_bytes_per_second * cal.bandwidth_efficiency * bw_scale
        t_dram = dram_bytes / bw if dram_bytes else 0.0

        hit_transactions = hit * (
            counts.global_load_transactions
            + cal.store_cache_benefit * counts.global_store_transactions
        )
        t_l1 = hit_transactions / (
            active_sms * cal.l1_hit_transactions_per_cycle_per_sm * dev.clock_hz
        )

        t_tex = counts.texture_fetches / (
            active_sms * cal.tex_fetches_per_cycle_per_sm * dev.clock_hz
        )
        t_shared = counts.shared_accesses / (
            active_sms * dev.cores_per_sm * dev.clock_hz
        )

        # --- critical-path terms --------------------------------------
        # Totals divided by the blocks running in parallel give the
        # per-"wave" serial path; waves of blocks execute back to back.
        p = max(parallel_blocks, 1)
        step_cycles = counts.wavefront_steps * cal.step_overhead_cycles
        sync_cycles = counts.syncs * cal.sync_cycles
        t_steps = dev.cycles_to_seconds((step_cycles + sync_cycles) / p)

        t_latency = 0.0
        if counts.dependent_global_steps:
            hiding = min(1.0, resident_warps / cal.warps_to_hide_global)
            exposed = dev.global_latency_cycles * (1.0 - hiding) * (1.0 - hit)
            t_latency = dev.cycles_to_seconds(
                counts.dependent_global_steps * exposed / p
            )

        t_passes = dev.cycles_to_seconds(
            counts.passes * cal.pass_overhead_cycles / p
        )
        t_launch = launches * cal.launch_overhead_us * 1e-6

        terms = {
            "alu": t_alu,
            "dram": t_dram,
            "l1": t_l1,
            "texture": t_tex,
            "shared": t_shared,
        }
        bound_by = max(terms, key=lambda k: terms[k])
        total = (
            max(terms.values()) + t_steps + t_latency + t_passes + t_launch
        )
        return KernelTime(
            total=total,
            t_alu=t_alu,
            t_dram=t_dram,
            t_l1=t_l1,
            t_texture=t_tex,
            t_shared=t_shared,
            t_steps=t_steps,
            t_latency=t_latency,
            t_passes=t_passes,
            t_launch=t_launch,
            cache_hit_rate=hit,
            bound_by=bound_by,
        )

    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: int) -> float:
        """Host -> device copy time over PCIe."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes / self.device.pcie_bandwidth_bytes_per_second


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative operands."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)
