"""Behavioural constants of the cost model.

:class:`repro.cuda.device.DeviceSpec` holds published hardware facts;
everything judgemental — achievable fractions of peak, latency-hiding
thresholds, per-event overheads — lives here, in one calibrated object, so
the model's assumptions are visible and testable in a single place.

Calibration targets are the paper's four anchor measurements on the Tesla
C1060 (Section II-C): the inter-task kernel averages ~17 GCUPs, the
original intra-task kernel ~1.5 GCUPs, the improved intra-task kernel is
~11x the original, and CUDASW++ overall reaches ~17 GCUPs on Swiss-Prot at
the default threshold.  EXPERIMENTS.md records how close the calibrated
model lands.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CostCalibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True)
class CostCalibration:
    """Machine-behaviour constants consumed by :class:`repro.cuda.cost.CostModel`."""

    #: Fraction of peak simple-ALU issue rate a real kernel sustains, per
    #: device.  GT200's scalar SMs sustain close to peak on dependent
    #: integer code; Fermi's dual-scheduler SM cannot keep all 32 cores fed
    #: from this dependency-heavy inner loop.
    issue_efficiency: dict[str, float] = field(
        default_factory=lambda: {"Tesla C1060": 0.95, "Tesla C2050": 0.72}
    )

    #: Achievable fraction of peak DRAM bandwidth for the kernels' mix of
    #: transaction sizes.
    bandwidth_efficiency: float = 0.60

    #: Fraction of SMs that must be active to saturate DRAM bandwidth.
    bw_sm_saturation_fraction: float = 0.5

    #: Resident warps per SM needed to hide ALU pipeline latency.
    warps_to_hide_alu: int = 6

    #: Resident warps per SM needed to hide a global-memory round trip.
    warps_to_hide_global: int = 20

    #: Cycles charged per __syncthreads() on the critical path.
    sync_cycles: int = 40

    #: Scheduling cycles per wavefront step beyond the sync itself.
    step_overhead_cycles: int = 8

    #: Cycles to drain and refill the software pipeline at a strip
    #: boundary (Section III-C / VI: "latency for filling and flushing the
    #: pipeline").
    pass_overhead_cycles: int = 600

    #: Host-side cost of one kernel launch.
    launch_overhead_us: float = 8.0

    #: Fraction of the load hit rate that stores enjoy (Fermi L1 is
    #: write-evict; only L2 helps stores).
    store_cache_benefit: float = 0.5

    #: L1/L2 hit service rate, transactions per cycle per SM.
    l1_hit_transactions_per_cycle_per_sm: float = 8.0

    #: Texture fetch rate per cycle per SM (dedicated texture units).
    tex_fetches_per_cycle_per_sm: float = 4.0

    def __post_init__(self) -> None:
        if not 0 < self.bandwidth_efficiency <= 1:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        if not 0 < self.bw_sm_saturation_fraction <= 1:
            raise ValueError("bw_sm_saturation_fraction must be in (0, 1]")
        for name, eff in self.issue_efficiency.items():
            if not 0 < eff <= 1:
                raise ValueError(f"issue efficiency for {name!r} must be in (0, 1]")
        if min(self.warps_to_hide_alu, self.warps_to_hide_global) <= 0:
            raise ValueError("latency-hiding warp counts must be positive")
        if not 0 <= self.store_cache_benefit <= 1:
            raise ValueError("store_cache_benefit must be in [0, 1]")

    def issue_efficiency_for(self, device_name: str) -> float:
        """Issue efficiency for a device (1.0 for unknown devices)."""
        return self.issue_efficiency.get(device_name, 1.0)


#: The calibration used throughout the benchmarks.
DEFAULT_CALIBRATION = CostCalibration()
