"""Memory-system rules: coalescing and shared-memory budgets.

Only the rules the kernels actually depend on are modeled:

* **Coalescing** — how many global-memory transactions one warp-wide
  access generates, as a function of the access pattern.  This is where
  the original intra-task kernel's per-cell traffic and the improved
  kernel's strip-boundary traffic get their transaction counts.
* **Shared memory budgets** — whether a block's shared allocation fits the
  SM (the improved kernel's wavefront buffers, and the future-work
  "shared memory only" mode for short sequences).
"""

from __future__ import annotations

import enum

from repro.cuda.device import DeviceSpec

__all__ = ["AccessPattern", "transactions_per_warp_access", "shared_memory_fits"]


class AccessPattern(enum.Enum):
    """How the threads of a warp address global memory in one access."""

    #: Thread ``t`` reads element ``base + t`` (unit stride).
    COALESCED = "coalesced"
    #: Threads read elements with a stride larger than a transaction.
    STRIDED = "strided"
    #: One thread performs the access alone (e.g. the last thread of a
    #: strip writing boundary values "one at a time", Section VI).
    SINGLE_THREAD = "single_thread"
    #: All threads read the same address (broadcast through cache/const).
    BROADCAST = "broadcast"


def transactions_per_warp_access(
    device: DeviceSpec,
    pattern: AccessPattern,
    element_bytes: int = 4,
    active_threads: int | None = None,
) -> int:
    """Global transactions one warp-wide access generates.

    Parameters
    ----------
    pattern:
        The addressing pattern of the warp.
    element_bytes:
        Size of the element each thread accesses.
    active_threads:
        Threads actually performing the access (predication/divergence);
        defaults to the full warp.

    Notes
    -----
    A coalesced full-warp 4-byte access touches ``32 * 4 = 128`` bytes:
    one 128-byte transaction on Fermi, four 32-byte segments on GT200 —
    both amount to the same bytes moved, so the distinction only shows up
    in transaction *counts*, matching how the CUDA profiler reports them.
    Strided and single-thread accesses pay one minimum-size transaction per
    active thread; broadcasts pay one.
    """
    if element_bytes <= 0:
        raise ValueError("element_bytes must be positive")
    n = device.warp_size if active_threads is None else active_threads
    if not 0 <= n <= device.warp_size:
        raise ValueError(
            f"active_threads must be in [0, {device.warp_size}], got {n}"
        )
    if n == 0:
        return 0
    if pattern is AccessPattern.BROADCAST:
        return 1
    if pattern is AccessPattern.COALESCED:
        span = n * element_bytes
        return -(-span // device.min_transaction_bytes)  # ceil
    # STRIDED / SINGLE_THREAD: no two threads share a segment.
    per_thread = -(-element_bytes // device.min_transaction_bytes)
    return n * max(per_thread, 1)


def shared_memory_fits(
    device: DeviceSpec, bytes_per_block: int, blocks_per_sm: int = 1
) -> bool:
    """Whether ``blocks_per_sm`` blocks of this allocation fit one SM."""
    if bytes_per_block < 0 or blocks_per_sm <= 0:
        raise ValueError("invalid shared-memory budget query")
    return bytes_per_block * blocks_per_sm <= device.shared_mem_per_sm_bytes
