"""A miniature nvcc resource model.

Section III-A of the paper documents two code-generation pitfalls that
silently demote register arrays to *local memory* (which physically lives
in global memory):

1. **Shallow swap** — swapping two register arrays by exchanging pointers
   means an array reference can alias either buffer at run time, so nvcc
   cannot map the arrays onto hardware registers.  Fix: a "deep swap"
   copying element by element.
2. **Texture-blocked unrolling** — nvcc (CUDA 3.2) refuses to unroll a
   loop containing a texture fetch; without unrolling, array subscripts
   are not compile-time constants and the arrays again land in local
   memory.  Fix: hand-unroll the loop.

This module models exactly that decision procedure.  A
:class:`KernelSource` declares scalar register pressure, local arrays and
loops; :func:`compile_kernel` decides which arrays become registers and
which spill to local memory, plus which loops unroll.  The improved
intra-task kernel's variants (v0 naive .. v3 final) differ only in these
source attributes, which is how the ablation benchmark reproduces the
paper's "about a two-fold performance increase when the registers were
being utilized as intended".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.device import DeviceSpec

__all__ = ["RegisterArray", "Loop", "KernelSource", "CompiledKernel", "compile_kernel"]


@dataclass(frozen=True)
class Loop:
    """A loop whose body indexes candidate register arrays."""

    name: str
    trip_count: int
    contains_texture_fetch: bool = False
    hand_unrolled: bool = False

    def __post_init__(self) -> None:
        if self.trip_count <= 0:
            raise ValueError(f"loop {self.name!r}: trip count must be positive")


@dataclass(frozen=True)
class RegisterArray:
    """A small per-thread array the author intends to keep in registers.

    Parameters
    ----------
    length:
        Elements (4-byte words).
    indexed_by:
        Name of the loop whose induction variable subscripts the array, or
        ``None`` for constant subscripts.
    pointer_swapped:
        True when the code swaps this array with another via pointers (the
        shallow swap of Section III-A).
    """

    name: str
    length: int
    indexed_by: str | None = None
    pointer_swapped: bool = False

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError(f"array {self.name!r}: length must be positive")


@dataclass(frozen=True)
class KernelSource:
    """Resource-relevant description of a kernel."""

    name: str
    scalar_registers: int
    arrays: tuple[RegisterArray, ...] = ()
    loops: tuple[Loop, ...] = ()

    def __post_init__(self) -> None:
        if self.scalar_registers < 0:
            raise ValueError("scalar register count must be non-negative")
        loop_names = {l.name for l in self.loops}
        if len(loop_names) != len(self.loops):
            raise ValueError("duplicate loop names")
        array_names = [a.name for a in self.arrays]
        if len(set(array_names)) != len(array_names):
            raise ValueError("duplicate array names")
        for a in self.arrays:
            if a.indexed_by is not None and a.indexed_by not in loop_names:
                raise ValueError(
                    f"array {a.name!r} indexed by unknown loop {a.indexed_by!r}"
                )


@dataclass(frozen=True)
class CompiledKernel:
    """Result of the register-allocation decision."""

    source: KernelSource
    registers_per_thread: int
    register_arrays: tuple[str, ...]
    local_memory_arrays: tuple[str, ...]
    unrolled_loops: tuple[str, ...]
    demotion_reasons: dict[str, str] = field(default_factory=dict)

    @property
    def local_memory_words(self) -> int:
        """Per-thread 4-byte words living in local (= global) memory."""
        by_name = {a.name: a for a in self.source.arrays}
        return sum(by_name[n].length for n in self.local_memory_arrays)

    @property
    def uses_local_memory(self) -> bool:
        return bool(self.local_memory_arrays)


def compile_kernel(source: KernelSource, device: DeviceSpec) -> CompiledKernel:
    """Decide register mapping for ``source`` on ``device``.

    Rules (in order):

    1. a loop unrolls iff it is hand-unrolled or contains no texture fetch;
    2. an array maps to registers iff it is not pointer-swapped and every
       subscript is compile-time constant (constant subscripts, or an
       induction variable of an unrolled loop);
    3. if total register demand exceeds the per-thread hardware limit, the
       largest register arrays spill to local memory until it fits.
    """
    loops = {l.name: l for l in source.loops}
    unrolled = tuple(
        name
        for name, loop in loops.items()
        if loop.hand_unrolled or not loop.contains_texture_fetch
    )
    unrolled_set = set(unrolled)

    reasons: dict[str, str] = {}
    register_arrays: list[RegisterArray] = []
    local_arrays: list[str] = []
    for arr in source.arrays:
        if arr.pointer_swapped:
            local_arrays.append(arr.name)
            reasons[arr.name] = (
                "shallow pointer swap: the reference may alias either "
                "buffer, so it cannot map to registers"
            )
        elif arr.indexed_by is not None and arr.indexed_by not in unrolled_set:
            local_arrays.append(arr.name)
            reasons[arr.name] = (
                f"loop {arr.indexed_by!r} not unrolled (texture fetch in "
                "body): subscripts are not compile-time constants"
            )
        else:
            register_arrays.append(arr)

    # Spill largest-first until the register budget fits.
    register_arrays.sort(key=lambda a: a.length)
    regs = source.scalar_registers + sum(a.length for a in register_arrays)
    while regs > device.max_registers_per_thread and register_arrays:
        victim = register_arrays.pop()  # largest
        local_arrays.append(victim.name)
        reasons[victim.name] = (
            f"register pressure: demand exceeded the per-thread limit "
            f"({device.max_registers_per_thread})"
        )
        regs -= victim.length
    if regs > device.max_registers_per_thread:
        raise ValueError(
            f"kernel {source.name!r} needs {regs} scalar registers, more "
            f"than {device.name} provides per thread"
        )

    return CompiledKernel(
        source=source,
        registers_per_thread=regs,
        register_arrays=tuple(a.name for a in register_arrays),
        local_memory_arrays=tuple(local_arrays),
        unrolled_loops=unrolled,
        demotion_reasons=reasons,
    )
