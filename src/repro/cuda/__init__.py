"""A CUDA device model: the hardware substrate of the reproduction.

There is no GPU in this environment, so the paper's Tesla C1060 and C2050
are substituted by a device *model* (see DESIGN.md §2).  The model has the
pieces the paper's analysis actually exercises:

* :class:`~repro.cuda.device.DeviceSpec` — SM/warp geometry, clocks,
  memory sizes, bandwidths and cache hierarchy;
  :data:`~repro.cuda.device.TESLA_C1060` and
  :data:`~repro.cuda.device.TESLA_C2050` are the paper's two boards;
* :class:`~repro.cuda.counts.KernelCounts` — the work a kernel performed
  (cells, ALU ops, global/shared/texture transactions, barriers, wavefront
  steps, strip passes).  Functional kernels *count* these while computing
  real alignment scores; closed-form formulas predict them, and tests
  assert both agree exactly;
* :mod:`~repro.cuda.occupancy` — the standard occupancy calculator;
* :mod:`~repro.cuda.memory` — coalescing rules (transactions per warp
  access) and shared-memory budget checks;
* :mod:`~repro.cuda.cache` — Fermi's L1/L2: a real set-associative LRU
  simulator for traces plus the analytic hit-rate model the cost model
  uses (and that Figure 6 switches off);
* :mod:`~repro.cuda.compiler` — a miniature nvcc resource model with the
  two code-generation quirks documented in Section III-A of the paper
  (pointer "shallow swap" and texture-blocked loop unrolling both demote
  register arrays to local = global memory);
* :mod:`~repro.cuda.cost` — the analytical roofline-plus-overheads model
  converting counts into seconds, with machine constants in
  :mod:`~repro.cuda.calibration`.
"""

from repro.cuda.cache import CacheConfig, CacheHierarchyModel, SetAssociativeCache
from repro.cuda.calibration import CostCalibration, DEFAULT_CALIBRATION
from repro.cuda.compiler import (
    CompiledKernel,
    KernelSource,
    Loop,
    RegisterArray,
    compile_kernel,
)
from repro.cuda.counts import KernelCounts
from repro.cuda.cost import CostModel, LaunchConfig
from repro.cuda.device import DEVICES, TESLA_C1060, TESLA_C2050, DeviceSpec
from repro.cuda.memory import (
    AccessPattern,
    shared_memory_fits,
    transactions_per_warp_access,
)
from repro.cuda.occupancy import Occupancy, occupancy
from repro.cuda.profiler import CudaProfiler, LaunchRecord

__all__ = [
    "AccessPattern",
    "CacheConfig",
    "CacheHierarchyModel",
    "CompiledKernel",
    "CostCalibration",
    "CostModel",
    "CudaProfiler",
    "DEFAULT_CALIBRATION",
    "DEVICES",
    "DeviceSpec",
    "KernelCounts",
    "KernelSource",
    "LaunchConfig",
    "LaunchRecord",
    "Loop",
    "Occupancy",
    "RegisterArray",
    "SetAssociativeCache",
    "TESLA_C1060",
    "TESLA_C2050",
    "compile_kernel",
    "occupancy",
    "shared_memory_fits",
    "transactions_per_warp_access",
]
