"""Device specifications for the modeled GPUs.

The two boards of the paper:

* **Tesla C1060** (GT200, compute capability 1.3): 30 SMs x 8 cores at
  1.296 GHz, 16 KiB shared memory and 16384 registers per SM, no L1/L2 —
  global memory is only cached through the small read-only texture cache.
* **Tesla C2050** (Fermi GF100, compute capability 2.0): 14 SMs x 32 cores
  at 1.15 GHz, 48 KiB shared + 16 KiB L1 per SM (the benchmark
  configuration), a 768 KiB unified L2, 32768 registers per SM.

Numbers follow NVIDIA's published board specifications; the cost model's
behavioural constants live in :mod:`repro.cuda.calibration` instead, so the
hardware description stays assumption-free.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "TESLA_C1060", "TESLA_C2050", "DEVICES"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a CUDA device."""

    name: str
    compute_capability: tuple[int, int]
    clock_ghz: float
    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    max_registers_per_thread: int
    shared_mem_per_sm_bytes: int
    global_mem_bytes: int
    global_bandwidth_gbps: float
    global_latency_cycles: int
    #: Smallest global-memory transaction the memory controller issues.
    min_transaction_bytes: int
    #: Cache line size for L1/L2 (Fermi) or the texture cache granularity.
    cache_line_bytes: int
    has_l1_l2: bool
    l1_bytes_per_sm: int
    l2_bytes: int
    texture_cache_bytes_per_sm: int
    pcie_bandwidth_gbps: float

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("SM geometry must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")
        if self.warp_size <= 0 or self.max_threads_per_block % self.warp_size:
            raise ValueError("max threads per block must be a warp multiple")
        if self.has_l1_l2 and (self.l1_bytes_per_sm <= 0 or self.l2_bytes <= 0):
            raise ValueError("Fermi-class devices must define L1/L2 sizes")

    # ------------------------------------------------------------------
    # Derived throughput figures
    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def instruction_throughput_per_second(self) -> float:
        """Peak simple-ALU instructions per second, device-wide."""
        return self.total_cores * self.clock_ghz * 1e9

    @property
    def global_bandwidth_bytes_per_second(self) -> float:
        return self.global_bandwidth_gbps * 1e9

    @property
    def pcie_bandwidth_bytes_per_second(self) -> float:
        return self.pcie_bandwidth_gbps * 1e9

    @property
    def clock_hz(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    @property
    def is_fermi(self) -> bool:
        return self.compute_capability >= (2, 0)


TESLA_C1060 = DeviceSpec(
    name="Tesla C1060",
    compute_capability=(1, 3),
    clock_ghz=1.296,
    num_sms=30,
    cores_per_sm=8,
    warp_size=32,
    max_threads_per_block=512,
    max_threads_per_sm=1024,
    max_blocks_per_sm=8,
    registers_per_sm=16384,
    max_registers_per_thread=124,
    shared_mem_per_sm_bytes=16 * 1024,
    global_mem_bytes=4 * 1024**3,
    global_bandwidth_gbps=102.0,
    global_latency_cycles=550,
    min_transaction_bytes=32,
    cache_line_bytes=32,
    has_l1_l2=False,
    l1_bytes_per_sm=0,
    l2_bytes=0,
    texture_cache_bytes_per_sm=8 * 1024,
    pcie_bandwidth_gbps=5.2,
)

TESLA_C2050 = DeviceSpec(
    name="Tesla C2050",
    compute_capability=(2, 0),
    clock_ghz=1.15,
    num_sms=14,
    cores_per_sm=32,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    shared_mem_per_sm_bytes=48 * 1024,
    global_mem_bytes=3 * 1024**3,
    global_bandwidth_gbps=144.0,
    global_latency_cycles=400,
    min_transaction_bytes=32,
    cache_line_bytes=128,
    has_l1_l2=True,
    l1_bytes_per_sm=16 * 1024,
    l2_bytes=768 * 1024,
    texture_cache_bytes_per_sm=12 * 1024,
    pcie_bandwidth_gbps=5.2,
)

#: The paper's two boards, by short name.
DEVICES = {"C1060": TESLA_C1060, "C2050": TESLA_C2050}
