"""Fermi L1/L2 cache models.

Two models, used at different fidelities:

* :class:`SetAssociativeCache` — a real set-associative LRU cache fed with
  an address trace.  Unit tests drive it with the kernels' actual access
  patterns to justify the analytic model's regimes (wavefront reuse hits,
  streaming misses).
* :class:`CacheHierarchyModel` — the analytic hit-rate estimate the cost
  model uses for Swiss-Prot-scale sweeps, where simulating every address
  is out of the question.  Hit rate depends on the kernel's per-block
  working set versus its per-block share of L1 + L2, scaled by the reuse
  available in the access stream.  Figure 6 of the paper ("L1 and L2
  caches turned off") corresponds to ``enabled=False``.

The paper's finding this must reproduce: the *original* intra-task kernel
(huge global traffic, wavefront working set small enough to cache) gains a
lot from Fermi's caches, while the improved kernel (50x fewer transactions,
streaming boundary traffic) gains almost nothing — Section IV-A.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.cuda.device import DeviceSpec

__all__ = ["SetAssociativeCache", "CacheConfig", "CacheHierarchyModel"]


class SetAssociativeCache:
    """A set-associative LRU cache over a byte-address space."""

    def __init__(self, size_bytes: int, line_bytes: int, ways: int) -> None:
        if line_bytes <= 0 or size_bytes <= 0 or ways <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * ways):
            raise ValueError(
                "size must be a multiple of line_bytes * ways "
                f"(got {size_bytes} / {line_bytes} * {ways})"
            )
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        # One LRU-ordered dict of tags per set.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit.  Misses allocate."""
        if address < 0:
            raise ValueError("addresses must be non-negative")
        line = address // self.line_bytes
        set_idx = line % self.num_sets
        tag = line // self.num_sets
        s = self._sets[set_idx]
        if tag in s:
            s.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        s[tag] = None
        if len(s) > self.ways:
            s.popitem(last=False)  # evict LRU
        return False

    def access_range(self, start: int, nbytes: int) -> int:
        """Touch ``nbytes`` consecutive bytes; returns the number of line
        accesses that hit."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        first = start // self.line_bytes
        last = (start + nbytes - 1) // self.line_bytes
        return sum(self.access(line * self.line_bytes) for line in range(first, last + 1))

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class CacheConfig:
    """A kernel's cache-relevant traffic profile.

    Parameters
    ----------
    working_set_bytes:
        Bytes a block re-touches within its reuse window (e.g. the three
        live wavefronts of the original intra-task kernel).
    reuse_factor:
        Average number of times each working-set byte is touched before it
        leaves the window; the compulsory-miss floor is ``1/reuse_factor``.
    streaming:
        True when the traffic is touch-once (the improved kernel's strip
        boundary rows): no temporal locality, no cache benefit.
    """

    working_set_bytes: int
    reuse_factor: float
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.working_set_bytes < 0:
            raise ValueError("working_set_bytes must be non-negative")
        if self.reuse_factor < 1.0:
            raise ValueError("reuse_factor must be >= 1")


class CacheHierarchyModel:
    """Analytic L1+L2 hit-rate estimate for one kernel configuration."""

    def __init__(self, device: DeviceSpec, *, enabled: bool = True) -> None:
        self.device = device
        self.enabled = enabled

    def hit_rate(
        self,
        profile: CacheConfig | None,
        *,
        blocks_per_sm: int,
        concurrent_blocks: int,
    ) -> float:
        """Fraction of global *load* transactions served by L1/L2.

        Zero when the device has no caches (C1060), when caching is
        disabled (Figure 6), when no profile is given, or when the traffic
        is streaming.  Otherwise the reachable hit rate is the reuse limit
        ``1 - 1/reuse_factor`` scaled by how much of the working set the
        block's cache share covers.
        """
        if (
            not self.enabled
            or not self.device.has_l1_l2
            or profile is None
            or profile.streaming
            or profile.working_set_bytes == 0
        ):
            return 0.0
        if blocks_per_sm <= 0 or concurrent_blocks <= 0:
            raise ValueError("block concurrency must be positive")
        capacity = (
            self.device.l1_bytes_per_sm / blocks_per_sm
            + self.device.l2_bytes / concurrent_blocks
        )
        coverage = min(1.0, capacity / profile.working_set_bytes)
        reuse_limit = 1.0 - 1.0 / profile.reuse_factor
        return reuse_limit * coverage
