"""Symbol alphabets with fast vectorized encoding.

An :class:`Alphabet` maps between human-readable symbols (single characters)
and the dense ``uint8`` codes used throughout the library.  Encoding is
implemented with a 256-entry lookup table so that whole sequences encode with
a single numpy gather, which matters when loading databases with hundreds of
thousands of sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Alphabet", "AlphabetError", "PROTEIN", "DNA"]


class AlphabetError(ValueError):
    """Raised when a symbol or code is not part of an alphabet."""


@dataclass(frozen=True)
class Alphabet:
    """An ordered set of single-character symbols.

    Parameters
    ----------
    name:
        Human readable identifier, e.g. ``"protein"``.
    symbols:
        The symbols in code order; ``symbols[i]`` has code ``i``.
    wildcard:
        Optional symbol that unknown characters are mapped to when encoding
        with ``strict=False`` (``'X'`` for proteins, ``'N'`` for DNA).

    Notes
    -----
    Alphabets are immutable and hashable; two alphabets compare equal iff
    their name, symbols and wildcard match.
    """

    name: str
    symbols: str
    wildcard: str | None = None
    _lut: np.ndarray = field(init=False, repr=False, compare=False)
    _strict_lut: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.symbols)) != len(self.symbols):
            raise AlphabetError(f"duplicate symbols in alphabet {self.name!r}")
        if not self.symbols:
            raise AlphabetError("alphabet must contain at least one symbol")
        if self.wildcard is not None and self.wildcard not in self.symbols:
            raise AlphabetError(
                f"wildcard {self.wildcard!r} not in alphabet {self.name!r}"
            )
        # 255 marks "invalid"; the strict LUT keeps it so errors can be
        # detected after the gather, the lenient LUT redirects to the
        # wildcard code (if any).
        lut = np.full(256, 255, dtype=np.uint8)
        for code, sym in enumerate(self.symbols):
            lut[ord(sym)] = code
            lut[ord(sym.lower())] = code
        object.__setattr__(self, "_strict_lut", lut)
        lenient = lut.copy()
        if self.wildcard is not None:
            lenient[lenient == 255] = self.symbols.index(self.wildcard)
        object.__setattr__(self, "_lut", lenient)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return len(symbol) == 1 and self._strict_lut[ord(symbol)] != 255

    @property
    def size(self) -> int:
        """Number of symbols in the alphabet."""
        return len(self.symbols)

    @property
    def wildcard_code(self) -> int | None:
        """Code of the wildcard symbol, or ``None``."""
        if self.wildcard is None:
            return None
        return self.symbols.index(self.wildcard)

    def code_of(self, symbol: str) -> int:
        """Return the code of a single symbol (case-insensitive)."""
        if len(symbol) != 1:
            raise AlphabetError(f"expected a single character, got {symbol!r}")
        code = int(self._strict_lut[ord(symbol)])
        if code == 255:
            raise AlphabetError(f"symbol {symbol!r} not in alphabet {self.name!r}")
        return code

    def symbol_of(self, code: int) -> str:
        """Return the symbol for a code."""
        if not 0 <= code < len(self.symbols):
            raise AlphabetError(f"code {code} out of range for {self.name!r}")
        return self.symbols[code]

    # ------------------------------------------------------------------
    # Vectorized encoding / decoding
    # ------------------------------------------------------------------
    def encode(self, text: str, *, strict: bool = True) -> np.ndarray:
        """Encode a string into a ``uint8`` code array.

        Parameters
        ----------
        text:
            The sequence text.  Lower-case characters are accepted.
        strict:
            If true (default) unknown characters raise
            :class:`AlphabetError`; otherwise they are replaced by the
            wildcard symbol (which must exist).
        """
        raw = np.frombuffer(text.encode("ascii", errors="replace"), dtype=np.uint8)
        if strict:
            codes = self._strict_lut[raw]
            if np.any(codes == 255):
                bad = text[int(np.argmax(codes == 255))]
                raise AlphabetError(
                    f"symbol {bad!r} not in alphabet {self.name!r}"
                )
            return codes
        if self.wildcard is None:
            raise AlphabetError(
                f"alphabet {self.name!r} has no wildcard; cannot encode leniently"
            )
        return self._lut[raw]

    def decode(self, codes: np.ndarray) -> str:
        """Decode a ``uint8`` code array back into a string."""
        codes = np.asarray(codes)
        if codes.size and int(codes.max(initial=0)) >= len(self.symbols):
            raise AlphabetError(
                f"code {int(codes.max())} out of range for {self.name!r}"
            )
        table = np.frombuffer(self.symbols.encode("ascii"), dtype=np.uint8)
        return table[codes].tobytes().decode("ascii")

    def random_codes(
        self,
        length: int,
        rng: np.random.Generator,
        frequencies: np.ndarray | None = None,
    ) -> np.ndarray:
        """Draw a random encoded sequence.

        Parameters
        ----------
        length:
            Number of symbols to draw.
        rng:
            Source of randomness.
        frequencies:
            Optional per-symbol probabilities (length :attr:`size`); uniform
            when omitted.  They are normalized internally.
        """
        if frequencies is None:
            return rng.integers(0, len(self.symbols), size=length, dtype=np.uint8)
        freq = np.asarray(frequencies, dtype=np.float64)
        if freq.shape != (len(self.symbols),):
            raise AlphabetError(
                f"frequencies must have shape ({len(self.symbols)},), "
                f"got {freq.shape}"
            )
        if np.any(freq < 0) or freq.sum() <= 0:
            raise AlphabetError("frequencies must be non-negative and not all zero")
        freq = freq / freq.sum()
        return rng.choice(len(self.symbols), size=length, p=freq).astype(np.uint8)


#: The 20 standard amino acids, the ambiguity codes B (Asx), Z (Glx), the
#: unknown residue X and the translation stop ``*`` — the NCBI ordering used
#: by the BLOSUM/PAM matrix files.
PROTEIN = Alphabet("protein", "ARNDCQEGHILKMFPSTWYVBZX*", wildcard="X")

#: Nucleotides plus the unknown base N.
DNA = Alphabet("dna", "ACGTN", wildcard="N")
