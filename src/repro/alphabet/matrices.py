"""Substitution (similarity) matrices.

A :class:`SubstitutionMatrix` pairs an :class:`~repro.alphabet.alphabet.Alphabet`
with a dense integer score table indexed by encoded symbols, so the inner
loops of every aligner can score with a single numpy gather
(``matrix.scores[q_codes[:, None], d_codes[None, :]]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alphabet.alphabet import DNA, PROTEIN, Alphabet, AlphabetError

__all__ = [
    "SubstitutionMatrix",
    "BLOSUM62",
    "dna_matrix",
    "identity_matrix",
    "random_matrix",
]


@dataclass(frozen=True)
class SubstitutionMatrix:
    """An integer similarity matrix over an alphabet.

    Parameters
    ----------
    name:
        Identifier, e.g. ``"BLOSUM62"``.
    alphabet:
        The alphabet the matrix scores.
    scores:
        ``(size, size)`` integer array; ``scores[a, b]`` is the similarity
        of encoded symbols ``a`` and ``b``.  Stored as ``int32`` (DP tables
        use 32-bit arithmetic throughout the library).
    """

    name: str
    alphabet: Alphabet
    scores: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(np.asarray(self.scores, dtype=np.int32))
        n = self.alphabet.size
        if arr.shape != (n, n):
            raise AlphabetError(
                f"matrix {self.name!r}: expected shape ({n}, {n}), got {arr.shape}"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "scores", arr)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def score(self, a: str, b: str) -> int:
        """Similarity of two symbols given as characters."""
        return int(
            self.scores[self.alphabet.code_of(a), self.alphabet.code_of(b)]
        )

    def pair_scores(self, q_codes: np.ndarray, d_codes: np.ndarray) -> np.ndarray:
        """Full ``(len(q), len(d))`` score table for two encoded sequences."""
        return self.scores[np.asarray(q_codes)[:, None], np.asarray(d_codes)[None, :]]

    def row(self, code: int) -> np.ndarray:
        """Scores of symbol ``code`` against the whole alphabet."""
        return self.scores[code]

    # ------------------------------------------------------------------
    # Properties used by invariants and cost analysis
    # ------------------------------------------------------------------
    @property
    def max_score(self) -> int:
        """Largest entry (upper-bounds any per-column alignment gain)."""
        return int(self.scores.max())

    @property
    def min_score(self) -> int:
        return int(self.scores.min())

    @property
    def is_symmetric(self) -> bool:
        return bool(np.array_equal(self.scores, self.scores.T))

    def with_name(self, name: str) -> "SubstitutionMatrix":
        """Copy of this matrix under a different name."""
        return SubstitutionMatrix(name, self.alphabet, self.scores.copy())


def identity_matrix(
    alphabet: Alphabet, match: int = 1, mismatch: int = 0
) -> SubstitutionMatrix:
    """Diagonal ``match`` / off-diagonal ``mismatch`` matrix (LCS-style)."""
    n = alphabet.size
    scores = np.full((n, n), mismatch, dtype=np.int32)
    np.fill_diagonal(scores, match)
    return SubstitutionMatrix(
        f"identity({match},{mismatch})@{alphabet.name}", alphabet, scores
    )


def dna_matrix(match: int = 2, mismatch: int = -3) -> SubstitutionMatrix:
    """Simple nucleotide matrix (BLASTN-style defaults ``+2/-3``).

    ``N`` scores ``mismatch`` against everything including itself, matching
    the convention that an unknown base never rewards an alignment.
    """
    if match <= 0:
        raise ValueError(f"match score must be positive, got {match}")
    if mismatch >= 0:
        raise ValueError(f"mismatch score must be negative, got {mismatch}")
    n = DNA.size
    scores = np.full((n, n), mismatch, dtype=np.int32)
    np.fill_diagonal(scores, match)
    wc = DNA.wildcard_code
    scores[wc, :] = mismatch
    scores[:, wc] = mismatch
    return SubstitutionMatrix(f"dna({match},{mismatch})", DNA, scores)


def random_matrix(
    alphabet: Alphabet,
    rng: np.random.Generator,
    low: int = -4,
    high: int = 6,
    diagonal_bonus: int = 5,
) -> SubstitutionMatrix:
    """A random *symmetric* matrix with a positive-leaning diagonal.

    Used by property tests to check that aligners agree on arbitrary scoring
    schemes, not just BLOSUM62.  Entries are drawn uniformly from
    ``[low, high]``; the diagonal additionally receives ``diagonal_bonus`` and
    is clipped to at least 1 so self-alignment is always rewarding.
    """
    if low >= high:
        raise ValueError(f"need low < high, got [{low}, {high}]")
    n = alphabet.size
    raw = rng.integers(low, high + 1, size=(n, n))
    sym = np.tril(raw) + np.tril(raw, -1).T
    diag = np.maximum(np.diagonal(sym) + diagonal_bonus, 1)
    np.fill_diagonal(sym, diag)
    return SubstitutionMatrix(
        f"random@{alphabet.name}", alphabet, sym.astype(np.int32)
    )


def _load_blosum62() -> SubstitutionMatrix:
    # Imported lazily to avoid an import cycle (parser imports this module's
    # classes).
    from repro.alphabet.data_blosum import BLOSUM62_TEXT
    from repro.alphabet.parser import parse_ncbi_matrix

    matrix = parse_ncbi_matrix(BLOSUM62_TEXT, name="BLOSUM62", alphabet=PROTEIN)
    if not matrix.is_symmetric:  # pragma: no cover - embedded data guard
        raise AssertionError("embedded BLOSUM62 data is corrupt (asymmetric)")
    return matrix


#: The NCBI BLOSUM62 matrix over :data:`repro.alphabet.PROTEIN` — the default
#: scoring scheme of the CUDASW++ benchmarks reproduced here.
BLOSUM62 = _load_blosum62()
