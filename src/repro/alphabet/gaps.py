"""Affine gap penalty model.

The paper (eq. 1) writes the Smith-Waterman recurrences with a *gap open*
penalty ``rho`` charged when a gap is started from ``H`` and a *gap
extension* penalty ``sigma`` charged for each further gapped column::

    E[i][j] = max(E[i][j-1] - sigma, H[i][j-1] - rho)
    F[i][j] = max(F[i-1][j] - sigma, H[i-1][j] - rho)

so a gap of length ``k`` costs ``rho + (k - 1) * sigma``.

Many tools (SSEARCH, CUDASW++, SWPS3) instead quote penalties as
``open``/``extend`` where a gap of length ``k`` costs ``open + k * extend``;
that convention maps onto the paper's as ``rho = open + extend`` and
``sigma = extend``.  :meth:`GapPenalty.from_open_extend` performs the
conversion so both conventions are available without ambiguity.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GapPenalty"]


@dataclass(frozen=True)
class GapPenalty:
    """Affine gap penalties in the paper's convention.

    Parameters
    ----------
    rho:
        Cost of the first column of a gap (``H -> E/F`` transition).
    sigma:
        Cost of each additional gapped column (``E -> E`` / ``F -> F``).

    Both penalties are stored as positive magnitudes and *subtracted* in the
    recurrences.
    """

    rho: int
    sigma: int

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError(f"gap open penalty rho must be positive, got {self.rho}")
        if self.sigma <= 0:
            raise ValueError(
                f"gap extension penalty sigma must be positive, got {self.sigma}"
            )
        if self.sigma > self.rho:
            # A gap extension more expensive than opening a fresh gap makes
            # the affine decomposition meaningless (E/F would never extend).
            raise ValueError(
                f"sigma ({self.sigma}) must not exceed rho ({self.rho})"
            )

    @classmethod
    def from_open_extend(cls, open_: int, extend: int) -> "GapPenalty":
        """Build from the ``open + k * extend`` convention.

        A gap of length ``k`` costs ``open + k * extend``, i.e. the first
        gapped column costs ``open + extend``.
        """
        return cls(rho=open_ + extend, sigma=extend)

    @classmethod
    def cudasw_default(cls) -> "GapPenalty":
        """The CUDASW++ benchmark default: gap open 10, gap extend 2."""
        return cls.from_open_extend(10, 2)

    def gap_cost(self, length: int) -> int:
        """Total penalty of a gap of ``length`` columns (0 for length 0)."""
        if length < 0:
            raise ValueError(f"gap length must be non-negative, got {length}")
        if length == 0:
            return 0
        return self.rho + (length - 1) * self.sigma

    @property
    def open_extend(self) -> tuple[int, int]:
        """The equivalent ``(open, extend)`` pair of the other convention."""
        return (self.rho - self.sigma, self.sigma)
