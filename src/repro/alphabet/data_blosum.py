"""Embedded substitution matrix data.

Only BLOSUM62 — the CUDASW++ benchmark default — ships embedded, verbatim in
the NCBI text format (this environment is offline, and shipping scoring
constants we cannot re-verify against the canonical files would be worse
than not shipping them).  Any other NCBI-format matrix file (BLOSUM45..90,
PAM30..250, ...) can be loaded at runtime with
:func:`repro.alphabet.parser.load_ncbi_matrix`.
"""

#: The NCBI BLOSUM62 file (Henikoff & Henikoff 1992), 24-symbol protein
#: alphabet ``ARNDCQEGHILKMFPSTWYVBZX*``.
BLOSUM62_TEXT = """\
#  Matrix made by matblas from blosum62.iij
#  BLOSUM Clustered Scoring Matrix in 1/2 Bit Units
#  Blocks Database = /data/blocks_5.0/blocks.dat
#  Cluster Percentage: >= 62
#  Entropy =   0.6979, Expected =  -0.5209
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
"""
