"""Reader/writer for the NCBI substitution-matrix text format.

The format (as distributed with BLAST: ``BLOSUM62``, ``PAM250``, ...) is::

    # comment lines
       A  R  N  ...          <- header row: column symbols
    A  4 -1 -2  ...          <- one row per symbol: row symbol then scores

Rows and columns may appear in any order; the parser aligns them to the
target alphabet's code order.  Symbols present in the alphabet but missing
from the file raise; extra symbols in the file raise too (silently dropping
scores is how scoring bugs are born).
"""

from __future__ import annotations

import os

import numpy as np

from repro.alphabet.alphabet import PROTEIN, Alphabet, AlphabetError
from repro.alphabet.matrices import SubstitutionMatrix

__all__ = ["parse_ncbi_matrix", "format_ncbi_matrix", "load_ncbi_matrix"]


def parse_ncbi_matrix(
    text: str,
    *,
    name: str,
    alphabet: Alphabet = PROTEIN,
) -> SubstitutionMatrix:
    """Parse NCBI-format matrix text into a :class:`SubstitutionMatrix`.

    Parameters
    ----------
    text:
        The file contents.
    name:
        Name for the resulting matrix.
    alphabet:
        Target alphabet; every alphabet symbol must be covered by the file.
    """
    lines = [
        ln for ln in text.splitlines() if ln.strip() and not ln.lstrip().startswith("#")
    ]
    if not lines:
        raise AlphabetError(f"matrix {name!r}: no data lines found")

    col_symbols = lines[0].split()
    for sym in col_symbols:
        if len(sym) != 1:
            raise AlphabetError(
                f"matrix {name!r}: bad column header token {sym!r}"
            )
        if sym not in alphabet:
            raise AlphabetError(
                f"matrix {name!r}: column symbol {sym!r} not in alphabet "
                f"{alphabet.name!r}"
            )

    n = alphabet.size
    scores = np.zeros((n, n), dtype=np.int32)
    seen_rows: set[str] = set()
    for ln in lines[1:]:
        tokens = ln.split()
        row_sym = tokens[0]
        if len(row_sym) != 1 or row_sym not in alphabet:
            raise AlphabetError(
                f"matrix {name!r}: row symbol {row_sym!r} not in alphabet "
                f"{alphabet.name!r}"
            )
        if row_sym in seen_rows:
            raise AlphabetError(f"matrix {name!r}: duplicate row {row_sym!r}")
        seen_rows.add(row_sym)
        values = tokens[1:]
        if len(values) != len(col_symbols):
            raise AlphabetError(
                f"matrix {name!r}: row {row_sym!r} has {len(values)} values, "
                f"expected {len(col_symbols)}"
            )
        r = alphabet.code_of(row_sym)
        for col_sym, value in zip(col_symbols, values):
            try:
                scores[r, alphabet.code_of(col_sym)] = int(value)
            except ValueError as exc:
                raise AlphabetError(
                    f"matrix {name!r}: non-integer score {value!r} at "
                    f"({row_sym}, {col_sym})"
                ) from exc

    missing = set(alphabet.symbols) - seen_rows
    if missing:
        raise AlphabetError(
            f"matrix {name!r}: rows missing for symbols {sorted(missing)!r}"
        )
    missing_cols = set(alphabet.symbols) - set(col_symbols)
    if missing_cols:
        raise AlphabetError(
            f"matrix {name!r}: columns missing for symbols {sorted(missing_cols)!r}"
        )
    return SubstitutionMatrix(name, alphabet, scores)


def format_ncbi_matrix(matrix: SubstitutionMatrix) -> str:
    """Render a matrix back into NCBI text format (round-trips with the parser)."""
    alphabet = matrix.alphabet
    width = max(len(str(int(v))) for v in matrix.scores.ravel()) + 1
    out = [f"# {matrix.name}"]
    out.append(" " + "".join(f"{sym:>{width}}" for sym in alphabet.symbols))
    for r, sym in enumerate(alphabet.symbols):
        row = "".join(f"{int(v):>{width}}" for v in matrix.scores[r])
        out.append(f"{sym}{row}")
    return "\n".join(out) + "\n"


def load_ncbi_matrix(
    path: str | os.PathLike,
    *,
    name: str | None = None,
    alphabet: Alphabet = PROTEIN,
) -> SubstitutionMatrix:
    """Load an NCBI-format matrix file from disk."""
    with open(path, "r", encoding="ascii") as fh:
        text = fh.read()
    if name is None:
        name = os.path.splitext(os.path.basename(os.fspath(path)))[0]
    return parse_ncbi_matrix(text, name=name, alphabet=alphabet)
