"""Alphabets, substitution matrices and gap models.

This package provides the scoring substrate shared by every Smith-Waterman
implementation in the repository:

* :class:`~repro.alphabet.alphabet.Alphabet` — symbol sets with fast
  ``str`` <-> ``uint8`` encoding (protein and DNA alphabets are predefined).
* :class:`~repro.alphabet.matrices.SubstitutionMatrix` — integer similarity
  matrices indexed by encoded symbols.  BLOSUM62 is embedded; arbitrary
  matrices can be loaded from NCBI-format text via
  :func:`~repro.alphabet.parser.parse_ncbi_matrix`.
* :class:`~repro.alphabet.gaps.GapPenalty` — the affine gap model used by the
  paper's recurrences (gap of length ``k`` costs ``rho + (k - 1) * sigma``).
"""

from repro.alphabet.alphabet import (
    Alphabet,
    DNA,
    PROTEIN,
    AlphabetError,
)
from repro.alphabet.blosum_builder import build_blosum, cluster_sequences
from repro.alphabet.gaps import GapPenalty
from repro.alphabet.matrices import (
    BLOSUM62,
    SubstitutionMatrix,
    dna_matrix,
    identity_matrix,
    random_matrix,
)
from repro.alphabet.parser import (
    format_ncbi_matrix,
    load_ncbi_matrix,
    parse_ncbi_matrix,
)

__all__ = [
    "Alphabet",
    "AlphabetError",
    "DNA",
    "PROTEIN",
    "GapPenalty",
    "SubstitutionMatrix",
    "BLOSUM62",
    "build_blosum",
    "cluster_sequences",
    "dna_matrix",
    "identity_matrix",
    "random_matrix",
    "parse_ncbi_matrix",
    "format_ncbi_matrix",
    "load_ncbi_matrix",
]
