"""Build BLOSUM-style matrices from alignment blocks (Henikoff 1992).

Only BLOSUM62 ships embedded (``data_blosum``); this module implements the
*algorithm* that produced the family, so users can derive substitution
matrices from their own aligned sequence blocks:

1. cluster the sequences of each block at an identity threshold (the
   "62" in BLOSUM62 = 62%), weighting each cluster as one sequence;
2. count weighted residue pairs down every column;
3. convert pair frequencies to log-odds against the marginal
   frequencies, scaled in half-bits and rounded to integers.

The reproduction uses it for tests (a matrix rebuilt from blocks sampled
*under* BLOSUM62's implied target frequencies must come out close to
BLOSUM62) and to let the offline environment generate additional
matrices from data instead of shipping unverifiable constants.
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.alphabet.alphabet import PROTEIN, Alphabet
from repro.alphabet.matrices import SubstitutionMatrix

__all__ = ["cluster_sequences", "pair_frequencies", "build_blosum"]


def _identity(a: np.ndarray, b: np.ndarray) -> float:
    return float(np.mean(a == b))


def cluster_sequences(
    block: np.ndarray, threshold: float
) -> list[list[int]]:
    """Single-linkage clustering of a block's rows at an identity threshold.

    Parameters
    ----------
    block:
        ``(n_sequences, n_columns)`` encoded alignment block (no gaps —
        BLOSUM blocks are ungapped by construction).
    threshold:
        Cluster sequences whose identity is >= this fraction (0..1).
    """
    if block.ndim != 2 or block.shape[0] == 0:
        raise ValueError("block must be a non-empty 2-D array")
    if not 0 < threshold <= 1:
        raise ValueError("threshold must be in (0, 1]")
    n = block.shape[0]
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i in range(n):
        for j in range(i + 1, n):
            if _identity(block[i], block[j]) >= threshold:
                parent[find(i)] = find(j)

    clusters: dict[int, list[int]] = defaultdict(list)
    for i in range(n):
        clusters[find(i)].append(i)
    return list(clusters.values())


def pair_frequencies(
    blocks: list[np.ndarray],
    alphabet: Alphabet,
    threshold: float,
) -> np.ndarray:
    """Weighted pair counts over all columns of all blocks.

    Sequences within a cluster share one vote: each contributes
    ``1 / cluster_size``.  Returns a symmetric ``(size, size)`` matrix of
    pair weights (diagonal counts ordered pairs once).
    """
    size = alphabet.size
    counts = np.zeros((size, size), dtype=np.float64)
    for block in blocks:
        block = np.asarray(block, dtype=np.uint8)
        clusters = cluster_sequences(block, threshold)
        weights = np.empty(block.shape[0], dtype=np.float64)
        for members in clusters:
            for m in members:
                weights[m] = 1.0 / len(members)
        cluster_of = np.empty(block.shape[0], dtype=np.int64)
        for c, members in enumerate(clusters):
            for m in members:
                cluster_of[m] = c
        for col in range(block.shape[1]):
            residues = block[:, col]
            for i in range(block.shape[0]):
                for j in range(i + 1, block.shape[0]):
                    if cluster_of[i] == cluster_of[j]:
                        continue  # same cluster: one effective sequence
                    w = weights[i] * weights[j]
                    a, b = int(residues[i]), int(residues[j])
                    counts[a, b] += w
                    counts[b, a] += w
    return counts


def build_blosum(
    blocks: list[np.ndarray],
    *,
    threshold: float = 0.62,
    alphabet: Alphabet = PROTEIN,
    scale_half_bits: bool = True,
    pseudocount: float = 1e-9,
    name: str | None = None,
) -> SubstitutionMatrix:
    """Derive a BLOSUM-style log-odds matrix from alignment blocks.

    Symbols never observed in the blocks receive the matrix minimum
    against everything (they carry no information).
    """
    if not blocks:
        raise ValueError("need at least one alignment block")
    counts = pair_frequencies(blocks, alphabet, threshold)
    total = counts.sum()
    if total <= 0:
        raise ValueError("blocks produced no residue pairs")
    q = counts / total  # target pair frequencies
    marginal = q.sum(axis=1)
    observed = marginal > 0

    size = alphabet.size
    scores = np.zeros((size, size), dtype=np.float64)
    scale = 2.0 / math.log(2) if scale_half_bits else 1.0 / math.log(2)
    for a in range(size):
        for b in range(size):
            if not (observed[a] and observed[b]):
                continue
            expected = marginal[a] * marginal[b]
            if a != b:
                expected *= 2  # either ordering
                ratio = (q[a, b] + q[b, a] + pseudocount) / (expected + pseudocount)
            else:
                ratio = (q[a, a] + pseudocount) / (expected / 2 + pseudocount)
            scores[a, b] = scale * math.log(ratio)

    rounded = np.rint(scores).astype(np.int32)
    if observed.any():
        floor = int(rounded[np.ix_(observed, observed)].min())
    else:  # pragma: no cover - guarded above
        floor = 0
    for a in range(size):
        if not observed[a]:
            rounded[a, :] = floor
            rounded[:, a] = floor
    return SubstitutionMatrix(
        name or f"blosum{int(round(threshold * 100))}(custom)",
        alphabet,
        rounded,
    )
