"""Streaming FASTA reader and writer.

The reader is generator-based so databases larger than memory could in
principle be streamed; in this repository it mostly round-trips the
synthetic databases used by the examples and tests.
"""

from __future__ import annotations

import io
import os
import warnings
from typing import Iterable, Iterator, TextIO

from repro.alphabet import PROTEIN, Alphabet
from repro.sequence.sequence import Sequence

__all__ = ["read_fasta", "read_fasta_file", "write_fasta"]


def read_fasta(
    handle: TextIO | str,
    alphabet: Alphabet = PROTEIN,
    *,
    strict: bool = False,
) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from FASTA text.

    Parameters
    ----------
    handle:
        An open text file or a string containing FASTA data.
    alphabet:
        Alphabet used to encode residues.
    strict:
        Passed to :meth:`Alphabet.encode`.  The default is lenient because
        real databases contain rare non-standard residue codes (U, O, J)
        that map to the wildcard.

    Records with a header but no residues (``>id`` directly followed by
    another header or end of file — they occur in hand-edited and
    truncated databases) are *skipped* with a :class:`UserWarning`
    naming the record, instead of yielding a zero-length sequence that
    a downstream :meth:`Database.from_sequences` would reject with an
    unrelated "all sequence lengths must be positive" error.
    """
    if isinstance(handle, str):
        handle = io.StringIO(handle)

    header: str | None = None
    chunks: list[str] = []

    def flush() -> Sequence | None:
        text = "".join(chunks)
        assert header is not None
        parts = header.split(None, 1)
        seq_id = parts[0] if parts else ""
        description = parts[1] if len(parts) > 1 else ""
        if not text:
            warnings.warn(
                f"skipping FASTA record {seq_id or '<unnamed>'!r}: "
                "header with no sequence data",
                UserWarning,
                stacklevel=3,
            )
            return None
        return Sequence.from_text(
            seq_id, text, alphabet, description=description, strict=strict
        )

    for raw in handle:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                record = flush()
                if record is not None:
                    yield record
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA data does not start with a '>' header")
            chunks.append(line)
    if header is not None:
        record = flush()
        if record is not None:
            yield record


def read_fasta_file(
    path: str | os.PathLike,
    alphabet: Alphabet = PROTEIN,
    *,
    strict: bool = False,
) -> list[Sequence]:
    """Read a whole FASTA file into a list of sequences."""
    with open(path, "r", encoding="ascii") as fh:
        return list(read_fasta(fh, alphabet, strict=strict))


def write_fasta(
    sequences: Iterable[Sequence],
    handle: TextIO | str | os.PathLike,
    *,
    width: int = 60,
) -> None:
    """Write sequences in FASTA format.

    Parameters
    ----------
    sequences:
        Records to write.
    handle:
        Open text file or a path.
    width:
        Residues per line (must be positive).
    """
    if width <= 0:
        raise ValueError(f"line width must be positive, got {width}")

    own = False
    if isinstance(handle, (str, os.PathLike)):
        handle = open(handle, "w", encoding="ascii")
        own = True
    try:
        for seq in sequences:
            header = f">{seq.id}"
            if seq.description:
                header += f" {seq.description}"
            handle.write(header + "\n")
            text = seq.text
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")
    finally:
        if own:
            handle.close()
