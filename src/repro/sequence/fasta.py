"""Streaming FASTA reader and writer.

The reader is generator-based so databases larger than memory could in
principle be streamed; in this repository it mostly round-trips the
synthetic databases used by the examples and tests.

:func:`read_fasta_file` is hardened for real-world databases: gzip
compression is detected from the file's magic bytes (not the name) and
streamed transparently, and a non-ASCII byte — common in hand-curated
headers citing authors or organisms — decodes leniently as latin-1 with
a :class:`UserWarning` naming the record, instead of crashing the whole
scan with ``UnicodeDecodeError``.
"""

from __future__ import annotations

import gzip
import io
import os
import warnings
from typing import BinaryIO, Iterable, Iterator, TextIO, cast

from repro.alphabet import PROTEIN, Alphabet
from repro.sequence.sequence import Sequence

__all__ = [
    "iter_fasta_file",
    "read_fasta",
    "read_fasta_file",
    "write_fasta",
]

#: gzip's two magic bytes; sniffed so ``db.fasta`` that is *actually*
#: compressed (a common renaming accident) still streams correctly.
_GZIP_MAGIC = b"\x1f\x8b"


def read_fasta(
    handle: TextIO | Iterable[str] | str,
    alphabet: Alphabet = PROTEIN,
    *,
    strict: bool = False,
) -> Iterator[Sequence]:
    """Yield :class:`Sequence` records from FASTA text.

    Parameters
    ----------
    handle:
        An open text file, any iterable of lines, or a string
        containing FASTA data.
    alphabet:
        Alphabet used to encode residues.
    strict:
        Passed to :meth:`Alphabet.encode`.  The default is lenient because
        real databases contain rare non-standard residue codes (U, O, J)
        that map to the wildcard.

    Records with a header but no residues (``>id`` directly followed by
    another header or end of file — they occur in hand-edited and
    truncated databases) are *skipped* with a :class:`UserWarning`
    naming the record, instead of yielding a zero-length sequence that
    a downstream :meth:`Database.from_sequences` would reject with an
    unrelated "all sequence lengths must be positive" error.
    """
    lines: Iterable[str] = (
        io.StringIO(handle) if isinstance(handle, str) else handle
    )

    header: str | None = None
    chunks: list[str] = []

    def flush() -> Sequence | None:
        text = "".join(chunks)
        assert header is not None
        parts = header.split(None, 1)
        seq_id = parts[0] if parts else ""
        description = parts[1] if len(parts) > 1 else ""
        if not text:
            warnings.warn(
                f"skipping FASTA record {seq_id or '<unnamed>'!r}: "
                "header with no sequence data",
                UserWarning,
                stacklevel=3,
            )
            return None
        return Sequence.from_text(
            seq_id, text, alphabet, description=description, strict=strict
        )

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                record = flush()
                if record is not None:
                    yield record
            header = line[1:].strip()
            chunks = []
        else:
            if header is None:
                raise ValueError("FASTA data does not start with a '>' header")
            chunks.append(line)
    if header is not None:
        record = flush()
        if record is not None:
            yield record


def _open_binary(path: str | os.PathLike) -> BinaryIO:
    """Open ``path`` for binary reading, unwrapping gzip transparently.

    Compression is detected from the magic bytes, not the filename, so
    both ``db.fasta.gz`` and a compressed file without the suffix
    stream without a temporary decompressed copy.
    """
    fh = open(path, "rb")
    try:
        magic = fh.read(len(_GZIP_MAGIC))
        fh.seek(0)
    except BaseException:
        fh.close()
        raise
    if magic == _GZIP_MAGIC:
        return cast(BinaryIO, gzip.open(fh, "rb"))
    return fh


def _decode_lines(
    handle: Iterable[bytes], path: str | os.PathLike
) -> Iterator[str]:
    """Decode raw FASTA lines, tolerating non-ASCII bytes.

    Well-formed lines decode as ASCII.  A line with a byte outside
    ASCII — most often a curated header citing an author or organism —
    is decoded as latin-1 (every byte maps to a character, so nothing
    raises and nothing is dropped) with one :class:`UserWarning` per
    offending record naming it, instead of a ``UnicodeDecodeError``
    that kills a multi-hour scan at record three million.
    """
    record = "<before first record>"
    warned: set[str] = set()
    for raw in handle:
        try:
            line = raw.decode("ascii")
        except UnicodeDecodeError:
            line = raw.decode("latin-1")
            stripped = line.strip()
            name = (
                stripped[1:].split(None, 1)[0]
                if stripped.startswith(">") and len(stripped) > 1
                else record
            )
            if name not in warned:
                warned.add(name)
                warnings.warn(
                    f"non-ASCII bytes in FASTA record {name!r} of {path}; "
                    "decoded as latin-1",
                    UserWarning,
                    stacklevel=3,
                )
        stripped = line.strip()
        if stripped.startswith(">") and len(stripped) > 1:
            record = stripped[1:].split(None, 1)[0]
        yield line


def iter_fasta_file(
    path: str | os.PathLike,
    alphabet: Alphabet = PROTEIN,
    *,
    strict: bool = False,
) -> Iterator[Sequence]:
    """Stream :class:`Sequence` records from a FASTA file, one at a time.

    Unlike :func:`read_fasta_file` this never materializes the decoded
    file or the full record list: bytes stream through the gzip sniffer
    (:func:`_open_binary`) and the latin-1-hardened line decoder
    (:func:`_decode_lines`) record by record, so a multi-gigabyte
    database can be folded into an on-disk store
    (``repro db build``) with a peak working set of one record plus the
    consumer's accumulators — not the whole file.
    """
    with _open_binary(path) as fh:
        yield from read_fasta(_decode_lines(fh, path), alphabet,
                              strict=strict)


def read_fasta_file(
    path: str | os.PathLike,
    alphabet: Alphabet = PROTEIN,
    *,
    strict: bool = False,
) -> list[Sequence]:
    """Read a whole FASTA file into a list of sequences.

    Gzip-compressed files are detected by magic bytes and streamed
    transparently; non-ASCII header bytes decode leniently as latin-1
    with a warning naming the record (see :func:`_decode_lines`).
    Prefer :func:`iter_fasta_file` when the consumer can stream.
    """
    return list(iter_fasta_file(path, alphabet, strict=strict))


def write_fasta(
    sequences: Iterable[Sequence],
    handle: TextIO | str | os.PathLike,
    *,
    width: int = 60,
) -> None:
    """Write sequences in FASTA format.

    Parameters
    ----------
    sequences:
        Records to write.
    handle:
        Open text file or a path.
    width:
        Residues per line (must be positive).
    """
    if width <= 0:
        raise ValueError(f"line width must be positive, got {width}")

    own = False
    if isinstance(handle, (str, os.PathLike)):
        handle = open(handle, "w", encoding="ascii")
        own = True
    try:
        for seq in sequences:
            header = f">{seq.id}"
            if seq.description:
                header += f" {seq.description}"
            handle.write(header + "\n")
            text = seq.text
            for start in range(0, len(text), width):
                handle.write(text[start : start + width] + "\n")
    finally:
        if own:
            handle.close()
