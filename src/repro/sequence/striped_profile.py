"""Striped (Farrar) query profile with saturating 8/16-bit score tiers.

Farrar's layout cuts the query into ``seg_len`` *segment rows* of
``n_lanes`` positions each: query position ``q = k * seg_len + i``
lives in **lane** ``k`` at **row** ``i``, so one
(row, *) vector holds positions ``{i, seg_len + i, 2*seg_len + i, ...}``
— positions a full segment apart.  Stepping rows ``0..seg_len-1``
advances every lane by one query position per step, and the vertical
(query-direction) dependency between consecutive positions becomes a
dependency between *consecutive rows of the same lane*, plus a single
lane-to-lane wrap from row ``seg_len-1`` of lane ``k`` into row ``0`` of
lane ``k+1`` — the wrap the lazy-F loop corrects
(see :mod:`repro.engine.striped`).

The profile is pre-gathered per database symbol like
:class:`~repro.sequence.profile.QueryProfile`, but reshaped to
``(alphabet + 1, seg_len, n_lanes)`` so one ``np.take`` per database
column fetches the whole striped similarity block.  Two tiers are
built:

* ``profile8`` — ``uint8``, entries ``W + bias`` where
  ``bias = max(0, -W.min())`` keeps every byte non-negative (the SSW
  library's biased-byte trick).  Padded query positions and the pad
  sentinel symbol hold byte ``0`` — a true similarity of ``-bias <= 0``,
  which can only relay (never raise) a lane's running maximum.
* ``profile16`` — ``int16``, unbiased scores; pads hold
  ``min(0, W.min())``.

Each tier advertises a saturation cap (``cap8``/``cap16``): the largest
H value the sweep may carry such that one more profile addition provably
cannot wrap the dtype.  A lane whose clipped score reaches the cap is
re-run in the next tier (see ``score_packed_group_striped``).
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import SubstitutionMatrix
from repro.sequence.profile import QueryProfile

__all__ = ["StripedProfile", "DEFAULT_TARGET_LANES"]

#: Default lane-count target: the stand-in for the 64 int8 lanes of a
#: 512-bit SIMD register file (queries shorter than this get one
#: position per lane).
DEFAULT_TARGET_LANES = 64


class StripedProfile:
    """Striped two-tier query profile for the Farrar lane engine.

    Attributes
    ----------
    base:
        The plain :class:`~repro.sequence.profile.QueryProfile` (used by
        the exact int64 fallback tier).
    seg_len:
        Segment rows ``t`` — the stripe height.  Query position
        ``q = k * seg_len + i`` maps to ``[i, k]`` of each
        ``(seg_len, n_lanes)`` state block.
    n_lanes:
        Striped vector width ``V = ceil(m / seg_len)``.
    bias:
        ``max(0, -W.min())`` — added to every real ``profile8`` entry so
        the byte tier stores only non-negative similarities.
    cap8, cap16:
        Per-tier saturation caps; a swept lane score equal to the cap
        means the true score is >= the cap and the lane must be re-run
        in the next tier.
    tier8_supported, tier16_supported:
        Whether the matrix's score range leaves the tier any headroom
        (``cap8 >= 1``) / fits the dtype at all.
    """

    def __init__(
        self,
        query_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        *,
        target_lanes: int = DEFAULT_TARGET_LANES,
    ) -> None:
        if target_lanes < 1:
            raise ValueError(
                f"target_lanes must be >= 1, got {target_lanes}"
            )
        self.base = QueryProfile(query_codes, matrix)
        self.matrix = matrix
        self.query_codes = self.base.query_codes
        m = self.base.length
        self.length = m
        self.seg_len = max(1, -(-m // target_lanes))  # ceil(m / target)
        self.n_lanes = -(-m // self.seg_len)
        self.padded_length = self.seg_len * self.n_lanes

        wmin = int(matrix.scores.min())
        wmax = int(matrix.scores.max())
        self.bias = max(0, -wmin)
        #: Largest biased byte one profile fetch can add to a cell.
        pmax8 = self.bias + max(wmax, 0)
        self.cap8 = 255 - pmax8
        self.tier8_supported = self.cap8 >= 1
        self.cap16 = 32767 - max(wmax, 0)
        self.tier16_supported = (
            -32768 <= wmin and wmax <= 32767 and self.cap16 >= 1
        )

        size = matrix.alphabet.size
        nat = self.base.scores  # (size, m), [d, i] = W[q_i, d]
        self.profile8: np.ndarray | None = None
        if self.tier8_supported:
            flat8 = np.zeros((size + 1, self.padded_length), dtype=np.uint8)
            flat8[:size, :m] = (nat + self.bias).astype(np.uint8)
            self.profile8 = self._stripe(flat8)
        self.profile16: np.ndarray | None = None
        if self.tier16_supported:
            flat16 = np.full(
                (size + 1, self.padded_length), min(0, wmin), dtype=np.int16
            )
            flat16[:size, :m] = nat.astype(np.int16)
            self.profile16 = self._stripe(flat16)

    def _stripe(self, flat: np.ndarray) -> np.ndarray:
        """``(A+1, padded)`` natural order -> ``(A+1, seg_len, n_lanes)``
        striped order: ``out[c, i, k] = flat[c, k * seg_len + i]``."""
        striped = np.ascontiguousarray(
            flat.reshape(
                flat.shape[0], self.n_lanes, self.seg_len
            ).transpose(0, 2, 1)
        )
        striped.setflags(write=False)
        return striped
