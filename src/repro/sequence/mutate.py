"""Sequence evolution utilities: controlled homology for tests and demos.

Search experiments need pairs with *known* relationships — a homolog at a
target identity, sequences with planted motifs, indel-divergent copies.
These helpers generate them reproducibly.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import Alphabet
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES
from repro.sequence.sequence import Sequence

__all__ = ["point_mutate", "indel_mutate", "evolve", "plant_motif"]


def _background(alphabet: Alphabet) -> np.ndarray | None:
    return SWISSPROT_AA_FREQUENCIES if alphabet.name == "protein" else None


def point_mutate(
    seq: Sequence,
    rate: float,
    rng: np.random.Generator,
) -> Sequence:
    """Substitute a ``rate`` fraction of positions with random residues.

    Replacement residues are drawn from the background distribution and
    may coincide with the original (so the realized identity is slightly
    above ``1 - rate``).
    """
    if not 0 <= rate <= 1:
        raise ValueError(f"mutation rate must be in [0, 1], got {rate}")
    codes = seq.codes.copy()
    n_mut = int(round(len(seq) * rate))
    if n_mut:
        pos = rng.choice(len(seq), size=n_mut, replace=False)
        codes[pos] = seq.alphabet.random_codes(
            n_mut, rng, frequencies=_background(seq.alphabet)
        )
    return Sequence(f"{seq.id}(pm{rate:g})", codes, seq.alphabet)


def indel_mutate(
    seq: Sequence,
    rate: float,
    rng: np.random.Generator,
    *,
    mean_length: float = 2.0,
) -> Sequence:
    """Apply insertions and deletions at a per-position event ``rate``.

    Each event is a deletion or insertion (equal odds) whose length is
    geometric with the given mean; insertions draw background residues.
    """
    if not 0 <= rate <= 1:
        raise ValueError(f"indel rate must be in [0, 1], got {rate}")
    if mean_length < 1:
        raise ValueError("mean indel length must be >= 1")
    p_stop = 1.0 / mean_length
    out: list[np.ndarray] = []
    i = 0
    codes = seq.codes
    while i < codes.size:
        if rng.random() < rate:
            length = int(rng.geometric(p_stop))
            if rng.random() < 0.5:
                i += length  # deletion
                continue
            out.append(
                seq.alphabet.random_codes(
                    length, rng, frequencies=_background(seq.alphabet)
                )
            )
        out.append(codes[i : i + 1])
        i += 1
    if not out:
        out.append(
            seq.alphabet.random_codes(1, rng, frequencies=_background(seq.alphabet))
        )
    return Sequence(
        f"{seq.id}(indel{rate:g})", np.concatenate(out), seq.alphabet
    )


def evolve(
    seq: Sequence,
    rng: np.random.Generator,
    *,
    substitution_rate: float = 0.1,
    indel_rate: float = 0.01,
) -> Sequence:
    """A diverged copy: substitutions plus occasional indels."""
    return indel_mutate(
        point_mutate(seq, substitution_rate, rng), indel_rate, rng
    )


def plant_motif(
    motif: Sequence,
    total_length: int,
    rng: np.random.Generator,
    *,
    id: str | None = None,
) -> tuple[Sequence, int]:
    """Embed ``motif`` at a random position inside background sequence.

    Returns the sequence and the 0-based start offset of the motif.
    """
    if total_length < len(motif):
        raise ValueError(
            f"total length {total_length} shorter than the motif "
            f"({len(motif)})"
        )
    flank = total_length - len(motif)
    start = int(rng.integers(0, flank + 1))
    background = motif.alphabet.random_codes(
        flank, rng, frequencies=_background(motif.alphabet)
    )
    codes = np.concatenate(
        [background[:start], motif.codes, background[start:]]
    )
    return (
        Sequence(id or f"{motif.id}@host", codes, motif.alphabet),
        start,
    )
