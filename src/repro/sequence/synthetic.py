"""Synthetic databases with controlled length distributions.

The paper's experiments are driven entirely by the *distribution of sequence
lengths* (Figures 2, 3, 5, 6; Table II's "% over threshold" column), so real
databases are substituted by log-normal synthetic ones — the paper itself
notes that "the distribution of sequence lengths in a typical protein
database, such as Swissprot, resembles a log-normal distribution" and uses
log-normal databases for its own Figure 2.

Two parameterizations are provided:

* :func:`lognormal_lengths` — by arithmetic mean and standard deviation
  (Figure 2 sweeps the standard deviation between 100 and 2700);
* :class:`DatabaseProfile` — by median length and tail mass over the
  dispatch threshold, fitted with :func:`fit_lognormal_sigma`; the six
  profiles of the paper's Table II are predefined in
  :data:`PAPER_DATABASES`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.alphabet import PROTEIN, Alphabet
from repro.sequence.database import Database
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES
from repro.sequence.sequence import Sequence

__all__ = [
    "random_protein",
    "lognormal_lengths",
    "lognormal_database",
    "fit_lognormal_sigma",
    "DatabaseProfile",
    "PAPER_DATABASES",
    "SWISSPROT_PROFILE",
    "CUDASW_QUERY_LENGTHS",
]

#: Query-sequence lengths of the original CUDASW++ study (144..5478
#: residues), used for Figure 7 and Table II.
CUDASW_QUERY_LENGTHS = (
    144, 189, 222, 375, 464, 567, 657, 729, 850, 1000,
    1500, 2005, 2504, 3005, 3564, 4061, 4548, 4743, 5147, 5478,
)

_MIN_LENGTH = 10  # shorter "proteins" are not meaningful workloads


def random_protein(
    length: int,
    rng: np.random.Generator,
    *,
    id: str = "query",
    alphabet: Alphabet = PROTEIN,
) -> Sequence:
    """A random protein sequence drawn from Swiss-Prot residue frequencies."""
    freq = SWISSPROT_AA_FREQUENCIES if alphabet is PROTEIN else None
    return Sequence.random(id, length, rng, alphabet, frequencies=freq)


def _mean_std_to_mu_sigma(mean: float, std: float) -> tuple[float, float]:
    """Convert arithmetic mean/std of a log-normal to its (mu, sigma)."""
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if std <= 0:
        raise ValueError(f"std must be positive, got {std}")
    sigma2 = math.log1p((std / mean) ** 2)
    mu = math.log(mean) - sigma2 / 2.0
    return mu, math.sqrt(sigma2)


def lognormal_lengths(
    n: int,
    mean: float,
    std: float,
    rng: np.random.Generator,
    *,
    stratified: bool = False,
) -> np.ndarray:
    """Draw ``n`` log-normal sequence lengths with given arithmetic mean/std.

    Parameters
    ----------
    stratified:
        When true, lengths are taken at evenly spaced quantiles of the
        distribution (then shuffled) instead of sampled i.i.d.  This pins
        the empirical distribution to the target — in particular the tail
        fraction over a threshold — which keeps small-scale experiment runs
        reproducible and faithful.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    mu, sigma = _mean_std_to_mu_sigma(mean, std)
    if stratified:
        probs = (np.arange(n) + 0.5) / n
        raw = np.exp(mu + sigma * stats.norm.ppf(probs))
        rng.shuffle(raw)
    else:
        raw = rng.lognormal(mean=mu, sigma=sigma, size=n)
    return np.maximum(np.rint(raw).astype(np.int64), _MIN_LENGTH)


def _materialize(
    lengths: np.ndarray,
    rng: np.random.Generator,
    alphabet: Alphabet,
    name: str,
) -> Database:
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    freq = SWISSPROT_AA_FREQUENCIES if alphabet is PROTEIN else None
    codes = alphabet.random_codes(int(offsets[-1]), rng, frequencies=freq)
    return Database(lengths, codes, offsets, None, alphabet, name)


def lognormal_database(
    n: int,
    mean: float,
    std: float,
    rng: np.random.Generator,
    *,
    materialize: bool = True,
    stratified: bool = False,
    alphabet: Alphabet = PROTEIN,
    name: str | None = None,
) -> Database:
    """A synthetic database with log-normal lengths.

    ``materialize=False`` produces a lengths-only database for the analytic
    performance experiments.
    """
    lengths = lognormal_lengths(n, mean, std, rng, stratified=stratified)
    name = name or f"lognormal(n={n},mean={mean:g},std={std:g})"
    if not materialize:
        return Database.from_lengths(lengths, alphabet, name)
    return _materialize(lengths, rng, alphabet, name)


def fit_lognormal_sigma(median: float, threshold: int, frac_over: float) -> float:
    """Solve for the log-normal sigma hitting a tail constraint.

    Finds ``sigma`` such that a log-normal with median ``median`` satisfies
    ``P(L >= threshold) == frac_over``.
    """
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    if threshold <= median:
        raise ValueError(
            f"threshold ({threshold}) must exceed the median ({median})"
        )
    if not 0 < frac_over < 0.5:
        raise ValueError(f"frac_over must be in (0, 0.5), got {frac_over}")
    z = stats.norm.ppf(1.0 - frac_over)
    return float((math.log(threshold) - math.log(median)) / z)


@dataclass(frozen=True)
class DatabaseProfile:
    """A database described by count, median length and dispatch-tail mass.

    The six profiles in :data:`PAPER_DATABASES` substitute the real
    databases of the paper's Table II.  The paper reports the fraction of
    sequences over the default threshold (3072) per database; sequence
    counts and medians are representative values for the 2010-era releases
    (documented in DESIGN.md — only the tail fraction enters the results).

    Real protein databases have a heavier extreme tail than a fitted
    log-normal: Swiss-Prot's longest entries (titin and friends) run to
    ~35,000 residues.  ``heavy_fraction`` of all sequences are therefore
    drawn uniformly from ``heavy_range`` instead of the log-normal; they
    count toward ``frac_over_threshold`` (the log-normal component is
    fitted to the remaining tail mass), and they are what gives the
    intra-task kernel its realistic share of the residue workload.
    """

    name: str
    n_sequences: int
    median_length: float
    frac_over_threshold: float
    threshold: int = 3072
    heavy_fraction: float = 0.0
    heavy_range: tuple[int, int] = (8000, 35000)

    def __post_init__(self) -> None:
        if self.n_sequences <= 0:
            raise ValueError("n_sequences must be positive")
        if not 0 <= self.heavy_fraction < self.frac_over_threshold:
            if self.heavy_fraction != 0.0:
                raise ValueError(
                    "heavy_fraction must be a sub-share of frac_over_threshold"
                )
        if self.heavy_range[0] < self.threshold or (
            self.heavy_range[1] <= self.heavy_range[0]
        ):
            raise ValueError(
                "heavy_range must be an increasing range above the threshold"
            )
        # Validate the fit eagerly so broken profiles fail at construction.
        fit_lognormal_sigma(
            self.median_length, self.threshold, self._lognormal_tail_mass
        )

    @property
    def _lognormal_tail_mass(self) -> float:
        """Over-threshold mass carried by the log-normal component."""
        remaining = 1.0 - self.heavy_fraction
        return (self.frac_over_threshold - self.heavy_fraction) / remaining

    @property
    def mu(self) -> float:
        return math.log(self.median_length)

    @property
    def sigma(self) -> float:
        return fit_lognormal_sigma(
            self.median_length, self.threshold, self._lognormal_tail_mass
        )

    @property
    def mean_length(self) -> float:
        """Arithmetic mean of the fitted log-normal."""
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def expected_fraction_over(self, threshold: int) -> float:
        """Model tail mass ``P(L >= threshold)`` for an arbitrary threshold."""
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        z = (math.log(threshold) - self.mu) / self.sigma
        lognormal_part = float(stats.norm.sf(z)) * (1.0 - self.heavy_fraction)
        lo, hi = self.heavy_range
        if threshold <= lo:
            heavy_part = self.heavy_fraction
        elif threshold >= hi:
            heavy_part = 0.0
        else:
            heavy_part = self.heavy_fraction * (hi - threshold) / (hi - lo)
        return lognormal_part + heavy_part

    def sample_lengths(
        self,
        rng: np.random.Generator,
        *,
        scale: float = 1.0,
        stratified: bool = True,
    ) -> np.ndarray:
        """Draw lengths; ``scale`` shrinks the sequence count proportionally."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        n = max(int(round(self.n_sequences * scale)), 1)
        n_heavy = min(int(round(n * self.heavy_fraction)), n - 1)
        n_log = n - n_heavy
        lo, hi = self.heavy_range
        if stratified:
            probs = (np.arange(n_log) + 0.5) / n_log
            raw = np.exp(self.mu + self.sigma * stats.norm.ppf(probs))
            if n_heavy:
                heavy_probs = (np.arange(n_heavy) + 0.5) / n_heavy
                raw = np.concatenate([raw, lo + heavy_probs * (hi - lo)])
            rng.shuffle(raw)
        else:
            raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=n_log)
            if n_heavy:
                raw = np.concatenate(
                    [raw, rng.uniform(lo, hi, size=n_heavy)]
                )
                rng.shuffle(raw)
        return np.maximum(np.rint(raw).astype(np.int64), _MIN_LENGTH)

    def build(
        self,
        rng: np.random.Generator,
        *,
        scale: float = 1.0,
        materialize: bool = False,
        stratified: bool = True,
    ) -> Database:
        """Generate a database following this profile."""
        lengths = self.sample_lengths(rng, scale=scale, stratified=stratified)
        name = self.name if scale == 1.0 else f"{self.name}(x{scale:g})"
        if not materialize:
            return Database.from_lengths(lengths, PROTEIN, name)
        return _materialize(lengths, rng, PROTEIN, name)


#: Fitted stand-ins for the six databases of the paper's Table II.  The
#: "% over threshold" column reproduces the paper exactly; counts/medians
#: are representative of the 2010-era releases, and ~15% of the
#: over-threshold mass sits in the uniform heavy tail (titin-class
#: entries; see :class:`DatabaseProfile`).
PAPER_DATABASES = (
    DatabaseProfile("Ensembl Dog Proteins", 25_160, 340.0, 0.0053,
                    heavy_fraction=0.0008),
    DatabaseProfile("Ensembl Rat Proteins", 32_971, 348.0, 0.0035,
                    heavy_fraction=0.0005),
    DatabaseProfile("NCBI RefSeq Human Proteins", 38_556, 390.0, 0.0056,
                    heavy_fraction=0.0008),
    DatabaseProfile("NCBI RefSeq Mouse Proteins", 29_906, 382.0, 0.0054,
                    heavy_fraction=0.0008),
    DatabaseProfile("TAIR Arabidopsis Proteins", 35_386, 250.0, 0.0006,
                    heavy_fraction=0.0001),
    DatabaseProfile("UniProtKB/Swiss-Prot", 516_081, 270.0, 0.0012,
                    heavy_fraction=0.0002),
)

#: The Swiss-Prot stand-in (0.12% of sequences over the default threshold).
SWISSPROT_PROFILE = PAPER_DATABASES[-1]
