"""Query profiles — the Rognes/Seeberg vectorized similarity lookup.

A query profile re-indexes the substitution matrix by *database symbol* and
*query position*: ``profile[d, i] == W[q[i], d]``.  During the DP sweep over
a database sequence, the scores of a whole query chunk against the current
database symbol are then one contiguous fetch instead of ``m`` scattered
matrix lookups (Section II-A of the paper).

Two layouts are provided:

* :class:`QueryProfile` — one score per fetch (what the inter-task kernel
  conceptually uses per cell);
* :class:`PackedQueryProfile` — four consecutive query positions packed per
  fetch, mirroring CUDASW++'s ``char4``/texture packing.  This is the layout
  the improved intra-task kernel exploits: with tile height a multiple of 4,
  one texture read serves four cell updates (Section III-B: "reducing these
  memory operations by a factor of four").
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import SubstitutionMatrix

__all__ = ["QueryProfile", "PackedQueryProfile"]


class QueryProfile:
    """Per-position similarity table ``profile[d, i] = W[q[i], d]``."""

    def __init__(self, query_codes: np.ndarray, matrix: SubstitutionMatrix) -> None:
        query_codes = np.asarray(query_codes, dtype=np.uint8)
        if query_codes.ndim != 1 or query_codes.size == 0:
            raise ValueError("query must be a non-empty 1-D code array")
        if int(query_codes.max()) >= matrix.alphabet.size:
            raise ValueError("query codes out of range for the matrix alphabet")
        self.matrix = matrix
        self.query_codes = query_codes
        self.length = int(query_codes.size)
        # scores[d, i] = W[q[i], d]; row-contiguous per database symbol so a
        # fetch for symbol d streams the query dimension.
        self.scores = np.ascontiguousarray(matrix.scores[:, query_codes])
        self.scores.setflags(write=False)

    def column(self, d_code: int) -> np.ndarray:
        """All query-position scores against database symbol ``d_code``."""
        return self.scores[d_code]

    def score(self, i: int, d_code: int) -> int:
        """Score of query position ``i`` against database symbol ``d_code``."""
        return int(self.scores[d_code, i])


class PackedQueryProfile:
    """Query profile packed 4 query positions per fetch.

    Attributes
    ----------
    packed:
        ``(alphabet, n_packs, 4)`` score array; ``packed[d, p]`` is the
        vector of scores of query positions ``4p .. 4p+3`` against database
        symbol ``d``.  Positions past the query end are padded with
        ``pad_score`` (the matrix minimum, so accidental use of padding can
        never inflate an alignment score).
    """

    PACK = 4

    def __init__(self, query_codes: np.ndarray, matrix: SubstitutionMatrix) -> None:
        base = QueryProfile(query_codes, matrix)
        self.matrix = matrix
        self.query_codes = base.query_codes
        self.length = base.length
        self.pad_score = matrix.min_score
        self.n_packs = -(-self.length // self.PACK)  # ceil division
        padded_len = self.n_packs * self.PACK
        padded = np.full(
            (matrix.alphabet.size, padded_len), self.pad_score, dtype=np.int32
        )
        padded[:, : self.length] = base.scores
        self.packed = np.ascontiguousarray(
            padded.reshape(matrix.alphabet.size, self.n_packs, self.PACK)
        )
        self.packed.setflags(write=False)

    def fetch(self, d_code: int, pack_index: int) -> np.ndarray:
        """One texture fetch: 4 scores for query rows ``4*pack_index..+3``."""
        if not 0 <= pack_index < self.n_packs:
            raise IndexError(
                f"pack index {pack_index} out of range [0, {self.n_packs})"
            )
        return self.packed[d_code, pack_index]

    def fetches_per_column(self) -> int:
        """Texture fetches needed to score one database symbol against the
        whole query — ``ceil(m / 4)`` instead of ``m``."""
        return self.n_packs
