"""Database serialization.

Synthetic databases are cheap to regenerate, but experiment pipelines
want byte-identical workloads across runs and machines; FASTA round-trips
are slow and lose lengths-only databases entirely.  ``save_database`` /
``load_database`` store the columnar representation (lengths, codes,
offsets, ids, alphabet) in a single ``.npz``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.alphabet import DNA, PROTEIN, Alphabet
from repro.sequence.database import Database

__all__ = ["save_database", "load_database"]

_FORMAT_VERSION = 1
_ALPHABETS: dict[str, Alphabet] = {"protein": PROTEIN, "dna": DNA}


def save_database(db: Database, path: str | os.PathLike) -> None:
    """Write a database (materialized or lengths-only) to ``path``."""
    payload: dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION]),
        "name": np.array([db.name]),
        "alphabet": np.array([db.alphabet.name]),
        "lengths": db.lengths,
        "has_residues": np.array([db.has_residues]),
    }
    if db.has_residues:
        payload["codes"] = db._codes
        payload["offsets"] = db._offsets
    if db._ids is not None:
        payload["ids"] = np.array(db._ids)
    np.savez_compressed(os.fspath(path), **payload)


def load_database(path: str | os.PathLike) -> Database:
    """Load a database written by :func:`save_database`."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported database format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        alphabet_name = str(data["alphabet"][0])
        if alphabet_name not in _ALPHABETS:
            raise ValueError(f"unknown alphabet {alphabet_name!r}")
        alphabet = _ALPHABETS[alphabet_name]
        lengths = data["lengths"]
        codes = offsets = None
        if bool(data["has_residues"][0]):
            codes = data["codes"]
            offsets = data["offsets"]
        ids = [str(s) for s in data["ids"]] if "ids" in data else None
        return Database(
            lengths, codes, offsets, ids, alphabet, str(data["name"][0])
        )
