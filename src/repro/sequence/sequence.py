"""Encoded biological sequences."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.alphabet import PROTEIN, Alphabet

__all__ = ["Sequence"]


@dataclass(frozen=True)
class Sequence:
    """A named, encoded sequence.

    Residues are stored as ``uint8`` codes of ``alphabet``; the text form is
    reconstructed on demand.  Instances are immutable (the code array is
    marked read-only) so they can be shared freely between the kernels, the
    reference aligners and the baselines.

    Parameters
    ----------
    id:
        Short identifier (FASTA accession).
    codes:
        Encoded residues.
    alphabet:
        The alphabet ``codes`` refers to.
    description:
        Free-text description (rest of the FASTA header).
    """

    id: str
    codes: np.ndarray = field(repr=False)
    alphabet: Alphabet = PROTEIN
    description: str = ""

    def __post_init__(self) -> None:
        arr = np.ascontiguousarray(np.asarray(self.codes, dtype=np.uint8))
        if arr.ndim != 1:
            raise ValueError(f"sequence codes must be 1-D, got shape {arr.shape}")
        if arr.size and int(arr.max()) >= self.alphabet.size:
            raise ValueError(
                f"sequence {self.id!r}: code {int(arr.max())} out of range for "
                f"alphabet {self.alphabet.name!r}"
            )
        arr.setflags(write=False)
        object.__setattr__(self, "codes", arr)

    @classmethod
    def from_text(
        cls,
        id: str,
        text: str,
        alphabet: Alphabet = PROTEIN,
        *,
        description: str = "",
        strict: bool = True,
    ) -> "Sequence":
        """Build a sequence by encoding ``text``."""
        return cls(id, alphabet.encode(text, strict=strict), alphabet, description)

    @classmethod
    def random(
        cls,
        id: str,
        length: int,
        rng: np.random.Generator,
        alphabet: Alphabet = PROTEIN,
        frequencies: np.ndarray | None = None,
    ) -> "Sequence":
        """Draw a random sequence of ``length`` residues."""
        return cls(id, alphabet.random_codes(length, rng, frequencies), alphabet)

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def text(self) -> str:
        """The decoded residue string."""
        return self.alphabet.decode(self.codes)

    def __str__(self) -> str:
        return self.text

    def slice(self, start: int, stop: int) -> "Sequence":
        """Subsequence ``[start:stop)`` (shares no mutable state)."""
        return Sequence(
            f"{self.id}[{start}:{stop}]",
            self.codes[start:stop].copy(),
            self.alphabet,
            self.description,
        )

    def reversed(self) -> "Sequence":
        """The sequence with residue order reversed (used by Hirschberg)."""
        return Sequence(f"{self.id}(rev)", self.codes[::-1].copy(), self.alphabet)
