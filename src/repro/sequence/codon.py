"""Genetic-code translation and six-frame translated search (blastx-style).

Nucleotide data enters protein searches through translation: a DNA query
is translated in all six reading frames (three forward, three on the
reverse complement) and each frame is searched against the protein
database with the protein scoring system.  This module provides the
standard genetic code, translation, and a convenience searcher built on
the exact aligners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import BLOSUM62, DNA, PROTEIN, GapPenalty, SubstitutionMatrix
from repro.sequence.database import Database
from repro.sequence.sequence import Sequence

__all__ = [
    "GENETIC_CODE",
    "reverse_complement",
    "translate",
    "six_frame_translations",
    "translated_search",
    "FrameHit",
]

#: The standard genetic code, codon string -> amino acid (``*`` = stop).
GENETIC_CODE: dict[str, str] = {}
_BASES = "TCAG"
_AA = (
    "FFLLSSSSYY**CC*W"  # TTT..TGG
    "LLLLPPPPHHQQRRRR"  # CTT..CGG
    "IIIMTTTTNNKKSSRR"  # ATT..AGG
    "VVVVAAAADDEEGGGG"  # GTT..GGG
)
for _i, _b1 in enumerate(_BASES):
    for _j, _b2 in enumerate(_BASES):
        for _k, _b3 in enumerate(_BASES):
            GENETIC_CODE[_b1 + _b2 + _b3] = _AA[16 * _i + 4 * _j + _k]

_COMPLEMENT = {"A": "T", "T": "A", "C": "G", "G": "C", "N": "N"}


def reverse_complement(seq: Sequence) -> Sequence:
    """The reverse complement of a DNA sequence."""
    if seq.alphabet is not DNA:
        raise ValueError("reverse_complement expects a DNA sequence")
    text = "".join(_COMPLEMENT[c] for c in reversed(seq.text))
    return Sequence.from_text(f"{seq.id}(rc)", text, DNA)


def translate(seq: Sequence, frame: int = 0) -> Sequence:
    """Translate a DNA sequence in one forward frame (0, 1 or 2).

    Codons containing ``N`` translate to ``X``; stops become ``*`` (the
    protein alphabet carries both).  Trailing partial codons are dropped.
    """
    if seq.alphabet is not DNA:
        raise ValueError("translate expects a DNA sequence")
    if frame not in (0, 1, 2):
        raise ValueError(f"frame must be 0, 1 or 2, got {frame}")
    text = seq.text[frame:]
    n_codons = len(text) // 3
    residues = []
    for i in range(n_codons):
        codon = text[3 * i : 3 * i + 3]
        residues.append("X" if "N" in codon else GENETIC_CODE[codon])
    return Sequence.from_text(
        f"{seq.id}|frame+{frame + 1}", "".join(residues), PROTEIN
    )


def six_frame_translations(seq: Sequence) -> list[Sequence]:
    """All six reading frames (skipping frames too short to translate)."""
    frames = []
    rc = reverse_complement(seq)
    for frame in (0, 1, 2):
        for strand, label in ((seq, f"+{frame + 1}"), (rc, f"-{frame + 1}")):
            if len(strand) - frame >= 3:
                t = translate(strand, frame)
                frames.append(
                    Sequence(f"{seq.id}|frame{label}", t.codes, PROTEIN)
                )
    return frames


@dataclass(frozen=True)
class FrameHit:
    """Best hit of one database sequence across all query frames."""

    index: int
    id: str
    score: int
    frame: str

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("scores are non-negative")


def translated_search(
    dna_query: Sequence,
    protein_db: Database,
    *,
    matrix: SubstitutionMatrix = BLOSUM62,
    gaps: GapPenalty | None = None,
    top: int = 10,
) -> list[FrameHit]:
    """blastx-style search: six-frame-translate the DNA query, score every
    frame against every protein sequence exactly, report each database
    entry's best frame."""
    from repro.sw.antidiagonal import sw_score_antidiagonal

    if not protein_db.has_residues:
        raise ValueError("translated search needs a materialized database")
    if protein_db.alphabet is not PROTEIN:
        raise ValueError("the database must be a protein database")
    gaps = gaps or GapPenalty.cudasw_default()
    frames = [f for f in six_frame_translations(dna_query) if len(f) > 0]
    if not frames:
        raise ValueError("query too short to translate in any frame")

    best_scores = np.zeros(len(protein_db), dtype=np.int64)
    best_frames = [""] * len(protein_db)
    for frame in frames:
        for i in range(len(protein_db)):
            s = sw_score_antidiagonal(
                frame.codes, protein_db.codes_of(i), matrix, gaps
            )
            if s > best_scores[i]:
                best_scores[i] = s
                best_frames[i] = frame.id.rsplit("|", 1)[-1]

    order = np.lexsort((np.arange(len(protein_db)), -best_scores))[:top]
    return [
        FrameHit(
            index=int(i),
            id=protein_db.id_of(int(i)),
            score=int(best_scores[i]),
            frame=best_frames[int(i)],
        )
        for i in order
    ]
