"""Sequence database container and CUDASW++-style preprocessing.

A :class:`Database` stores sequences column-wise — one concatenated
``uint8`` code array plus an offsets array — which is both compact for
hundreds of thousands of entries and exactly the layout CUDASW++ copies to
the GPU.

Databases come in two flavours:

* **materialized** — residues present; required by anything that actually
  computes alignments (tests, examples, Table I);
* **lengths-only** — only sequence lengths; sufficient for the analytic
  performance experiments (the cost model depends on lengths, never on
  residue identity), which lets Figure 3/5/6/7 sweeps run over databases of
  Swiss-Prot scale without allocating hundreds of megabytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence as TySequence

import numpy as np

from repro.alphabet import PROTEIN, Alphabet
from repro.sequence.sequence import Sequence

__all__ = ["Database", "DatabaseStats", "SequenceGroup"]


@dataclass(frozen=True)
class DatabaseStats:
    """Length-distribution summary of a database."""

    count: int
    total_residues: int
    min_length: int
    max_length: int
    mean_length: float
    median_length: float
    std_length: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.count} sequences, {self.total_residues} residues, "
            f"lengths {self.min_length}..{self.max_length} "
            f"(mean {self.mean_length:.1f}, median {self.median_length:.0f}, "
            f"std {self.std_length:.1f})"
        )


@dataclass(frozen=True)
class SequenceGroup:
    """A contiguous group of (sorted) database sequences.

    The inter-task kernel processes one group per kernel launch, one thread
    per sequence; the launch runs for as long as its *longest* member
    (Section II-C of the paper), which is what `max_length` and
    `total_residues` exist to quantify.
    """

    indices: np.ndarray
    lengths: np.ndarray

    def __post_init__(self) -> None:
        if self.indices.shape != self.lengths.shape:
            raise ValueError("indices and lengths must have the same shape")
        if self.indices.size == 0:
            raise ValueError("a sequence group cannot be empty")

    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def max_length(self) -> int:
        return int(self.lengths.max())

    @property
    def total_residues(self) -> int:
        return int(self.lengths.sum())

    @property
    def load_balance_efficiency(self) -> float:
        """Useful work over occupied thread-time: ``sum(len) / (s * max_len)``.

        1.0 means perfectly uniform lengths; the paper's Figure 2 is this
        quantity degrading as length variance grows.
        """
        return self.total_residues / (self.size * self.max_length)


class Database:
    """An ordered collection of sequences over one alphabet."""

    def __init__(
        self,
        lengths: np.ndarray,
        codes: np.ndarray | None,
        offsets: np.ndarray | None,
        ids: list[str] | None,
        alphabet: Alphabet = PROTEIN,
        name: str = "database",
    ) -> None:
        self.name = name
        self.alphabet = alphabet
        self.lengths = np.ascontiguousarray(np.asarray(lengths, dtype=np.int64))
        if self.lengths.ndim != 1:
            raise ValueError("lengths must be 1-D")
        if self.lengths.size and int(self.lengths.min()) <= 0:
            raise ValueError("all sequence lengths must be positive")
        self.lengths.setflags(write=False)

        if (codes is None) != (offsets is None):
            raise ValueError("codes and offsets must be given together")
        self._codes = None
        self._offsets = None
        if codes is not None:
            codes = np.ascontiguousarray(np.asarray(codes, dtype=np.uint8))
            offsets = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
            if offsets.shape != (self.lengths.size + 1,):
                raise ValueError(
                    f"offsets must have shape ({self.lengths.size + 1},), "
                    f"got {offsets.shape}"
                )
            if not np.array_equal(np.diff(offsets), self.lengths):
                raise ValueError("offsets are inconsistent with lengths")
            if offsets[0] != 0 or offsets[-1] != codes.size:
                raise ValueError("offsets do not span the code array")
            codes.setflags(write=False)
            offsets.setflags(write=False)
            self._codes = codes
            self._offsets = offsets

        if ids is not None and len(ids) != self.lengths.size:
            raise ValueError(
                f"got {len(ids)} ids for {self.lengths.size} sequences"
            )
        self._ids = ids

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sequences(
        cls, sequences: TySequence[Sequence] | Iterable[Sequence], name: str = "database"
    ) -> "Database":
        """Materialized database from :class:`Sequence` records."""
        seqs = list(sequences)
        if not seqs:
            raise ValueError("cannot build a database from zero sequences")
        alphabet = seqs[0].alphabet
        for s in seqs:
            if s.alphabet != alphabet:
                raise ValueError(
                    f"mixed alphabets in database: {alphabet.name!r} vs "
                    f"{s.alphabet.name!r} ({s.id!r})"
                )
        lengths = np.array([len(s) for s in seqs], dtype=np.int64)
        offsets = np.zeros(len(seqs) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = np.empty(int(offsets[-1]), dtype=np.uint8)
        for i, s in enumerate(seqs):
            codes[offsets[i] : offsets[i + 1]] = s.codes
        ids = [s.id for s in seqs]
        return cls(lengths, codes, offsets, ids, alphabet, name)

    @classmethod
    def from_stream(
        cls,
        records: Iterable[Sequence],
        name: str = "database",
        *,
        chunk_residues: int = 1 << 22,
    ) -> "Database":
        """Materialized database from a *stream* of records.

        The streaming counterpart of :meth:`from_sequences`: records are
        consumed one at a time and their codes concatenated into bounded
        chunks (``chunk_residues`` residues apiece), so building from a
        generator — e.g. :func:`~repro.sequence.fasta.iter_fasta_file`
        over a multi-gigabyte file — never holds the record list, only
        the growing packed arrays.
        """
        ids: list[str] = []
        lengths: list[int] = []
        chunks: list[np.ndarray] = []
        pending: list[np.ndarray] = []
        pending_size = 0
        alphabet: Alphabet | None = None
        for seq in records:
            if alphabet is None:
                alphabet = seq.alphabet
            elif seq.alphabet != alphabet:
                raise ValueError(
                    f"mixed alphabets in database: {alphabet.name!r} vs "
                    f"{seq.alphabet.name!r} ({seq.id!r})"
                )
            ids.append(seq.id)
            lengths.append(len(seq))
            pending.append(seq.codes)
            pending_size += len(seq)
            if pending_size >= chunk_residues:
                chunks.append(np.concatenate(pending))
                pending = []
                pending_size = 0
        if alphabet is None:
            raise ValueError("cannot build a database from zero sequences")
        if pending:
            chunks.append(np.concatenate(pending))
        codes = (
            np.concatenate(chunks)
            if len(chunks) != 1
            else chunks[0]
        )
        lengths_arr = np.asarray(lengths, dtype=np.int64)
        offsets = np.zeros(lengths_arr.size + 1, dtype=np.int64)
        np.cumsum(lengths_arr, out=offsets[1:])
        return cls(lengths_arr, codes, offsets, ids, alphabet, name)

    @classmethod
    def from_lengths(
        cls,
        lengths: np.ndarray,
        alphabet: Alphabet = PROTEIN,
        name: str = "database",
    ) -> "Database":
        """Lengths-only database for analytic performance experiments."""
        return cls(np.asarray(lengths), None, None, None, alphabet, name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.lengths.size)

    @property
    def has_residues(self) -> bool:
        """True when residue codes are materialized."""
        return self._codes is not None

    @property
    def total_residues(self) -> int:
        return int(self.lengths.sum())

    def id_of(self, index: int) -> str:
        if self._ids is not None:
            return self._ids[index]
        return f"{self.name}/{index}"

    def codes_of(self, index: int) -> np.ndarray:
        """Residue codes of sequence ``index`` (zero-copy view)."""
        self._require_residues()
        lo = int(self._offsets[index])
        hi = int(self._offsets[index + 1])
        return self._codes[lo:hi]

    def __getitem__(self, index: int) -> Sequence:
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(index)
        return Sequence(
            self.id_of(index), self.codes_of(index).copy(), self.alphabet
        )

    def __iter__(self) -> Iterator[Sequence]:
        for i in range(len(self)):
            yield self[i]

    def _require_residues(self) -> None:
        if self._codes is None:
            raise ValueError(
                f"database {self.name!r} is lengths-only; residues are not "
                "materialized (build with from_sequences/synthetic "
                "materialize=True for functional use)"
            )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> DatabaseStats:
        """Length-distribution summary."""
        lens = self.lengths
        return DatabaseStats(
            count=int(lens.size),
            total_residues=int(lens.sum()),
            min_length=int(lens.min()),
            max_length=int(lens.max()),
            mean_length=float(lens.mean()),
            median_length=float(np.median(lens)),
            std_length=float(lens.std()),
        )

    def fraction_over(self, threshold: int) -> float:
        """Fraction of sequences with length >= ``threshold``.

        The paper's dispatch rule is "below the threshold -> inter-task,
        otherwise intra-task", so the intra-task share is ``len >= t``.
        """
        return float(np.count_nonzero(self.lengths >= threshold) / len(self))

    # ------------------------------------------------------------------
    # CUDASW++ preprocessing
    # ------------------------------------------------------------------
    def select(self, indices: np.ndarray, name: str | None = None) -> "Database":
        """Sub-database consisting of ``indices`` in the given order."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise ValueError("cannot select an empty database")
        lengths = self.lengths[indices]
        ids = [self.id_of(int(i)) for i in indices] if self._ids is not None else None
        codes = offsets = None
        if self._codes is not None:
            offsets = np.zeros(indices.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=offsets[1:])
            codes = np.empty(int(offsets[-1]), dtype=np.uint8)
            for out_i, src_i in enumerate(indices):
                codes[offsets[out_i] : offsets[out_i + 1]] = self.codes_of(int(src_i))
        return Database(
            lengths, codes, offsets, ids, self.alphabet, name or self.name
        )

    def sorted_by_length(self) -> "Database":
        """Stable ascending length sort (CUDASW++'s preprocessing step)."""
        order = np.argsort(self.lengths, kind="stable")
        return self.select(order, name=f"{self.name}(sorted)")

    def split_by_threshold(self, threshold: int) -> tuple["Database | None", "Database | None"]:
        """Partition into (inter-task part, intra-task part).

        Sequences with length < ``threshold`` go to the inter-task kernel,
        the rest to the intra-task kernel.  Either part may be ``None`` when
        empty.
        """
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        below = np.flatnonzero(self.lengths < threshold)
        above = np.flatnonzero(self.lengths >= threshold)
        below_db = (
            self.select(below, name=f"{self.name}(<{threshold})")
            if below.size
            else None
        )
        above_db = (
            self.select(above, name=f"{self.name}(>={threshold})")
            if above.size
            else None
        )
        return below_db, above_db

    def partition_groups(self, group_size: int) -> list[SequenceGroup]:
        """Cut the database into consecutive groups of ``group_size``.

        Must be called on a length-sorted database to reproduce CUDASW++'s
        grouping (the last group may be smaller).  Group indices refer to
        *this* database's ordering.
        """
        if group_size <= 0:
            raise ValueError(f"group size must be positive, got {group_size}")
        groups = []
        for start in range(0, len(self), group_size):
            stop = min(start + group_size, len(self))
            idx = np.arange(start, stop, dtype=np.int64)
            groups.append(SequenceGroup(idx, self.lengths[start:stop]))
        return groups
