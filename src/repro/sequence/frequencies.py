"""Amino-acid background frequencies.

Residues of synthetic databases are drawn from the Swiss-Prot amino-acid
composition (UniProtKB/Swiss-Prot release statistics, rounded to 0.01%)
rather than uniformly, so substitution-score statistics of the synthetic
workloads resemble real protein searches.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import PROTEIN

__all__ = ["SWISSPROT_AA_FREQUENCIES", "protein_frequencies"]

#: Swiss-Prot amino-acid composition, percent of residues.
_SWISSPROT_PERCENT = {
    "A": 8.25,
    "R": 5.53,
    "N": 4.06,
    "D": 5.45,
    "C": 1.37,
    "Q": 3.93,
    "E": 6.75,
    "G": 7.07,
    "H": 2.27,
    "I": 5.96,
    "L": 9.66,
    "K": 5.84,
    "M": 2.42,
    "F": 3.86,
    "P": 4.70,
    "S": 6.56,
    "T": 5.34,
    "W": 1.08,
    "Y": 2.92,
    "V": 6.87,
}


def protein_frequencies(percent: dict[str, float] | None = None) -> np.ndarray:
    """Build a frequency vector over :data:`repro.alphabet.PROTEIN`.

    Symbols absent from ``percent`` (the ambiguity codes B/Z/X/*) get
    probability zero; the vector is normalized to sum to 1.
    """
    table = _SWISSPROT_PERCENT if percent is None else percent
    freq = np.zeros(PROTEIN.size, dtype=np.float64)
    for sym, pct in table.items():
        if pct < 0:
            raise ValueError(f"negative frequency for {sym!r}")
        freq[PROTEIN.code_of(sym)] = pct
    total = freq.sum()
    if total <= 0:
        raise ValueError("frequencies sum to zero")
    return freq / total


#: Normalized Swiss-Prot composition over the 24-symbol protein alphabet.
SWISSPROT_AA_FREQUENCIES = protein_frequencies()
