"""Sequences, databases, FASTA I/O and synthetic workload generation.

This package is the data substrate of the reproduction:

* :class:`~repro.sequence.sequence.Sequence` — an encoded biological
  sequence with identifier and description.
* :class:`~repro.sequence.database.Database` — a compact columnar container
  (concatenated codes + offsets) with the preprocessing operations CUDASW++
  performs: length sorting, partitioning into inter-task groups, length
  statistics.
* :mod:`~repro.sequence.fasta` — streaming FASTA reader/writer.
* :mod:`~repro.sequence.synthetic` — log-normal database generators and the
  fitted profiles of the six databases used in the paper's Table II.
* :mod:`~repro.sequence.profile` — query profiles (the Rognes/Seeberg
  vectorized similarity lookup), plain and packed-4 texture layouts.
"""

from repro.sequence.database import Database, DatabaseStats, SequenceGroup
from repro.sequence.fasta import (
    iter_fasta_file,
    read_fasta,
    read_fasta_file,
    write_fasta,
)
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES, protein_frequencies
from repro.sequence.codon import (
    reverse_complement,
    six_frame_translations,
    translate,
    translated_search,
)
from repro.sequence.mutate import evolve, indel_mutate, plant_motif, point_mutate
from repro.sequence.serialize import load_database, save_database
from repro.sequence.profile import PackedQueryProfile, QueryProfile
from repro.sequence.striped_profile import DEFAULT_TARGET_LANES, StripedProfile
from repro.sequence.sequence import Sequence
from repro.sequence.synthetic import (
    PAPER_DATABASES,
    SWISSPROT_PROFILE,
    DatabaseProfile,
    fit_lognormal_sigma,
    lognormal_database,
    lognormal_lengths,
    random_protein,
)

__all__ = [
    "Sequence",
    "Database",
    "DatabaseStats",
    "SequenceGroup",
    "iter_fasta_file",
    "read_fasta",
    "read_fasta_file",
    "write_fasta",
    "QueryProfile",
    "PackedQueryProfile",
    "StripedProfile",
    "DEFAULT_TARGET_LANES",
    "SWISSPROT_AA_FREQUENCIES",
    "protein_frequencies",
    "DatabaseProfile",
    "PAPER_DATABASES",
    "SWISSPROT_PROFILE",
    "lognormal_database",
    "lognormal_lengths",
    "fit_lognormal_sigma",
    "random_protein",
    "point_mutate",
    "indel_mutate",
    "evolve",
    "plant_motif",
    "reverse_complement",
    "translate",
    "six_frame_translations",
    "translated_search",
    "save_database",
    "load_database",
]
