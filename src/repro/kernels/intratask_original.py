"""The original CUDASW++ intra-task kernel (Section II-B.2).

One thread block per pair.  The DP table is computed in plain anti-diagonal
wavefront order, one cell per thread per step; the three live wavefronts of
H plus the E and F wavefronts live in **global memory**, re-loaded and
re-stored every step.  That is the paper's diagnosed bottleneck: roughly
eight 4-byte global words per cell update, against near-zero for the
improved kernel.

Counting conventions (shared by the functional simulation and the
closed-form formulas; tests pin them to each other):

* a *chunk* is one synchronized step of ``threads_per_block`` threads over
  a stretch of the current diagonal (``ceil(L / T)`` chunks per diagonal of
  length ``L``);
* per cell: 5 global word loads (H at ``(i-1,j)``, ``(i,j-1)``,
  ``(i-1,j-1)``, E at ``(i,j-1)``, F at ``(i-1,j)``) and 3 word stores
  (H, E, F) — unit-stride across the wavefront, so a full chunk's access
  coalesces into ``ceil(active/8)`` 32-byte transactions per array access;
* 2 texture fetches per cell (query and database symbols);
* one barrier per chunk.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.cuda.cache import CacheConfig
from repro.cuda.cost import LaunchConfig, ceil_div
from repro.cuda.counts import KernelCounts
from repro.kernels.base import KernelRun, PairKernel
from repro.obs import current as obs_current
from repro.sw.utils import NEG_INF, validate_penalties

__all__ = ["OriginalIntraTaskKernel"]

#: ALU instructions per cell update (max/add chain plus wavefront index
#: arithmetic; the original kernel recomputes global addresses every step).
OPS_PER_CELL = 20

#: Global word traffic per cell (see module docstring).
LOAD_WORDS_PER_CELL = 5
STORE_WORDS_PER_CELL = 3

#: Texture fetches per cell (query + database symbol).
TEX_PER_CELL = 2

WORD_BYTES = 4
WORDS_PER_TRANSACTION = 8  # 32-byte segments


class OriginalIntraTaskKernel(PairKernel):
    """Functional + analytic model of the original intra-task kernel."""

    def __init__(self, threads_per_block: int = 256) -> None:
        if threads_per_block <= 0 or threads_per_block % 32:
            raise ValueError(
                f"threads_per_block must be a positive warp multiple, got "
                f"{threads_per_block}"
            )
        self.threads_per_block = threads_per_block
        self.name = f"intra_original(T={threads_per_block})"

    # ------------------------------------------------------------------
    # Shared chunk accounting
    # ------------------------------------------------------------------
    def _chunk_counts(self, diag_lengths: np.ndarray) -> KernelCounts:
        """Counts for processing diagonals of the given lengths."""
        T = self.threads_per_block
        L = np.asarray(diag_lengths, dtype=np.int64)
        cells = int(L.sum())
        full = L // T
        rem = L % T
        chunks = int(full.sum() + np.count_nonzero(rem))
        # Transactions: each of the 8 word accesses per cell coalesces
        # per chunk into ceil(active/8) segments.
        tx_units = int(
            (full * ceil_div(T, WORDS_PER_TRANSACTION)).sum()
            + np.ceil(rem / WORDS_PER_TRANSACTION).astype(np.int64).sum()
        )
        return KernelCounts(
            cells=cells,
            alu_ops=OPS_PER_CELL * chunks * T,
            global_load_transactions=LOAD_WORDS_PER_CELL * tx_units,
            global_store_transactions=STORE_WORDS_PER_CELL * tx_units,
            global_bytes_loaded=LOAD_WORDS_PER_CELL * WORD_BYTES * cells,
            global_bytes_stored=STORE_WORDS_PER_CELL * WORD_BYTES * cells,
            texture_fetches=TEX_PER_CELL * cells,
            syncs=chunks,
            wavefront_steps=chunks,
            dependent_global_steps=chunks,  # every step reloads wavefronts
            passes=1,
            idle_thread_steps=chunks * T - cells,
        )

    @staticmethod
    def _diag_lengths(m: int, n: int) -> np.ndarray:
        """Lengths of the anti-diagonals of an m x n table."""
        k = np.arange(2, m + n + 1, dtype=np.int64)
        return np.minimum.reduce([k - 1, np.full_like(k, m), np.full_like(k, n), m + n + 1 - k])

    # ------------------------------------------------------------------
    # Closed form
    # ------------------------------------------------------------------
    def pair_counts(self, m: int, n: int) -> KernelCounts:
        self._validate_lengths(m, n)
        return self._chunk_counts(self._diag_lengths(m, n))

    def bulk_pair_counts(self, m: int, lengths: np.ndarray) -> KernelCounts:
        """Exact aggregate of :meth:`pair_counts` over many lengths,
        fully vectorized (no per-diagonal arrays).

        The diagonals of an ``m x n`` table ramp 1..a-1, plateau at
        ``a = min(m, n)`` for ``b - a + 1`` diagonals, then ramp down, so
        per-pair sums reduce to two arithmetic prefix sums:

        * ``F_steps(L) = sum_{l=1..L} ceil(l/T)``
        * ``F_txu(L)  = sum_{l=1..L} [ (l//T)*ceil(T/8) + ceil((l%T)/8) ]``

        both of which have closed forms (block decomposition by ``l//T``).
        """
        if m <= 0:
            raise ValueError("query length must be positive")
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or int(lengths.min()) <= 0:
            raise ValueError("lengths must be positive and non-empty")
        T = self.threads_per_block
        W8 = ceil_div(T, WORDS_PER_TRANSACTION)

        def prefix_ceil(L, block):
            """sum_{l=1..L} ceil(l/block), elementwise over array L."""
            f = L // block
            r = L - f * block
            return block * f * (f + 1) // 2 + (f + 1) * r

        def prefix_floor(L, block):
            """sum_{l=1..L} (l//block)."""
            f = L // block
            r = L - f * block
            return block * (f - 1) * f // 2 + f * (r + 1)

        c_t = int(prefix_ceil(np.int64(T - 1), WORDS_PER_TRANSACTION))

        def prefix_txu(L):
            f = L // T
            r = L - f * T
            return (
                W8 * prefix_floor(L, T)
                + f * c_t
                + prefix_ceil(r, WORDS_PER_TRANSACTION)
            )

        a = np.minimum(m, lengths)
        b = np.maximum(m, lengths)
        plateau = b - a + 1
        steps = 2 * prefix_ceil(a - 1, T) + plateau * (-(-a // T))
        tx_units = 2 * prefix_txu(a - 1) + plateau * (
            (a // T) * W8 + -(-(a % T) // WORDS_PER_TRANSACTION)
        )
        cells = m * lengths

        total_cells = int(cells.sum())
        total_steps = int(steps.sum())
        total_txu = int(tx_units.sum())
        return KernelCounts(
            cells=total_cells,
            alu_ops=OPS_PER_CELL * total_steps * T,
            global_load_transactions=LOAD_WORDS_PER_CELL * total_txu,
            global_store_transactions=STORE_WORDS_PER_CELL * total_txu,
            global_bytes_loaded=LOAD_WORDS_PER_CELL * WORD_BYTES * total_cells,
            global_bytes_stored=STORE_WORDS_PER_CELL * WORD_BYTES * total_cells,
            texture_fetches=TEX_PER_CELL * total_cells,
            syncs=total_steps,
            wavefront_steps=total_steps,
            dependent_global_steps=total_steps,
            passes=int(lengths.size),
            idle_thread_steps=total_steps * T - total_cells,
        )

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def run_pair(
        self,
        q_codes: np.ndarray,
        d_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        gaps: GapPenalty,
    ) -> KernelRun:
        """Wavefront sweep computing the exact score, counting per chunk."""
        m, n = self._validate_pair(q_codes, d_codes)
        validate_penalties(gaps)
        q = np.asarray(q_codes, dtype=np.uint8)
        d = np.asarray(d_codes, dtype=np.uint8)
        rho, sigma = gaps.rho, gaps.sigma
        W = matrix.scores

        counts = KernelCounts(passes=1)
        T = self.threads_per_block

        h_prev2 = np.zeros(m + 1, dtype=np.int32)
        h_prev = np.zeros(m + 1, dtype=np.int32)
        e_prev = np.full(m + 1, NEG_INF, dtype=np.int32)
        f_prev = np.full(m + 1, NEG_INF, dtype=np.int32)
        best = 0

        for k in range(2, m + n + 1):
            lo = max(1, k - n)
            hi = min(m, k - 1)
            if lo > hi:
                continue
            L = hi - lo + 1

            # --- accounting: the block walks this diagonal in chunks ----
            full, rem = divmod(L, T)
            chunks = full + (1 if rem else 0)
            tx_units = full * ceil_div(T, WORDS_PER_TRANSACTION) + (
                ceil_div(rem, WORDS_PER_TRANSACTION) if rem else 0
            )
            counts.cells += L
            counts.alu_ops += OPS_PER_CELL * chunks * T
            counts.global_load_transactions += LOAD_WORDS_PER_CELL * tx_units
            counts.global_store_transactions += STORE_WORDS_PER_CELL * tx_units
            counts.global_bytes_loaded += LOAD_WORDS_PER_CELL * WORD_BYTES * L
            counts.global_bytes_stored += STORE_WORDS_PER_CELL * WORD_BYTES * L
            counts.texture_fetches += TEX_PER_CELL * L
            counts.syncs += chunks
            counts.wavefront_steps += chunks
            counts.dependent_global_steps += chunks
            counts.idle_thread_steps += chunks * T - L

            # --- the DP itself (identical math to the reference) --------
            i_range = slice(lo, hi + 1)
            i_minus1 = slice(lo - 1, hi)
            e_cur = np.maximum(e_prev[i_range] - sigma, h_prev[i_range] - rho)
            f_cur = np.maximum(f_prev[i_minus1] - sigma, h_prev[i_minus1] - rho)
            d_idx = (k - 1) - np.arange(lo, hi + 1, dtype=np.int64)
            subs = W[q[lo - 1 : hi], d[d_idx]]
            h_cur = np.maximum(np.maximum(e_cur, f_cur), h_prev2[i_minus1] + subs)
            np.maximum(h_cur, 0, out=h_cur)
            best = max(best, int(h_cur.max()))

            h_new = np.zeros(m + 1, dtype=np.int32)
            e_new = np.full(m + 1, NEG_INF, dtype=np.int32)
            f_new = np.full(m + 1, NEG_INF, dtype=np.int32)
            h_new[i_range] = h_cur
            e_new[i_range] = e_cur
            f_new[i_range] = f_cur
            h_prev2, h_prev, e_prev, f_prev = h_prev, h_new, e_new, f_new

        obs_current().count_kernel(self.name, counts)
        return KernelRun(score=best, counts=counts)

    # ------------------------------------------------------------------
    # Cost-model descriptors
    # ------------------------------------------------------------------
    def launch_config(self, grid_blocks: int) -> LaunchConfig:
        return LaunchConfig(
            grid_blocks=grid_blocks,
            threads_per_block=self.threads_per_block,
            registers_per_thread=25,
            shared_mem_per_block=256,  # scratch only; wavefronts are global
            step_memory="global",
        )

    def cache_profile(self, m: int, n: int) -> CacheConfig:
        """The live wavefronts: three H diagonals plus E and F, each up to
        ``min(m, n)`` words — re-touched ~3x before sliding out of the
        reuse window.  This is the working set Fermi's caches capture."""
        self._validate_lengths(m, n)
        ws = 5 * min(m, n) * WORD_BYTES
        return CacheConfig(working_set_bytes=ws, reuse_factor=3.0)
