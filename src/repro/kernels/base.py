"""Common kernel interface.

A :class:`PairKernel` aligns one query against one database sequence on the
device model.  It must provide both fidelity levels described in DESIGN.md:

* :meth:`PairKernel.run_pair` executes the kernel's actual traversal order
  (functional simulation), returning the exact local-alignment score *and*
  the :class:`~repro.cuda.counts.KernelCounts` it generated;
* :meth:`PairKernel.pair_counts` predicts the same counts from
  ``(m, n)`` alone — this is what the Swiss-Prot-scale experiments use,
  and tests pin it to ``run_pair``'s counts exactly.

Kernels also describe their execution configuration
(:meth:`launch_config`) and cache behaviour (:meth:`cache_profile`) so the
cost model can time them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.cuda.cache import CacheConfig
from repro.cuda.cost import LaunchConfig
from repro.cuda.counts import KernelCounts

__all__ = ["KernelRun", "PairKernel"]


@dataclass(frozen=True)
class KernelRun:
    """Result of functionally simulating a kernel on one pair."""

    score: int
    counts: KernelCounts

    def __post_init__(self) -> None:
        if self.score < 0:
            raise ValueError("Smith-Waterman scores are non-negative")


class PairKernel(abc.ABC):
    """A GPU kernel that scores one query/database-sequence pair."""

    #: Kernel identity used by the profiler and reports.
    name: str

    @abc.abstractmethod
    def run_pair(
        self,
        q_codes: np.ndarray,
        d_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        gaps: GapPenalty,
    ) -> KernelRun:
        """Functionally simulate the kernel on one pair."""

    @abc.abstractmethod
    def pair_counts(self, m: int, n: int) -> KernelCounts:
        """Closed-form prediction of :meth:`run_pair`'s counts."""

    def bulk_pair_counts(self, m: int, lengths: np.ndarray) -> KernelCounts:
        """Aggregate :meth:`pair_counts` over many database lengths.

        Kernels with per-pair loops in their closed form override this
        with a fully vectorized version (tests pin the two to each other).
        """
        total = KernelCounts()
        for n in np.asarray(lengths, dtype=np.int64):
            total += self.pair_counts(m, int(n))
        return total

    @abc.abstractmethod
    def launch_config(self, grid_blocks: int) -> LaunchConfig:
        """Execution configuration for a launch of ``grid_blocks`` pairs."""

    @abc.abstractmethod
    def cache_profile(self, m: int, n: int) -> CacheConfig | None:
        """Cache-traffic description for the cost model."""

    # Convenience -------------------------------------------------------
    @staticmethod
    def _validate_pair(q_codes: np.ndarray, d_codes: np.ndarray) -> tuple[int, int]:
        # Shape checks only — np.ndim/np.size accept any array-like
        # without materializing a converted (dtype-ambiguous) copy.
        if np.ndim(q_codes) != 1 or np.ndim(d_codes) != 1:
            raise ValueError("sequences must be 1-D code arrays")
        if np.size(q_codes) == 0 or np.size(d_codes) == 0:
            raise ValueError("cannot align empty sequences")
        return int(np.size(q_codes)), int(np.size(d_codes))

    @staticmethod
    def _validate_lengths(m: int, n: int) -> None:
        if m <= 0 or n <= 0:
            raise ValueError(f"sequence lengths must be positive, got ({m}, {n})")
