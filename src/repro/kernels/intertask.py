"""The CUDASW++ inter-task kernel (Section II-B.1).

One *thread* per query/database pair.  The thread tiles the DP table into
8x4 tiles, computed sequentially in row-major order (column-major inside a
tile); all intra-tile state lives in registers, the bottom row of each tile
row is staged through a global row buffer, and the rightmost column is
carried in registers to the next tile.  Similarity scores come from the
packed query profile in texture memory.

The kernel's group behaviour is the paper's load-balancing story
(Section II-C): one launch runs ``s`` independent threads, synchronized at
the launch boundary, so *the whole group runs as long as its longest
sequence*.  :meth:`InterTaskKernel.group_counts` charges ALU issue slots by
the group's maximum padded length while memory/texture traffic follows the
actual work — exactly the asymmetry that makes Figure 2's inter-task curve
collapse as length variance grows while the intra-task curve stays flat.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.cuda.cache import CacheConfig
from repro.cuda.cost import LaunchConfig, ceil_div
from repro.cuda.counts import KernelCounts
from repro.kernels.base import KernelRun, PairKernel
from repro.obs import current as obs_current
from repro.sw.utils import NEG_INF, validate_penalties

__all__ = ["InterTaskKernel"]

#: ALU instructions per cell update (fully register resident).
OPS_PER_CELL = 16
TILE_ROWS = 8
TILE_COLS = 4
#: Words exchanged with the global row buffer per tile (H and F of the
#: 4-column bottom row).
ROWBUF_WORDS_PER_TILE = 2 * TILE_COLS
#: Texture fetches per tile: 2 packed profile fetches per column (8 rows /
#: 4 per fetch) plus the 4 database symbols.
TEX_PER_TILE = 2 * TILE_COLS + TILE_COLS

WORD_BYTES = 4
WORDS_PER_TRANSACTION = 8  # 32-byte segments; row buffers are interleaved
# across threads, so warp accesses coalesce fully.


class InterTaskKernel(PairKernel):
    """Functional + analytic model of the inter-task kernel."""

    def __init__(self, threads_per_block: int = 256) -> None:
        if threads_per_block <= 0 or threads_per_block % 32:
            raise ValueError(
                "threads_per_block must be a positive warp multiple"
            )
        self.threads_per_block = threads_per_block
        self.name = "inter_task"

    # ------------------------------------------------------------------
    # Closed-form counts
    # ------------------------------------------------------------------
    @staticmethod
    def _tile_grid(m: int, n: int) -> tuple[int, int]:
        return ceil_div(m, TILE_ROWS), ceil_div(n, TILE_COLS)

    def pair_counts(self, m: int, n: int) -> KernelCounts:
        """Counts for one pair in isolation (its own issue slots)."""
        self._validate_lengths(m, n)
        tr, tc = self._tile_grid(m, n)
        tiles = tr * tc
        padded_cells = tiles * TILE_ROWS * TILE_COLS
        store_words = ROWBUF_WORDS_PER_TILE * tiles
        # The first tile row reads the zero boundary instead of the buffer.
        load_words = ROWBUF_WORDS_PER_TILE * (tiles - tc)
        return KernelCounts(
            cells=m * n,
            alu_ops=OPS_PER_CELL * padded_cells,
            global_load_transactions=ceil_div(load_words, WORDS_PER_TRANSACTION),
            global_store_transactions=ceil_div(store_words, WORDS_PER_TRANSACTION)
            + 1,  # final score
            global_bytes_loaded=load_words * WORD_BYTES,
            global_bytes_stored=(store_words + 1) * WORD_BYTES,
            texture_fetches=TEX_PER_TILE * tiles,
            idle_thread_steps=padded_cells - m * n,
        )

    def group_counts(self, m: int, lengths: np.ndarray) -> KernelCounts:
        """Counts for one launch over a group of database sequences.

        ALU issue slots are charged by the group's *longest* padded table
        for every thread ("even if all but one of the threads have finished
        ... they all must wait", Section II-C); memory and texture traffic
        follow each pair's actual tiles.  Vectorized so Swiss-Prot-scale
        groups cost one numpy pass.
        """
        if m <= 0:
            raise ValueError("query length must be positive")
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or int(lengths.min()) <= 0:
            raise ValueError("group lengths must be positive and non-empty")
        s = int(lengths.size)
        tr = ceil_div(m, TILE_ROWS)
        tc = -(-lengths // TILE_COLS)  # ceil per pair
        tiles = tr * tc
        store_words = ROWBUF_WORDS_PER_TILE * tiles
        load_words = ROWBUF_WORDS_PER_TILE * (tiles - tc)

        slot_cells = s * tr * TILE_ROWS * int(tc.max()) * TILE_COLS
        return KernelCounts(
            cells=int(m * lengths.sum()),
            alu_ops=OPS_PER_CELL * slot_cells,
            global_load_transactions=int(
                np.ceil(load_words / WORDS_PER_TRANSACTION).astype(np.int64).sum()
            ),
            global_store_transactions=int(
                np.ceil(store_words / WORDS_PER_TRANSACTION).astype(np.int64).sum()
            )
            + s,
            global_bytes_loaded=int(load_words.sum()) * WORD_BYTES,
            global_bytes_stored=(int(store_words.sum()) + s) * WORD_BYTES,
            texture_fetches=TEX_PER_TILE * int(tiles.sum()),
            idle_thread_steps=slot_cells - int(m * lengths.sum()),
        )

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def run_pair(
        self,
        q_codes: np.ndarray,
        d_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        gaps: GapPenalty,
    ) -> KernelRun:
        """Simulate the single-thread tiled traversal.

        Follows the kernel's exact order — tiles row-major, columns-major
        inside a tile — with the register carry column and the global row
        buffer, counting tiles structurally.  Intended for test-sized
        pairs (O(mn) Python-level work).
        """
        m, n = self._validate_pair(q_codes, d_codes)
        validate_penalties(gaps)
        q = np.asarray(q_codes, dtype=np.uint8)
        d = np.asarray(d_codes, dtype=np.uint8)
        rho, sigma = gaps.rho, gaps.sigma
        W = matrix.scores
        pad = int(matrix.min_score)
        neg = int(NEG_INF)

        tr_count, tc_count = self._tile_grid(m, n)
        tiles_done = 0
        load_words = 0
        store_words = 0
        best = 0

        # Global row buffer: H and F of the row above the current tile row.
        h_row = [0] * (n + 1)
        f_row = [neg] * (n + 1)

        for tr in range(tr_count):
            r_base = tr * TILE_ROWS
            carry_h = [0] * TILE_ROWS  # H(r, j-1), boundary column = 0
            carry_e = [neg] * TILE_ROWS
            h_row_new = [0] * (n + 1)
            f_row_new = [neg] * (n + 1)
            for tc in range(tc_count):
                tiles_done += 1
                store_words += ROWBUF_WORDS_PER_TILE
                if tr > 0:
                    load_words += ROWBUF_WORDS_PER_TILE
                for j in range(tc * TILE_COLS + 1, (tc + 1) * TILE_COLS + 1):
                    in_cols = j <= n
                    d_sym = int(d[j - 1]) if in_cols else -1
                    h_up = h_row[j] if in_cols else 0
                    f_up = f_row[j] if in_cols else neg
                    diag = h_row[j - 1] if in_cols else 0
                    for k in range(TILE_ROWS):
                        r = r_base + k
                        in_rows = r < m
                        sub = int(W[q[r], d_sym]) if (in_rows and in_cols) else pad
                        e = max(carry_e[k] - sigma, carry_h[k] - rho)
                        f = max(f_up - sigma, h_up - rho)
                        h = max(0, e, f, diag + sub)
                        if in_rows and in_cols and h > best:
                            best = h
                        diag = carry_h[k]  # H(r, j-1) is row r+1's diagonal
                        carry_h[k] = h
                        carry_e[k] = e
                        h_up = h
                        f_up = f
                    if in_cols:
                        h_row_new[j] = h_up
                        f_row_new[j] = f_up
            h_row, f_row = h_row_new, f_row_new

        padded_cells = tiles_done * TILE_ROWS * TILE_COLS
        counts = KernelCounts(
            cells=m * n,
            alu_ops=OPS_PER_CELL * padded_cells,
            global_load_transactions=ceil_div(load_words, WORDS_PER_TRANSACTION),
            global_store_transactions=ceil_div(store_words, WORDS_PER_TRANSACTION)
            + 1,
            global_bytes_loaded=load_words * WORD_BYTES,
            global_bytes_stored=(store_words + 1) * WORD_BYTES,
            texture_fetches=TEX_PER_TILE * tiles_done,
            idle_thread_steps=padded_cells - m * n,
        )
        obs_current().count_kernel(self.name, counts)
        return KernelRun(score=best, counts=counts)

    # ------------------------------------------------------------------
    # Cost-model descriptors
    # ------------------------------------------------------------------
    def launch_config(self, grid_blocks: int) -> LaunchConfig:
        return LaunchConfig(
            grid_blocks=grid_blocks,
            threads_per_block=self.threads_per_block,
            registers_per_thread=32,  # 8x4 tile state + carries
            shared_mem_per_block=0,
            step_memory="none",
        )

    def cache_profile(self, m: int, n: int) -> CacheConfig:
        """Row-buffer traffic returns a whole tile row (8 query rows)
        later; with 256 threads per block the combined buffers exceed any
        cache, so the traffic is effectively streaming."""
        self._validate_lengths(m, n)
        ws = self.threads_per_block * 2 * n * WORD_BYTES
        return CacheConfig(working_set_bytes=ws, reuse_factor=2.0, streaming=True)
