"""The improved kernel's incremental development ladder (Section III).

The paper presents the improved intra-task kernel as a sequence of
incremental changes:

* **v0** — first tiled implementation: register arrays shallow-swapped via
  pointers, tile loop not hand-unrolled, no query profile.  "Our first
  implementation of this approach did not show any improvements over the
  original intra-task kernel."
* **v1** — deep swap fixes the pointer aliasing; the texture fetch still
  blocks unrolling, so the arrays stay in local memory.
* **v2** — hand-unrolling the tile loop finally maps the arrays to
  registers ("about a two-fold performance increase when the registers
  were being utilized as intended").
* **v3** — the packed query profile cuts similarity fetches 4x
  (Section III-B); with the tuned strip height this is the final kernel.

``bench_ablation_variants.py`` sweeps this ladder and reports the modeled
GCUPs of each stage next to the original kernel.
"""

from __future__ import annotations

from repro.cuda.device import DeviceSpec, TESLA_C1060
from repro.kernels.intratask_improved import (
    ImprovedIntraTaskKernel,
    ImprovedKernelConfig,
    improved_kernel_source,
)

__all__ = ["VARIANT_LADDER", "variant_kernel", "improved_kernel_source"]

#: Name -> configuration of each development stage.
VARIANT_LADDER: dict[str, ImprovedKernelConfig] = {
    "v0-naive": ImprovedKernelConfig(
        use_query_profile=False, deep_swap=False, hand_unrolled=False
    ),
    "v1-deep-swap": ImprovedKernelConfig(
        use_query_profile=False, deep_swap=True, hand_unrolled=False
    ),
    "v2-hand-unroll": ImprovedKernelConfig(
        use_query_profile=False, deep_swap=True, hand_unrolled=True
    ),
    "v3-query-profile": ImprovedKernelConfig(
        use_query_profile=True, deep_swap=True, hand_unrolled=True
    ),
}


def variant_kernel(
    name: str, device: DeviceSpec = TESLA_C1060
) -> ImprovedIntraTaskKernel:
    """Build the improved kernel at one development stage."""
    if name not in VARIANT_LADDER:
        raise KeyError(
            f"unknown variant {name!r}; choose from {sorted(VARIANT_LADDER)}"
        )
    return ImprovedIntraTaskKernel(VARIANT_LADDER[name], device)
