"""The CUDASW++ kernels, implemented on the device model.

Three kernels, as in the paper:

* :class:`~repro.kernels.intertask.InterTaskKernel` — one *thread* per
  query/database pair, 8x4 tiles, packed query profile (Section II-B.1);
* :class:`~repro.kernels.intratask_original.OriginalIntraTaskKernel` — one
  *block* per pair, plain anti-diagonal wavefront with every wavefront in
  global memory (Section II-B.2) — the bottleneck the paper identifies;
* :class:`~repro.kernels.intratask_improved.ImprovedIntraTaskKernel` — the
  paper's contribution: strips of ``n_th x t_height`` rows, 4x1 tiles per
  thread, registers for horizontal and shared memory for vertical/diagonal
  dependencies, global memory only at strip boundaries (Section III), with
  the incremental variants v0..v3 and the Section VI future-work features.

Every kernel exposes the same dual interface (see
:class:`~repro.kernels.base.PairKernel`):

* ``run_pair`` — *functional simulation*: computes the real alignment
  score while counting memory transactions and steps;
* ``pair_counts`` — *closed-form prediction* of the same counts from
  lengths alone, used by the Swiss-Prot-scale performance experiments.

Tests assert ``run_pair`` and ``pair_counts`` agree exactly, and that every
kernel's score matches the scalar reference.
"""

from repro.kernels.base import KernelRun, PairKernel
from repro.kernels.intertask import InterTaskKernel
from repro.kernels.intratask_improved import (
    ImprovedKernelConfig,
    ImprovedIntraTaskKernel,
)
from repro.kernels.intratask_original import OriginalIntraTaskKernel
from repro.kernels.variants import (
    VARIANT_LADDER,
    improved_kernel_source,
    variant_kernel,
)

__all__ = [
    "ImprovedIntraTaskKernel",
    "ImprovedKernelConfig",
    "InterTaskKernel",
    "KernelRun",
    "OriginalIntraTaskKernel",
    "PairKernel",
    "VARIANT_LADDER",
    "improved_kernel_source",
    "variant_kernel",
]
