"""The paper's improved intra-task kernel (Section III).

One thread block per pair.  The table is cut into *strips* of
``n_th x t_height`` rows.  Within a strip each thread owns a
``t_height x 1`` tile column and sweeps it left to right in a wavefront of
tiles: at step ``s`` thread ``t`` computes column ``j = s - t`` of its
rows.  Dependencies:

* horizontal (same rows, previous column) — thread-private **registers**;
* vertical/diagonal (row above, owned by thread ``t-1``) — **shared
  memory**, published one step earlier;
* strip boundary (bottom row of the strip) — **global memory**, written by
  the last thread and read by thread 0 of the next strip.  This is the
  only per-column global traffic, which is the whole point: ~8 bytes per
  column per strip instead of ~32 bytes per *cell* in the original kernel.

Counting conventions (shared by the functional simulation and the
closed-form formulas; tests pin them to each other):

* per strip ``p``, ``u_p = ceil(rows_p / t_height)`` threads have real
  rows; issue slots are charged for ``a_p`` = ``u_p`` rounded up to a warp
  (SIMT predication turns fully-inactive warps off, but partially-active
  warps still issue);
* the tile wavefront takes ``n + u_p - 1`` synchronized steps per strip;
* shared/texture traffic is counted per *computed tile* (``u_p * n`` per
  strip); strip-boundary global traffic per column crossed.

The kernel models the paper's incremental development (Section III-A/B)
through :class:`ImprovedKernelConfig`: the shallow-swap and
texture-blocked-unroll pitfalls demote the register tiles to local (=
global) memory via :mod:`repro.cuda.compiler`, and disabling the packed
query profile both multiplies similarity fetches and turns them into
scalar global loads — exactly the v0..v3 ladder the ablation benchmark
sweeps.  The Section VI future-work features (coalesced boundary I/O,
shared-memory-only mode, persistent pipeline) are modeled too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.cuda.cache import CacheConfig
from repro.cuda.compiler import (
    CompiledKernel,
    KernelSource,
    Loop,
    RegisterArray,
    compile_kernel,
)
from repro.cuda.cost import LaunchConfig, ceil_div
from repro.cuda.counts import KernelCounts
from repro.cuda.device import TESLA_C1060, DeviceSpec
from repro.kernels.base import KernelRun, PairKernel
from repro.obs import current as obs_current
from repro.sw.utils import NEG_INF, validate_penalties

__all__ = ["ImprovedKernelConfig", "ImprovedIntraTaskKernel", "improved_kernel_source"]

#: ALU instructions per cell update with registers working as intended.
OPS_PER_CELL = 16
#: Extra per-cell instructions when the tile loop is not unrolled
#: (index arithmetic + loop control).
LOOP_OVERHEAD_OPS = 6
#: Extra per-cell instructions for scalar similarity lookup (no profile).
NO_PROFILE_OPS = 2
#: Without the query profile each cell's similarity score is a scalar
#: global-memory lookup (the problem Wozniak/Rognes identified and the
#: query profile exists to fix).
NO_PROFILE_LOOKUP_WORDS_PER_CELL = 1

#: Per-cell local-memory word traffic when the register tiles are demoted
#: (each cell reads its H/E entries and writes them back).
LOCAL_LOAD_WORDS_PER_CELL = 4
LOCAL_STORE_WORDS_PER_CELL = 2

WORD_BYTES = 4
WORDS_PER_TRANSACTION = 8  # 32-byte segments
WARP = 32
#: Boundary values exchanged per column at a strip boundary (H and F).
BOUNDARY_WORDS = 2
#: Fixed per-pair bookkeeping traffic: sequence pointers/lengths and the
#: result record (scattered single-thread accesses, one transaction each).
OVERHEAD_LOAD_WORDS = 16
OVERHEAD_STORE_WORDS = 6


@dataclass(frozen=True)
class ImprovedKernelConfig:
    """Tunables and development-stage switches of the improved kernel.

    The defaults are the paper's final kernel (v3, tuned): 256 threads,
    tile height 4, query profile on, both register pitfalls fixed.
    """

    threads_per_block: int = 256
    tile_height: int = 4
    use_query_profile: bool = True
    deep_swap: bool = True
    hand_unrolled: bool = True
    #: Section VI: stage boundary rows through shared memory and write them
    #: coalesced instead of one word at a time.
    coalesced_boundary: bool = False
    #: Section VI: keep boundary rows entirely in shared memory (only legal
    #: when they fit; see :meth:`ImprovedIntraTaskKernel.shared_only_fits`).
    shared_memory_only: bool = False
    #: Section VI: one pipeline fill/flush for the whole alignment instead
    #: of one per strip.
    persistent_pipeline: bool = False

    def __post_init__(self) -> None:
        if self.threads_per_block <= 0 or self.threads_per_block % WARP:
            raise ValueError("threads_per_block must be a positive warp multiple")
        if self.tile_height <= 0:
            raise ValueError("tile_height must be positive")
        if self.use_query_profile and self.tile_height % 4:
            raise ValueError(
                "the packed query profile requires a tile height that is a "
                "multiple of 4 (Section III-B)"
            )

    @property
    def strip_height(self) -> int:
        """Rows per strip: ``n_th * t_height`` (Section III)."""
        return self.threads_per_block * self.tile_height


def improved_kernel_source(config: ImprovedKernelConfig) -> KernelSource:
    """The kernel's resource description for the nvcc model.

    The per-thread tile state (H and E of the current column, one entry per
    tile row) is meant to live in registers.  A shallow pointer swap
    (``deep_swap=False``) or a non-unrolled tile loop containing a texture
    fetch (``hand_unrolled=False`` — the loop always fetches the database
    symbol or the profile through texture) each independently demote it to
    local memory — Section III-A.
    """
    return KernelSource(
        name="intra_improved",
        scalar_registers=18,
        arrays=(
            RegisterArray(
                "h_tile",
                config.tile_height,
                indexed_by="tile_rows",
                pointer_swapped=not config.deep_swap,
            ),
            RegisterArray(
                "e_tile",
                config.tile_height,
                indexed_by="tile_rows",
                pointer_swapped=not config.deep_swap,
            ),
        ),
        loops=(
            Loop(
                "tile_rows",
                config.tile_height,
                contains_texture_fetch=True,
                hand_unrolled=config.hand_unrolled,
            ),
        ),
    )


class ImprovedIntraTaskKernel(PairKernel):
    """Functional + analytic model of the improved intra-task kernel."""

    def __init__(
        self,
        config: ImprovedKernelConfig | None = None,
        device: DeviceSpec = TESLA_C1060,
    ) -> None:
        self.config = config or ImprovedKernelConfig()
        self.device = device
        self.compiled: CompiledKernel = compile_kernel(
            improved_kernel_source(self.config), device
        )
        c = self.config
        self.name = (
            f"intra_improved(T={c.threads_per_block},H={c.tile_height})"
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def passes(self, m: int) -> int:
        """Strips needed for an ``m``-row query (Section III: multiple
        passes when the query exceeds the strip)."""
        return ceil_div(m, self.config.strip_height)

    def strip_geometry(self, m: int) -> list[tuple[int, int]]:
        """Per strip: ``(u, a)`` — threads with real rows, and the same
        rounded up to a warp (issue granularity)."""
        cfg = self.config
        out = []
        for p in range(self.passes(m)):
            rows = min(cfg.strip_height, m - p * cfg.strip_height)
            u = ceil_div(rows, cfg.tile_height)
            a = min(ceil_div(u, WARP) * WARP, cfg.threads_per_block)
            out.append((u, a))
        return out

    def shared_only_fits(self, n: int, device: DeviceSpec | None = None) -> bool:
        """Whether the shared-memory-only mode can hold the boundary rows
        for an ``n``-column database sequence (Section VI: "sequence
        lengths less than 10,000")."""
        device = device or self.device
        need = self._base_shared_bytes() + BOUNDARY_WORDS * WORD_BYTES * n
        return need <= device.shared_mem_per_sm_bytes

    def _base_shared_bytes(self) -> int:
        # Per-thread published (H, F) pairs (double use) plus a staging
        # buffer for the database-sequence chunk.
        return self.config.threads_per_block * 4 * WORD_BYTES + 1024

    def _ops_per_cell(self) -> int:
        ops = OPS_PER_CELL
        if "tile_rows" not in self.compiled.unrolled_loops:
            ops += LOOP_OVERHEAD_OPS
        if not self.config.use_query_profile:
            ops += NO_PROFILE_OPS
        return ops

    def _tex_per_tile(self) -> int:
        th = self.config.tile_height
        if self.config.use_query_profile:
            # One packed fetch per 4 tile rows plus the database symbol.
            return th // 4 + 1
        # The database symbol only; similarity scores become global loads.
        return 1

    # ------------------------------------------------------------------
    # Closed-form counts
    # ------------------------------------------------------------------
    def pair_counts(self, m: int, n: int) -> KernelCounts:
        self._validate_lengths(m, n)
        cfg = self.config
        t_h = cfg.tile_height
        geometry = self.strip_geometry(m)
        P = len(geometry)

        steps = sum(n + u - 1 for u, _ in geometry)
        slot_cells = sum((n + u - 1) * a * t_h for u, a in geometry)
        active_tiles = sum(u * n for u, _ in geometry)
        active_cells = active_tiles * t_h
        dependent = (
            0
            if cfg.coalesced_boundary or cfg.shared_memory_only
            else sum(n + u - 1 for u, _ in geometry[1:])
        )

        counts = KernelCounts(
            cells=m * n,
            alu_ops=self._ops_per_cell() * slot_cells,
            shared_loads=2 * active_tiles,
            shared_stores=2 * active_tiles,
            texture_fetches=self._tex_per_tile() * active_tiles,
            syncs=steps,
            wavefront_steps=steps,
            dependent_global_steps=dependent,
            passes=1 if cfg.persistent_pipeline else P,
            idle_thread_steps=slot_cells - m * n,
        )
        self._add_memory_words(counts, self._memory_words(m, n, active_cells))
        return counts

    def _memory_words(self, m: int, n: int, active_cells: int) -> dict[str, int]:
        """Global word traffic of one pair, by category."""
        cfg = self.config
        P = self.passes(m)
        boundary = 0 if cfg.shared_memory_only else BOUNDARY_WORDS * n * (P - 1)
        local_loads = (
            LOCAL_LOAD_WORDS_PER_CELL * active_cells
            if self.compiled.uses_local_memory
            else 0
        )
        local_stores = (
            LOCAL_STORE_WORDS_PER_CELL * active_cells
            if self.compiled.uses_local_memory
            else 0
        )
        lookup = (
            0
            if cfg.use_query_profile
            else NO_PROFILE_LOOKUP_WORDS_PER_CELL * active_cells
        )
        return {
            "boundary_load_words": boundary,
            "boundary_store_words": boundary,
            "local_load_words": local_loads + lookup,
            "local_store_words": local_stores,
            "overhead_load_words": OVERHEAD_LOAD_WORDS,
            "overhead_store_words": OVERHEAD_STORE_WORDS,
        }

    def _add_memory_words(self, counts: KernelCounts, words: dict[str, int]) -> None:
        """Convert word traffic into transactions/bytes (shared by the
        closed form and the functional simulation so both agree exactly)."""
        cfg = self.config
        b_ld, b_st = words["boundary_load_words"], words["boundary_store_words"]
        l_ld, l_st = words["local_load_words"], words["local_store_words"]
        o_ld, o_st = words["overhead_load_words"], words["overhead_store_words"]

        if cfg.coalesced_boundary:
            # Staged through shared memory, written by full warps.
            ld_tx = ceil_div(b_ld, WORDS_PER_TRANSACTION) if b_ld else 0
            st_tx = ceil_div(b_st, WORDS_PER_TRANSACTION) if b_st else 0
            counts.shared_loads += b_ld + b_st  # staging traffic
            counts.shared_stores += b_ld + b_st
        else:
            # "The last thread ... must write out its values to global
            # memory one at a time" (Section VI): one transaction per word.
            ld_tx = b_ld
            st_tx = b_st
        # Local memory is interleaved per thread: warp accesses coalesce.
        ld_tx += ceil_div(l_ld, WORDS_PER_TRANSACTION) if l_ld else 0
        st_tx += ceil_div(l_st, WORDS_PER_TRANSACTION) if l_st else 0
        # Bookkeeping accesses are scattered: one transaction per word.
        ld_tx += o_ld
        st_tx += o_st

        counts.global_load_transactions += ld_tx
        counts.global_store_transactions += st_tx
        counts.global_bytes_loaded += (b_ld + l_ld + o_ld) * WORD_BYTES
        counts.global_bytes_stored += (b_st + l_st + o_st) * WORD_BYTES

    # ------------------------------------------------------------------
    # Functional simulation
    # ------------------------------------------------------------------
    def run_pair(
        self,
        q_codes: np.ndarray,
        d_codes: np.ndarray,
        matrix: SubstitutionMatrix,
        gaps: GapPenalty,
    ) -> KernelRun:
        """Simulate the strip/tile wavefront, vectorized across threads.

        Computes the exact Smith-Waterman score (verified against the
        scalar reference in tests) while structurally counting steps,
        tiles and boundary words as they happen.
        """
        m, n = self._validate_pair(q_codes, d_codes)
        validate_penalties(gaps)
        cfg = self.config
        n_th, t_h = cfg.threads_per_block, cfg.tile_height
        geometry = self.strip_geometry(m)
        P = len(geometry)
        rho, sigma = gaps.rho, gaps.sigma
        W = matrix.scores
        pad = matrix.min_score
        q = np.asarray(q_codes, dtype=np.uint8)
        d = np.asarray(d_codes, dtype=np.uint8)
        neg = np.int64(NEG_INF)

        # Structural counters filled during execution.
        steps_done = 0
        dependent_steps = 0
        slot_cells = 0
        tiles_done = 0
        boundary_store_words = 0
        boundary_load_words = 0

        best = 0

        # Strip-boundary rows in "global memory": H and F of the row just
        # above the current strip (row p*S - 1); zero / -inf for strip 0.
        g_h = np.zeros(n, dtype=np.int64)
        g_f = np.full(n, neg, dtype=np.int64)

        for p, (u, a) in enumerate(geometry):
            t_idx = np.arange(u, dtype=np.int64)
            r0 = p * cfg.strip_height + t_idx * t_h  # first row per thread
            h_left = np.zeros((u, t_h), dtype=np.int64)
            e_left = np.full((u, t_h), neg, dtype=np.int64)
            diag_reg = np.zeros(u, dtype=np.int64)  # H(r0-1, j-1)
            # Published (H, F) of each thread's bottom row, previous step.
            sh_h = np.zeros(u, dtype=np.int64)
            sh_f = np.full(u, neg, dtype=np.int64)

            next_g_h = np.zeros(n, dtype=np.int64)
            next_g_f = np.full(n, neg, dtype=np.int64)

            for s in range(n + u - 1):
                j = s - t_idx
                active = (j >= 0) & (j < n)
                steps_done += 1
                if p > 0 and not (
                    cfg.coalesced_boundary or cfg.shared_memory_only
                ):
                    dependent_steps += 1
                slot_cells += a * t_h
                n_active = int(np.count_nonzero(active))
                tiles_done += n_active
                if n_active == 0:  # pragma: no cover - cannot happen
                    continue
                jc = np.clip(j, 0, n - 1)

                # Row-above values for each thread's first tile row.
                top_h = np.empty(u, dtype=np.int64)
                top_f = np.empty(u, dtype=np.int64)
                top_h[1:] = sh_h[:-1]
                top_f[1:] = sh_f[:-1]
                if p == 0:
                    top_h[0] = 0
                    top_f[0] = neg
                else:
                    top_h[0] = g_h[jc[0]] if active[0] else 0
                    top_f[0] = g_f[jc[0]] if active[0] else neg
                    if active[0]:
                        boundary_load_words += BOUNDARY_WORDS

                h_above = top_h
                f_above = top_f
                diag = diag_reg
                d_sym = d[jc]
                for k in range(t_h):
                    r = r0 + k
                    valid_row = r < m
                    rq = np.clip(r, 0, m - 1)
                    sub = W[q[rq], d_sym].astype(np.int64)
                    sub = np.where(valid_row, sub, pad)

                    e = np.maximum(e_left[:, k] - sigma, h_left[:, k] - rho)
                    f = np.maximum(f_above - sigma, h_above - rho)
                    h = np.maximum(np.maximum(e, f), diag + sub)
                    np.maximum(h, 0, out=h)

                    scored = active & valid_row
                    if scored.any():
                        best = max(best, int(h[scored].max()))

                    # Register updates only where the thread is active.
                    old_h = h_left[:, k].copy()
                    h_left[:, k] = np.where(active, h, h_left[:, k])
                    e_left[:, k] = np.where(active, e, e_left[:, k])
                    diag = old_h  # H(r, j-1) feeds row r+1's diagonal
                    h_above = np.where(active, h, h_left[:, k])
                    f_above = np.where(active, f, neg)

                # Publish bottom-row (H, F) for thread t+1's next step.
                sh_h = np.where(active, h_above, sh_h)
                sh_f = np.where(active, f_above, sh_f)
                diag_reg = np.where(active, top_h, diag_reg)

                # Last thread stores the strip-boundary row (only full
                # strips have a successor, so thread u-1 == n_th-1 there).
                if p < P - 1 and active[u - 1]:
                    col = jc[u - 1]
                    next_g_h[col] = h_above[u - 1]
                    next_g_f[col] = f_above[u - 1]
                    boundary_store_words += BOUNDARY_WORDS

            g_h, g_f = next_g_h, next_g_f

        # Assemble counts from the structural counters.
        counts = KernelCounts(
            cells=m * n,
            alu_ops=self._ops_per_cell() * slot_cells,
            shared_loads=2 * tiles_done,
            shared_stores=2 * tiles_done,
            texture_fetches=self._tex_per_tile() * tiles_done,
            syncs=steps_done,
            wavefront_steps=steps_done,
            dependent_global_steps=dependent_steps,
            passes=1 if cfg.persistent_pipeline else P,
            idle_thread_steps=slot_cells - m * n,
        )
        active_cells = tiles_done * t_h
        words = {
            "boundary_load_words": 0 if cfg.shared_memory_only else boundary_load_words,
            "boundary_store_words": 0 if cfg.shared_memory_only else boundary_store_words,
            "local_load_words": (
                LOCAL_LOAD_WORDS_PER_CELL * active_cells
                if self.compiled.uses_local_memory
                else 0
            )
            + (
                0
                if self.config.use_query_profile
                else NO_PROFILE_LOOKUP_WORDS_PER_CELL * active_cells
            ),
            "local_store_words": (
                LOCAL_STORE_WORDS_PER_CELL * active_cells
                if self.compiled.uses_local_memory
                else 0
            ),
            "overhead_load_words": OVERHEAD_LOAD_WORDS,
            "overhead_store_words": OVERHEAD_STORE_WORDS,
        }
        self._add_memory_words(counts, words)
        obs_current().count_kernel(self.name, counts)
        return KernelRun(score=best, counts=counts)

    # ------------------------------------------------------------------
    # Cost-model descriptors
    # ------------------------------------------------------------------
    def launch_config(self, grid_blocks: int, max_n: int | None = None) -> LaunchConfig:
        shared = self._base_shared_bytes()
        if self.config.shared_memory_only:
            if max_n is None:
                raise ValueError(
                    "shared_memory_only launches need max_n to size the "
                    "boundary buffer"
                )
            shared += BOUNDARY_WORDS * WORD_BYTES * max_n
        return LaunchConfig(
            grid_blocks=grid_blocks,
            threads_per_block=self.config.threads_per_block,
            registers_per_thread=min(
                self.compiled.registers_per_thread,
                self.device.max_registers_per_thread,
            ),
            shared_mem_per_block=shared,
            step_memory="shared",
        )

    def cache_profile(self, m: int, n: int) -> CacheConfig:
        self._validate_lengths(m, n)
        if self.compiled.uses_local_memory:
            # Demoted tile state is hot: every cell re-touches it.
            ws = (
                self.config.threads_per_block
                * (LOCAL_LOAD_WORDS_PER_CELL + LOCAL_STORE_WORDS_PER_CELL)
                * WORD_BYTES
            )
            return CacheConfig(working_set_bytes=ws, reuse_factor=4.0)
        # Boundary rows are written once and read once a whole strip later:
        # no reuse the caches can capture (Section IV-A's explanation of why
        # the improved kernel gains little from Fermi).
        ws = BOUNDARY_WORDS * n * WORD_BYTES
        return CacheConfig(working_set_bytes=ws, reuse_factor=1.0, streaming=True)
