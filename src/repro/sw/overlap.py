"""Overlap (dovetail) alignment.

The fourth classical alignment mode, completing the family: gaps are free
at *all four* sequence ends, but the alignment must still cross the table
from one sequence's prefix to the other's suffix — the scoring used for
read overlap detection in assembly.  Affine gaps, score-only (O(min)
memory) plus a full-table variant returning the witness.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.alignment import GAP, Alignment
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = ["overlap_score", "overlap_align"]


def _tables(q, d, matrix, gaps):
    m, n = q.size, d.size
    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores
    H = np.zeros((m + 1, n + 1), dtype=np.int32)  # free leading gaps
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    for i in range(1, m + 1):
        qi = q[i - 1]
        for j in range(1, n + 1):
            e = max(E[i, j - 1] - sigma, H[i, j - 1] - rho)
            f = max(F[i - 1, j] - sigma, H[i - 1, j] - rho)
            h = max(e, f, H[i - 1, j - 1] + W[qi, d[j - 1]])
            E[i, j] = e
            F[i, j] = f
            H[i, j] = h
    return H, E, F


def overlap_score(
    query, database, matrix: SubstitutionMatrix, gaps: GapPenalty
) -> int:
    """Best overlap score: maximum of H over the last row and column
    (free trailing gaps on both sequences)."""
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    H, _, _ = _tables(q, d, matrix, gaps)
    return int(max(H[q.size].max(), H[:, d.size].max()))


def overlap_align(
    query, database, matrix: SubstitutionMatrix, gaps: GapPenalty
) -> Alignment:
    """Overlap alignment with traceback.

    The witness spans a suffix of one sequence and a prefix of the other
    (or is contained entirely within one of them); the free end gaps do
    not appear in the gapped strings.
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    H, E, F = _tables(q, d, matrix, gaps)
    alphabet = matrix.alphabet
    m, n = q.size, d.size

    # End cell: best of last row / last column.
    j_best = int(np.argmax(H[m]))
    i_best = int(np.argmax(H[:, n]))
    if H[m, j_best] >= H[i_best, n]:
        i, j = m, j_best
    else:
        i, j = i_best, n
    score = int(H[i, j])
    end_i, end_j = i, j

    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores
    q_chars: list[str] = []
    d_chars: list[str] = []
    state = "M"
    while i > 0 and j > 0:
        if state == "M":
            if int(H[i, j]) == int(H[i - 1, j - 1]) + int(W[q[i - 1], d[j - 1]]):
                q_chars.append(alphabet.symbol_of(int(q[i - 1])))
                d_chars.append(alphabet.symbol_of(int(d[j - 1])))
                i -= 1
                j -= 1
            elif int(H[i, j]) == int(E[i, j]):
                state = "E"
            elif int(H[i, j]) == int(F[i, j]):
                state = "F"
            else:  # pragma: no cover - interior cells always have a move
                raise AssertionError(f"broken overlap traceback at ({i}, {j})")
        elif state == "E":
            q_chars.append(GAP)
            d_chars.append(alphabet.symbol_of(int(d[j - 1])))
            closes = int(E[i, j]) == int(H[i, j - 1]) - rho
            j -= 1
            state = "M" if closes else "E"
        else:
            q_chars.append(alphabet.symbol_of(int(q[i - 1])))
            d_chars.append(GAP)
            closes = int(F[i, j]) == int(H[i - 1, j]) - rho
            i -= 1
            state = "M" if closes else "F"

    return Alignment(
        score=score,
        q_start=i,
        q_end=end_i,
        d_start=j,
        d_end=end_j,
        q_aligned="".join(reversed(q_chars)),
        d_aligned="".join(reversed(d_chars)),
    )
