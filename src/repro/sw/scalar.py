"""Textbook scalar Smith-Waterman (eq. 1 of the paper).

This is the slowest and most obviously-correct implementation in the
repository; every other aligner is tested against it.  Tables are
1-indexed: ``H[i][j]`` scores prefixes ``q[:i]`` / ``d[:j]``.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = ["sw_score_scalar", "sw_tables_scalar"]


def sw_tables_scalar(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill and return the full ``(m+1, n+1)`` H, E, F tables.

    The recurrences follow the paper exactly::

        E[i,j] = max(E[i,j-1] - sigma, H[i,j-1] - rho)
        F[i,j] = max(F[i-1,j] - sigma, H[i-1,j] - rho)
        H[i,j] = max(0, E[i,j], F[i,j], H[i-1,j-1] + w(q_i, d_j))

    with zero boundaries for H and ``-inf`` boundaries for E and F.
    Intended for tests and traceback on small inputs — O(mn) memory.
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    m, n = q.size, d.size
    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores

    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)

    for i in range(1, m + 1):
        qi = q[i - 1]
        for j in range(1, n + 1):
            e = max(E[i, j - 1] - sigma, H[i, j - 1] - rho)
            f = max(F[i - 1, j] - sigma, H[i - 1, j] - rho)
            h = max(0, e, f, H[i - 1, j - 1] + W[qi, d[j - 1]])
            E[i, j] = e
            F[i, j] = f
            H[i, j] = h
    return H, E, F


def sw_score_scalar(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> int:
    """Optimal local alignment score via the full-table scalar DP."""
    H, _, _ = sw_tables_scalar(query, database, matrix, gaps)
    return int(H.max())
