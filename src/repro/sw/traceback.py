"""Full-table Smith-Waterman with affine traceback.

O(mn) memory — meant for inspecting individual alignments (examples, the
linear-space aligner's bounded region), not for database scans.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.alignment import GAP, Alignment
from repro.sw.scalar import sw_tables_scalar
from repro.sw.utils import as_codes

__all__ = ["sw_align"]


def sw_align(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> Alignment:
    """Optimal local alignment with full traceback.

    Ties are broken deterministically: at the end cell the smallest
    ``(i + j, i)`` wins; along the path, diagonal moves are preferred over
    ``E`` (database gap consuming database symbols) over ``F``.
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    H, E, F = sw_tables_scalar(q, d, matrix, gaps)
    alphabet = matrix.alphabet

    score = int(H.max())
    if score == 0:
        # The empty alignment is optimal (all-negative scores).
        return Alignment(0, 0, 0, 0, 0, "", "")

    # End cell: earliest anti-diagonal, then smallest i — matches the
    # tie-break of sw_score_antidiagonal_ends so the two agree in tests.
    cells = np.argwhere(H == score)
    keys = cells.sum(axis=1) * (H.shape[0] + H.shape[1]) + cells[:, 0]
    i, j = map(int, cells[int(np.argmin(keys))])

    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores
    q_chars: list[str] = []
    d_chars: list[str] = []
    state = "M"
    end_i, end_j = i, j

    while True:
        if state == "M":
            h = int(H[i, j])
            if h == 0:
                break
            if h == int(H[i - 1, j - 1]) + int(W[q[i - 1], d[j - 1]]):
                q_chars.append(alphabet.symbol_of(int(q[i - 1])))
                d_chars.append(alphabet.symbol_of(int(d[j - 1])))
                i -= 1
                j -= 1
            elif h == int(E[i, j]):
                state = "E"
            elif h == int(F[i, j]):
                state = "F"
            else:  # pragma: no cover - would indicate a DP bug
                raise AssertionError(f"broken traceback at ({i}, {j})")
        elif state == "E":
            # Gap in the query row: consume a database symbol.
            q_chars.append(GAP)
            d_chars.append(alphabet.symbol_of(int(d[j - 1])))
            came_from_h = int(E[i, j]) == int(H[i, j - 1]) - rho
            came_from_e = int(E[i, j]) == int(E[i, j - 1]) - sigma
            j -= 1
            if came_from_h and not came_from_e:
                state = "M"
            elif came_from_h and came_from_e:
                # Prefer closing the gap (shorter gaps, matches scoring).
                state = "M"
            elif came_from_e:
                state = "E"
            else:  # pragma: no cover
                raise AssertionError(f"broken E traceback at ({i}, {j + 1})")
        else:  # state == "F"
            q_chars.append(alphabet.symbol_of(int(q[i - 1])))
            d_chars.append(GAP)
            came_from_h = int(F[i, j]) == int(H[i - 1, j]) - rho
            came_from_f = int(F[i, j]) == int(F[i - 1, j]) - sigma
            i -= 1
            if came_from_h:
                state = "M"
            elif came_from_f:
                state = "F"
            else:  # pragma: no cover
                raise AssertionError(f"broken F traceback at ({i + 1}, {j})")

    return Alignment(
        score=score,
        q_start=i,
        q_end=end_i,
        d_start=j,
        d_end=end_j,
        q_aligned="".join(reversed(q_chars)),
        d_aligned="".join(reversed(d_chars)),
    )
