"""Banded Smith-Waterman.

Restricts the DP to cells with ``|i - j| <= band``; cells outside the band
are unreachable.  The banded score is a lower bound on the exact score and
equals it whenever an optimal alignment stays inside the band — the classic
trade-off of heuristic gapped extension (the BLAST-like baseline reuses this
routine).  Time O(m * band); memory O(n) (two full-width rows, which keeps
the indexing simple while still skipping all out-of-band work).
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = ["sw_score_banded"]


def sw_score_banded(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
    band: int,
) -> int:
    """Local alignment score restricted to the band ``|i - j| <= band``.

    Parameters
    ----------
    band:
        Half-width of the band (>= 0).  ``band >= max(m, n) - 1`` makes the
        band cover the whole table, recovering the exact score.
    """
    if band < 0:
        raise ValueError(f"band must be non-negative, got {band}")
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    m, n = q.size, d.size
    rho, sigma = int(gaps.rho), int(gaps.sigma)
    W = matrix.scores
    neg = int(NEG_INF)

    # Two full-width rows; out-of-band cells hold H = -inf so in-band cells
    # can read neighbours without bounds checks.  Row 0 (the H = 0 boundary)
    # is all zeros.
    h_prev = np.zeros(n + 1, dtype=np.int64)
    f_prev = np.full(n + 1, neg, dtype=np.int64)
    best = 0

    for i in range(1, m + 1):
        lo = max(1, i - band)
        hi = min(n, i + band)
        if lo > hi:
            break  # the band has left the table
        h_cur = np.full(n + 1, neg, dtype=np.int64)
        f_cur = np.full(n + 1, neg, dtype=np.int64)
        if lo == 1:
            h_cur[0] = 0  # j = 0 boundary cell is inside reach
        e = neg
        h_left = int(h_cur[lo - 1])
        qi = q[i - 1]
        for j in range(lo, hi + 1):
            e = max(e - sigma, h_left - rho)
            f = max(int(f_prev[j]) - sigma, int(h_prev[j]) - rho)
            diag = int(h_prev[j - 1])
            h = max(0, e, f, diag + int(W[qi, d[j - 1]]))
            h_cur[j] = h
            f_cur[j] = f
            h_left = h
            if h > best:
                best = h
        h_prev = h_cur
        f_prev = f_cur
    return int(best)
