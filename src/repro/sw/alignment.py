"""Alignment results and their verification.

An :class:`Alignment` is the full witness of an alignment score: the two
gapped strings plus coordinates.  :func:`alignment_score` re-scores a
witness from scratch, which gives tests an independent check that a
traceback is not just *a* path but one whose score matches the DP optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alphabet import GapPenalty, SubstitutionMatrix

__all__ = ["Alignment", "alignment_score"]

GAP = "-"


@dataclass(frozen=True)
class Alignment:
    """A (local or global) pairwise alignment.

    Coordinates are 0-based, end-exclusive over the *unaligned* sequences:
    the alignment covers ``query[q_start:q_end]`` and
    ``database[d_start:d_end]``.

    ``q_aligned`` and ``d_aligned`` are equal-length strings over the
    alphabet plus ``'-'``; ``cigar`` uses ``M`` (aligned pair), ``I``
    (query residue against a gap) and ``D`` (database residue against a
    gap).
    """

    score: int
    q_start: int
    q_end: int
    d_start: int
    d_end: int
    q_aligned: str
    d_aligned: str

    def __post_init__(self) -> None:
        if len(self.q_aligned) != len(self.d_aligned):
            raise ValueError("aligned strings must have equal length")
        q_res = sum(1 for c in self.q_aligned if c != GAP)
        d_res = sum(1 for c in self.d_aligned if c != GAP)
        if q_res != self.q_end - self.q_start:
            raise ValueError(
                f"query coordinates span {self.q_end - self.q_start} residues "
                f"but the aligned string contains {q_res}"
            )
        if d_res != self.d_end - self.d_start:
            raise ValueError(
                f"database coordinates span {self.d_end - self.d_start} residues "
                f"but the aligned string contains {d_res}"
            )
        for a, b in zip(self.q_aligned, self.d_aligned):
            if a == GAP and b == GAP:
                raise ValueError("alignment contains a gap-gap column")

    @property
    def length(self) -> int:
        """Number of alignment columns."""
        return len(self.q_aligned)

    @property
    def cigar(self) -> str:
        """Run-length encoded operations, e.g. ``"5M2D9M"``."""
        ops = []
        for a, b in zip(self.q_aligned, self.d_aligned):
            if a == GAP:
                ops.append("D")
            elif b == GAP:
                ops.append("I")
            else:
                ops.append("M")
        out = []
        run = 0
        prev = ""
        for op in ops + [""]:
            if op == prev:
                run += 1
            else:
                if prev:
                    out.append(f"{run}{prev}")
                prev = op
                run = 1
        return "".join(out)

    def identity(self) -> float:
        """Fraction of columns that are exact matches."""
        matches = sum(
            1
            for a, b in zip(self.q_aligned, self.d_aligned)
            if a == b and a != GAP
        )
        return matches / self.length if self.length else 0.0

    def positives(self, matrix: SubstitutionMatrix) -> float:
        """Fraction of columns with a positive substitution score (BLAST's
        'positives')."""
        if not self.length:
            return 0.0
        hits = sum(
            1
            for a, b in zip(self.q_aligned, self.d_aligned)
            if a != GAP and b != GAP and matrix.score(a, b) > 0
        )
        return hits / self.length

    def gap_columns(self) -> int:
        """Number of alignment columns containing a gap."""
        return sum(
            1
            for a, b in zip(self.q_aligned, self.d_aligned)
            if a == GAP or b == GAP
        )

    def gap_opens(self) -> int:
        """Number of distinct gap runs (what affine opens are charged for)."""
        opens = 0
        prev = "M"
        for a, b in zip(self.q_aligned, self.d_aligned):
            state = "D" if a == GAP else ("I" if b == GAP else "M")
            if state != "M" and state != prev:
                opens += 1
            prev = state
        return opens

    def query_coverage(self, query_length: int) -> float:
        """Fraction of the query the alignment spans."""
        if query_length <= 0:
            raise ValueError("query_length must be positive")
        return (self.q_end - self.q_start) / query_length

    def midline(self, matrix: SubstitutionMatrix) -> str:
        """BLAST-style midline: letter for identity, ``+`` for a positive
        substitution score, space otherwise."""
        chars = []
        for a, b in zip(self.q_aligned, self.d_aligned):
            if a == GAP or b == GAP:
                chars.append(" ")
            elif a == b:
                chars.append(a)
            elif matrix.score(a, b) > 0:
                chars.append("+")
            else:
                chars.append(" ")
        return "".join(chars)

    def pretty(self, matrix: SubstitutionMatrix, width: int = 60) -> str:
        """Human-readable block rendering."""
        mid = self.midline(matrix)
        blocks = []
        for start in range(0, self.length, width):
            stop = min(start + width, self.length)
            blocks.append(
                "\n".join(
                    (
                        f"Query {self.q_aligned[start:stop]}",
                        f"      {mid[start:stop]}",
                        f"Sbjct {self.d_aligned[start:stop]}",
                    )
                )
            )
        header = (
            f"score={self.score} q[{self.q_start}:{self.q_end}] "
            f"d[{self.d_start}:{self.d_end}] identity={self.identity():.1%}"
        )
        return header + "\n" + "\n\n".join(blocks)


def alignment_score(
    alignment: Alignment,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> int:
    """Re-score an alignment from its gapped strings.

    Substitution columns add ``W(a, b)``; a maximal run of ``k`` gap columns
    (on either side) subtracts ``rho + (k-1) * sigma``.  For an optimal
    local alignment this must equal ``alignment.score``.
    """
    total = 0
    gap_run_q = 0  # run of '-' in q_aligned (database residues unpaired)
    gap_run_d = 0
    for a, b in zip(alignment.q_aligned, alignment.d_aligned):
        if a == GAP:
            gap_run_q += 1
            gap_run_d = 0
            total -= gaps.rho if gap_run_q == 1 else gaps.sigma
        elif b == GAP:
            gap_run_d += 1
            gap_run_q = 0
            total -= gaps.rho if gap_run_d == 1 else gaps.sigma
        else:
            gap_run_q = gap_run_d = 0
            total += matrix.score(a, b)
    return total
