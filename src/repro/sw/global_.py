"""Global (Needleman-Wunsch) and semi-global affine-gap alignment.

Included for library completeness (any credible sequence-search package
offers them) and used by tests as independent cross-checks: a local score
upper-bounds the global score of the same pair, and the semi-global score
sits in between.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.alignment import GAP, Alignment
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = ["nw_score", "nw_align", "semiglobal_score"]


def _nw_tables(
    q: np.ndarray,
    d: np.ndarray,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
    *,
    free_top: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fill affine NW tables.

    ``free_top=True`` makes gaps before the database sequence free (the
    semi-global "query contained in database" convention).
    """
    m, n = q.size, d.size
    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores

    H = np.zeros((m + 1, n + 1), dtype=np.int32)
    E = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)
    F = np.full((m + 1, n + 1), NEG_INF, dtype=np.int32)

    for j in range(1, n + 1):
        if free_top:
            H[0, j] = 0
        else:
            E[0, j] = -(rho + (j - 1) * sigma)
            H[0, j] = E[0, j]
    for i in range(1, m + 1):
        F[i, 0] = -(rho + (i - 1) * sigma)
        H[i, 0] = F[i, 0]

    for i in range(1, m + 1):
        qi = q[i - 1]
        for j in range(1, n + 1):
            e = max(E[i, j - 1] - sigma, H[i, j - 1] - rho)
            f = max(F[i - 1, j] - sigma, H[i - 1, j] - rho)
            h = max(e, f, H[i - 1, j - 1] + W[qi, d[j - 1]])
            E[i, j] = e
            F[i, j] = f
            H[i, j] = h
    return H, E, F


def nw_score(query, database, matrix: SubstitutionMatrix, gaps: GapPenalty) -> int:
    """Global alignment score (both sequences end to end)."""
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    H, _, _ = _nw_tables(q, d, matrix, gaps, free_top=False)
    return int(H[q.size, d.size])


def semiglobal_score(
    query, database, matrix: SubstitutionMatrix, gaps: GapPenalty
) -> int:
    """Semi-global score: the whole query aligned somewhere inside the
    database sequence (gaps before/after the database part are free)."""
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    H, _, _ = _nw_tables(q, d, matrix, gaps, free_top=True)
    return int(H[q.size].max())


def nw_align(
    query, database, matrix: SubstitutionMatrix, gaps: GapPenalty
) -> Alignment:
    """Global alignment with affine traceback."""
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    H, E, F = _nw_tables(q, d, matrix, gaps, free_top=False)
    alphabet = matrix.alphabet
    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores

    i, j = q.size, d.size
    q_chars: list[str] = []
    d_chars: list[str] = []
    state = "M"
    while i > 0 or j > 0:
        if state == "M":
            if i > 0 and j > 0 and int(H[i, j]) == int(H[i - 1, j - 1]) + int(
                W[q[i - 1], d[j - 1]]
            ):
                q_chars.append(alphabet.symbol_of(int(q[i - 1])))
                d_chars.append(alphabet.symbol_of(int(d[j - 1])))
                i -= 1
                j -= 1
            elif j > 0 and int(H[i, j]) == int(E[i, j]):
                state = "E"
            elif i > 0 and int(H[i, j]) == int(F[i, j]):
                state = "F"
            else:  # pragma: no cover
                raise AssertionError(f"broken NW traceback at ({i}, {j})")
        elif state == "E":
            q_chars.append(GAP)
            d_chars.append(alphabet.symbol_of(int(d[j - 1])))
            closes = int(E[i, j]) == int(H[i, j - 1]) - rho
            j -= 1
            state = "M" if closes else "E"
        else:
            q_chars.append(alphabet.symbol_of(int(q[i - 1])))
            d_chars.append(GAP)
            closes = int(F[i, j]) == int(H[i - 1, j]) - rho
            i -= 1
            state = "M" if closes else "F"

    return Alignment(
        score=int(H[q.size, d.size]),
        q_start=0,
        q_end=q.size,
        d_start=0,
        d_end=d.size,
        q_aligned="".join(reversed(q_chars)),
        d_aligned="".join(reversed(d_chars)),
    )
