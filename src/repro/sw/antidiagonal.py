"""Vectorized anti-diagonal (wavefront) Smith-Waterman.

Cells on the same anti-diagonal ``i + j = k`` have no mutual dependencies,
so a whole diagonal is computed with numpy vector operations — the same
traversal order the original CUDASW++ intra-task kernel uses with one
thread per wavefront cell.  Space is linear: three diagonals of H plus one
each of E and F.

This is the repository's workhorse exact-score routine: O(m + n) numpy
steps instead of O(mn) Python iterations.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.utils import NEG_INF, as_codes, check_nonempty, validate_penalties

__all__ = ["sw_score_antidiagonal", "sw_score_antidiagonal_ends"]


def sw_score_antidiagonal(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> int:
    """Optimal local alignment score via wavefront sweeps."""
    score, _, _ = sw_score_antidiagonal_ends(query, database, matrix, gaps)
    return score


def sw_score_antidiagonal_ends(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> tuple[int, int, int]:
    """Score plus the (i, j) end coordinates of an optimal local alignment.

    Coordinates are 1-indexed table positions (``i`` rows into the query,
    ``j`` columns into the database sequence); among equal-scoring cells the
    one on the earliest anti-diagonal, then smallest ``i``, is reported.
    Used by the linear-space aligner to bound the traceback region.
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)
    m, n = q.size, d.size
    rho, sigma = gaps.rho, gaps.sigma
    W = matrix.scores

    # Diagonal buffers indexed by i in [0, m]; entry i of the "current"
    # buffer holds the value at (i, k - i) for the diagonal being computed.
    h_prev2 = np.zeros(m + 1, dtype=np.int32)  # diagonal k-2
    h_prev = np.zeros(m + 1, dtype=np.int32)  # diagonal k-1
    e_prev = np.full(m + 1, NEG_INF, dtype=np.int32)
    f_prev = np.full(m + 1, NEG_INF, dtype=np.int32)

    best = 0
    best_i = 0
    best_j = 0

    for k in range(2, m + n + 1):
        lo = max(1, k - n)
        hi = min(m, k - 1)  # inclusive
        if lo > hi:
            continue
        i_range = slice(lo, hi + 1)
        i_minus1 = slice(lo - 1, hi)

        # E[i,j] = max(E[i,j-1] - sigma, H[i,j-1] - rho); (i, j-1) sits on
        # diagonal k-1 at the same index i.
        e_cur_v = np.maximum(e_prev[i_range] - sigma, h_prev[i_range] - rho)
        # F[i,j] = max(F[i-1,j] - sigma, H[i-1,j] - rho); (i-1, j) sits on
        # diagonal k-1 at index i-1.
        f_cur_v = np.maximum(f_prev[i_minus1] - sigma, h_prev[i_minus1] - rho)
        # H[i,j] = max(0, E, F, H[i-1,j-1] + w); (i-1, j-1) on diagonal k-2.
        # For i = lo..hi the database index j-1 = k-i-1 runs *down* from
        # k-lo-1 to k-hi-1.
        d_idx = (k - 1) - np.arange(lo, hi + 1, dtype=np.int64)
        subs = W[q[lo - 1 : hi], d[d_idx]]
        h_cur_v = np.maximum(
            np.maximum(e_cur_v, f_cur_v), h_prev2[i_minus1] + subs
        )
        np.maximum(h_cur_v, 0, out=h_cur_v)

        step_best = int(h_cur_v.max())
        if step_best > best:
            best = step_best
            off = int(np.argmax(h_cur_v))
            best_i = lo + off
            best_j = k - best_i

        # Rotate buffers.  Boundary cells (i = 0 row and j = 0 column) keep
        # H = 0 and E = F = -inf, which the fresh buffers encode below.
        h_new = np.zeros(m + 1, dtype=np.int32)
        e_new = np.full(m + 1, NEG_INF, dtype=np.int32)
        f_new = np.full(m + 1, NEG_INF, dtype=np.int32)
        h_new[i_range] = h_cur_v
        e_new[i_range] = e_cur_v
        f_new[i_range] = f_cur_v
        h_prev2 = h_prev
        h_prev = h_new
        e_prev = e_new
        f_prev = f_new

    return best, best_i, best_j
