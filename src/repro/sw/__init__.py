"""Reference Smith-Waterman implementations (the gold standard).

Every GPU kernel and baseline in this repository must reproduce the scores
computed here.  The package provides:

* :func:`~repro.sw.scalar.sw_score_scalar` — the textbook O(mn) scalar
  recurrence (eq. 1 of the paper), used as the ultimate arbiter in tests;
* :func:`~repro.sw.antidiagonal.sw_score_antidiagonal` — a vectorized
  wavefront implementation (the same traversal order as the original
  intra-task kernel), the workhorse score routine;
* :func:`~repro.sw.traceback.sw_align` — full-table alignment with affine
  traceback, returning an :class:`~repro.sw.alignment.Alignment`;
* :func:`~repro.sw.hirschberg.sw_align_linear_space` — reduced-memory local
  alignment (locate the optimal region with linear-space passes, then
  trace back only inside it);
* :func:`~repro.sw.global_.nw_score` / :func:`~repro.sw.global_.nw_align` —
  global (Needleman-Wunsch) and semi-global variants;
* :func:`~repro.sw.myers_miller.nw_align_linear_space` — Myers-Miller
  divide-and-conquer global alignment in O(m+n) memory;
* :func:`~repro.sw.overlap.overlap_score` — overlap (dovetail) alignment;
* :func:`~repro.sw.banded.sw_score_banded` — banded local alignment.
"""

from repro.sw.alignment import Alignment, alignment_score
from repro.sw.antidiagonal import sw_score_antidiagonal
from repro.sw.banded import sw_score_banded
from repro.sw.global_ import nw_align, nw_score, semiglobal_score
from repro.sw.hirschberg import sw_align_linear_space
from repro.sw.myers_miller import nw_align_linear_space
from repro.sw.overlap import overlap_align, overlap_score
from repro.sw.scalar import sw_score_scalar, sw_tables_scalar
from repro.sw.traceback import sw_align
from repro.sw.utils import NEG_INF, as_codes

#: Preferred score-only entry point.
smith_waterman = sw_score_antidiagonal

__all__ = [
    "Alignment",
    "alignment_score",
    "as_codes",
    "NEG_INF",
    "nw_align",
    "nw_align_linear_space",
    "nw_score",
    "overlap_align",
    "overlap_score",
    "semiglobal_score",
    "smith_waterman",
    "sw_align",
    "sw_align_linear_space",
    "sw_score_antidiagonal",
    "sw_score_banded",
    "sw_score_scalar",
    "sw_tables_scalar",
]
