"""Myers-Miller linear-space global alignment (CABIOS 1988).

Hirschberg's divide-and-conquer adapted to affine gaps: a forward
cost pass over the top half and a backward pass over the bottom half meet
on the middle row; the optimal crossing column (and whether the crossing
happens *inside* a vertical gap, whose open cost must not be paid twice)
splits the problem into two halves solved recursively.  Memory is O(m+n)
throughout; time stays O(mn).

Internally this follows the original's cost-minimization formulation with
``gap(k) = g + h*k`` (``g = rho - sigma``, ``h = sigma``; substitution
cost is the negated matrix score), translated to numpy inner loops.  The
result is converted back into a score-maximizing
:class:`~repro.sw.alignment.Alignment` and must match
:func:`~repro.sw.global_.nw_score` exactly — tests enforce it.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.alignment import GAP, Alignment
from repro.sw.utils import as_codes, check_nonempty, validate_penalties

__all__ = ["nw_align_linear_space"]

_BIG = 1 << 40


class _MyersMiller:
    """One alignment run: recursion state plus the emitted edit script."""

    def __init__(
        self, a: np.ndarray, b: np.ndarray, matrix: SubstitutionMatrix,
        gaps: GapPenalty,
    ) -> None:
        self.a = a
        self.b = b
        self.costs = (-matrix.scores).astype(np.int64)  # minimize
        self.g = gaps.rho - gaps.sigma  # gap open (beyond the first h)
        self.h = gaps.sigma  # per-residue gap cost
        # Edit script: +k = insert k B residues, -k = delete k A residues,
        # 0 = one substitution column.  (The classic encoding.)
        self.ops: list[int] = []

    def gap(self, k: int) -> int:
        return self.g + self.h * k if k > 0 else 0

    # ------------------------------------------------------------------
    def _ins(self, k: int) -> None:
        if k <= 0:
            return
        if self.ops and self.ops[-1] > 0:
            self.ops[-1] += k
        else:
            self.ops.append(k)

    def _del(self, k: int) -> None:
        if k <= 0:
            return
        if self.ops and self.ops[-1] < 0:
            self.ops[-1] -= k
        else:
            self.ops.append(-k)

    def _rep(self) -> None:
        self.ops.append(0)

    # ------------------------------------------------------------------
    def diff(self, ai: int, bj: int, m: int, n: int, tb: int, te: int) -> int:
        """Align A[ai:ai+m] with B[bj:bj+n]; gap-open costs at the top and
        bottom boundaries are ``tb``/``te`` (``0`` when a vertical gap is
        already open there).  Returns the minimum cost and emits ops."""
        a, b = self.a, self.b
        g, h = self.g, self.h

        if n == 0:
            if m > 0:
                self._del(m)
            return self.gap(m)
        if m == 0:
            self._ins(n)
            return self.gap(n)
        if m == 1:
            tb = min(tb, te)
            # Either delete A[ai] (possibly continuing a boundary gap) and
            # insert all of B ...
            best = (tb + h) + self.gap(n)
            best_j = 0
            row = self.costs[a[ai]]
            # ... or align A[ai] to some B[bj + j - 1].
            for j in range(1, n + 1):
                c = self.gap(j - 1) + int(row[b[bj + j - 1]]) + self.gap(n - j)
                if c < best:
                    best = c
                    best_j = j
            if best_j == 0:
                self._del(1)
                self._ins(n)
            else:
                self._ins(best_j - 1)
                self._rep()
                self._ins(n - best_j)
            return best

        mid = m // 2

        # Forward pass over A[ai : ai+mid].
        cc = np.empty(n + 1, dtype=np.int64)
        dd = np.empty(n + 1, dtype=np.int64)
        cc[0] = 0
        for j in range(1, n + 1):
            cc[j] = self.gap(j)
            dd[j] = cc[j] + g
        t = tb
        for i in range(mid):
            s = int(cc[0])
            t += h
            c0 = t
            cc[0] = c0
            e = t + g
            row = self.costs[a[ai + i]]
            c_prev = c0
            for j in range(1, n + 1):
                e = min(e + h, c_prev + g + h)  # horizontal gap
                d = min(int(dd[j]) + h, int(cc[j]) + g + h)  # vertical gap
                c = min(d, e, s + int(row[b[bj + j - 1]]))
                s = int(cc[j])
                cc[j] = c
                dd[j] = d
                c_prev = c
        dd[0] = cc[0]

        # Backward pass over A[ai+mid : ai+m], reversed.
        rr = np.empty(n + 1, dtype=np.int64)
        ss = np.empty(n + 1, dtype=np.int64)
        rr[n] = 0
        for j in range(n - 1, -1, -1):
            rr[j] = self.gap(n - j)
            ss[j] = rr[j] + g
        t = te
        for i in range(m - mid):
            s = int(rr[n])
            t += h
            c0 = t
            rr[n] = c0
            e = t + g
            row = self.costs[a[ai + m - 1 - i]]
            c_prev = c0
            for j in range(n - 1, -1, -1):
                e = min(e + h, c_prev + g + h)
                d = min(int(ss[j]) + h, int(rr[j]) + g + h)
                c = min(d, e, s + int(row[b[bj + j]]))
                s = int(rr[j])
                rr[j] = c
                ss[j] = d
                c_prev = c
        ss[n] = rr[n]

        # Optimal crossing point on row mid: plain (type 1) or inside a
        # vertical gap (type 2, saving one gap-open).
        plain = cc + rr
        in_gap = dd + ss - g
        j1 = int(np.argmin(plain))
        j2 = int(np.argmin(in_gap))
        if int(plain[j1]) <= int(in_gap[j2]):
            best, best_j, kind = int(plain[j1]), j1, 1
        else:
            best, best_j, kind = int(in_gap[j2]), j2, 2

        if kind == 1:
            self.diff(ai, bj, mid, best_j, tb, g)
            self.diff(ai + mid, bj + best_j, m - mid, n - best_j, g, te)
        else:
            # Rows mid-1 and mid both sit in one vertical gap: emit them
            # here and tell the halves the gap is already open (cost 0).
            self.diff(ai, bj, mid - 1, best_j, tb, 0)
            self._del(2)
            self.diff(ai + mid + 1, bj + best_j, m - mid - 1, n - best_j, 0, te)
        return best


def nw_align_linear_space(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> Alignment:
    """Global alignment in O(m + n) memory via Myers-Miller.

    Score-equivalent to :func:`repro.sw.global_.nw_align`; the witness is
    reconstructed from the divide-and-conquer edit script.
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)
    validate_penalties(gaps)

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 64 + 2 * (q.size.bit_length() + 1) * 64))
    try:
        runner = _MyersMiller(q, d, matrix, gaps)
        cost = runner.diff(0, 0, q.size, d.size, runner.g, runner.g)
    finally:
        sys.setrecursionlimit(old_limit)

    # Rebuild the gapped strings from the edit script.
    alphabet = matrix.alphabet
    q_chars: list[str] = []
    d_chars: list[str] = []
    i = j = 0
    for op in runner.ops:
        if op == 0:
            q_chars.append(alphabet.symbol_of(int(q[i])))
            d_chars.append(alphabet.symbol_of(int(d[j])))
            i += 1
            j += 1
        elif op > 0:  # insert B residues
            d_chars.extend(alphabet.symbol_of(int(d[j + k])) for k in range(op))
            q_chars.extend(GAP * op)
            j += op
        else:  # delete A residues
            q_chars.extend(alphabet.symbol_of(int(q[i + k])) for k in range(-op))
            d_chars.extend(GAP * -op)
            i += -op
    if i != q.size or j != d.size:  # pragma: no cover - invariant guard
        raise AssertionError("edit script does not cover both sequences")

    return Alignment(
        score=-cost,
        q_start=0,
        q_end=q.size,
        d_start=0,
        d_end=d.size,
        q_aligned="".join(q_chars),
        d_aligned="".join(d_chars),
    )
