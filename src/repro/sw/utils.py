"""Shared helpers for the alignment implementations."""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sequence.sequence import Sequence

__all__ = ["NEG_INF", "as_codes", "check_nonempty"]

#: "Minus infinity" for int32 DP tables, chosen so that subtracting any
#: realistic gap penalty can never wrap around.
NEG_INF = np.int32(np.iinfo(np.int32).min // 4)


def as_codes(seq, matrix: SubstitutionMatrix) -> np.ndarray:
    """Coerce a :class:`Sequence`, code array or string to a code array.

    Strings are encoded with the matrix's alphabet; code arrays are
    validated against its size.
    """
    if isinstance(seq, Sequence):
        if seq.alphabet != matrix.alphabet:
            raise ValueError(
                f"sequence alphabet {seq.alphabet.name!r} does not match "
                f"matrix alphabet {matrix.alphabet.name!r}"
            )
        return seq.codes
    if isinstance(seq, str):
        return matrix.alphabet.encode(seq)
    codes = np.asarray(seq, dtype=np.uint8)
    if codes.ndim != 1:
        raise ValueError(f"sequence codes must be 1-D, got shape {codes.shape}")
    if codes.size and int(codes.max()) >= matrix.alphabet.size:
        raise ValueError("sequence codes out of range for the matrix alphabet")
    return codes


def check_nonempty(q: np.ndarray, d: np.ndarray) -> None:
    """Alignment of an empty sequence is defined (score 0) but almost always
    a caller bug; the library rejects it uniformly."""
    if q.size == 0 or d.size == 0:
        raise ValueError("cannot align empty sequences")


def validate_penalties(gaps: GapPenalty) -> None:
    """Guard against penalty magnitudes that could overflow int32 tables."""
    if max(gaps.rho, gaps.sigma) > 2**20:
        raise ValueError("gap penalties too large for int32 DP tables")
