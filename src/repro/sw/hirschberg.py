"""Reduced-memory optimal local alignment.

Full-table traceback needs O(mn) memory — 4 GB for a 5478-residue query
against a 200k-residue chromosome.  This module implements the classic
linear-space *locate-then-trace* scheme:

1. a forward linear-space wavefront pass finds the score and an optimal
   **end** cell;
2. the same pass over the reversed prefixes finds a matching **start**
   cell (an optimal alignment of the reversed prefixes has the same score
   and its span bounds an optimal forward alignment);
3. full-table traceback runs only inside the located region, whose size is
   the alignment's span — typically a tiny fraction of the full table.

Memory is therefore O(m + n + span²); for the degenerate case where the
alignment spans the whole table this degrades to full-table traceback,
which is documented and tested behaviour.
"""

from __future__ import annotations

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.sw.alignment import Alignment
from repro.sw.antidiagonal import sw_score_antidiagonal_ends
from repro.sw.traceback import sw_align
from repro.sw.utils import as_codes, check_nonempty

__all__ = ["sw_align_linear_space"]


def sw_align_linear_space(
    query,
    database,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
) -> Alignment:
    """Optimal local alignment using linear-space passes to bound traceback.

    Returns an alignment whose score equals the full-table optimum; when
    several optimal alignments exist the one found may differ from
    :func:`~repro.sw.traceback.sw_align`'s tie-break (both are optimal).
    """
    q = as_codes(query, matrix)
    d = as_codes(database, matrix)
    check_nonempty(q, d)

    score, i_end, j_end = sw_score_antidiagonal_ends(q, d, matrix, gaps)
    if score == 0:
        return Alignment(0, 0, 0, 0, 0, "", "")

    # Reverse pass over the prefixes ending at the located end cell.  Any
    # optimal local alignment of the reversed prefixes has the same score
    # (see module docstring) and its end cell bounds a region that contains
    # an optimal forward alignment.
    rq = q[:i_end][::-1]
    rd = d[:j_end][::-1]
    r_score, ri, rj = sw_score_antidiagonal_ends(rq, rd, matrix, gaps)
    if r_score != score:  # pragma: no cover - invariant guard
        raise AssertionError(
            f"reverse pass score {r_score} != forward score {score}"
        )

    q_off = i_end - ri
    d_off = j_end - rj
    sub = sw_align(q[q_off:i_end], d[d_off:j_end], matrix, gaps)
    if sub.score != score:  # pragma: no cover - invariant guard
        raise AssertionError(
            f"bounded traceback score {sub.score} != optimum {score}"
        )
    return Alignment(
        score=score,
        q_start=q_off + sub.q_start,
        q_end=q_off + sub.q_end,
        d_start=d_off + sub.d_start,
        d_end=d_off + sub.d_end,
        q_aligned=sub.q_aligned,
        d_aligned=sub.d_aligned,
    )
