"""Inline suppression comments.

``# repro-lint: disable=RPL105`` on a line suppresses that rule for the
statement on that line; ``disable=RPL101,RPL105`` lists several,
``disable=all`` suppresses every rule.  Rules may be named by id
(``RPL105``) or by name (``except-swallow``).

Suppressions attach to *physical lines*: a finding is suppressed when
its line carries a matching comment, or when the comment sits on the
immediately preceding line with no code of its own (a "banner"
suppression for statements that are themselves too long to share a
line).
"""

from __future__ import annotations

import io
import re
import tokenize

__all__ = ["SuppressionMap", "scan_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint\s*:\s*disable\s*=\s*([A-Za-z0-9_,\-\s]+)"
)


class SuppressionMap:
    """Per-file map of line number -> suppressed rule ids/names."""

    __slots__ = ("_by_line", "_banner_lines")

    def __init__(
        self,
        by_line: dict[int, frozenset[str]],
        banner_lines: frozenset[int],
    ) -> None:
        self._by_line = by_line
        self._banner_lines = banner_lines

    def is_suppressed(self, line: int, rule_id: str, rule_name: str) -> bool:
        """Whether ``rule`` is disabled on ``line`` (or by a banner on
        the line above)."""
        for candidate in (line, line - 1):
            if candidate != line and candidate not in self._banner_lines:
                continue
            rules = self._by_line.get(candidate)
            if rules and (
                "all" in rules or rule_id in rules or rule_name in rules
            ):
                return True
        return False

    def __len__(self) -> int:
        return len(self._by_line)


def scan_suppressions(source: str) -> SuppressionMap:
    """Tokenize ``source`` and collect every suppression directive.

    Tokenization (rather than a regex over raw lines) keeps directives
    inside string literals from being honored.
    """
    by_line: dict[int, frozenset[str]] = {}
    comment_only: set[int] = set()
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionMap({}, frozenset())
    for tok in tokens:
        line = tok.start[0]
        if tok.type == tokenize.COMMENT:
            match = _DIRECTIVE.search(tok.string)
            if match:
                rules = frozenset(
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                )
                if rules:
                    by_line[line] = by_line.get(line, frozenset()) | rules
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            code_lines.add(line)
    comment_only = {line for line in by_line if line not in code_lines}
    return SuppressionMap(by_line, frozenset(comment_only))
