"""The ``repro-lint`` command.

Usage::

    repro-lint src/                       # lint a tree (text output)
    repro-lint --format json src/         # machine-readable report
    repro-lint --format github src/       # GitHub Actions annotations
    repro-lint --update-baseline src/     # absorb current findings
    repro-lint --self                     # lint the linter itself
    repro-lint --list-rules

Exit codes: 0 — no new findings; 1 — new findings (or a rule error);
2 — usage/configuration error.  Findings recorded in the committed
baseline (``lint-baseline.json`` by default, when it exists) do not
fail the run; everything new does.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import IO, Sequence

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding
from repro.lint.rules import all_rules
from repro.lint.runner import DEFAULT_CACHE_DIR, LintResult, LintRunner

__all__ = ["main", "build_parser"]

#: JSON report identity, mirrored by the run-report convention.
REPORT_SCHEMA = "repro.lint_report"
REPORT_VERSION = 1

DEFAULT_BASELINE = "lint-baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for the test suite and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Domain static analysis for the CUDASW++ reproduction: "
            "buffer-aliasing, dtype, determinism, observability-registry, "
            "exception-hygiene and API-coverage rules, plus a "
            "dataflow-backed family (shape broadcasting, dtype promotion, "
            "view aliasing, pool-boundary safety) driven by a NumPy "
            "abstract interpreter."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="project root for relative paths and docs/ lookups "
        "(default: current directory)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE} under the "
        f"root, when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids/names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids/names to skip",
    )
    parser.add_argument(
        "--self",
        dest="lint_self",
        action="store_true",
        help="lint the linter's own package (src/repro/lint)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="also write the JSON report to this path (any --format)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="worker processes for per-file rules (0 = one per CPU, "
        "1 = serial; default: 0)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"skip the per-file findings cache "
        f"({DEFAULT_CACHE_DIR}/ under the root)",
    )
    return parser


def _list_rules(out: IO[str]) -> int:
    width = max(len(r.id) for r in all_rules())
    for rule in all_rules():
        out.write(f"{rule.id:<{width}}  {rule.name}\n")
        out.write(f"{'':<{width}}  {rule.description}\n")
    return EXIT_CLEAN


def _report_dict(
    result: LintResult,
    new: list[Finding],
    baselined: int,
    self_check: dict | None = None,
) -> dict:
    report = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "baselined": baselined,
        "cache_hits": result.cache_hits,
        "findings": [f.to_dict() for f in new],
        "summary": {
            "total": len(new),
            "by_rule": _by_rule(new),
        },
    }
    if self_check is not None:
        report["self_check"] = self_check
    return report


def _self_check(package_dir: Path, root: Path) -> tuple[dict, list[Finding]]:
    """Drive the abstract interpreter over the linter's own sources.

    ``--self`` is the dataflow pass's regression harness: every
    function in the package is interpreted to a fixed point, and any
    internal error the driver swallowed surfaces as a finding.
    """
    import ast as _ast

    from repro.lint.astutil import qualname_index
    from repro.lint.dataflow import analyze_module

    functions = 0
    converged = 0
    findings: list[Finding] = []
    for path in sorted(package_dir.rglob("*.py")):
        try:
            tree = _ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError):
            continue  # the lint run itself reports these
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        module = analyze_module(tree, qualname_index(tree))
        for analysis in module.functions:
            functions += 1
            if analysis.error is None:
                converged += 1
            else:
                findings.append(
                    Finding(
                        path=rel,
                        line=analysis.fn.lineno,
                        col=analysis.fn.col_offset,
                        rule_id="RPL198",
                        rule_name="dataflow-self-check",
                        message=(
                            f"abstract interpretation of "
                            f"{analysis.qualname}() raised internally: "
                            f"{analysis.error}"
                        ),
                        qualname=analysis.qualname,
                    )
                )
    return {"functions": functions, "converged": converged}, findings


def _by_rule(findings: list[Finding]) -> dict[str, int]:
    out: dict[str, int] = {}
    for f in findings:
        out[f.rule_id] = out.get(f.rule_id, 0) + 1
    return dict(sorted(out.items()))


def main(
    argv: Sequence[str] | None = None,
    out: IO[str] | None = None,
    err: IO[str] | None = None,
) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits on usage errors/--help
        code = exc.code if isinstance(exc.code, int) else EXIT_USAGE
        return EXIT_USAGE if code not in (0,) else EXIT_CLEAN

    if args.list_rules:
        return _list_rules(out)

    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = list(args.paths)
    if args.lint_self:
        self_dir = Path(__file__).resolve().parent
        paths.append(str(self_dir))
    if not paths:
        default = root / "src"
        if not default.is_dir():
            err.write(
                "repro-lint: no paths given and no src/ under the root\n"
            )
            return EXIT_USAGE
        paths = [str(default)]

    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache_dir = None if args.no_cache else root / DEFAULT_CACHE_DIR
    try:
        runner = LintRunner(
            root,
            select=select,
            ignore=ignore,
            jobs=jobs,
            cache_dir=cache_dir,
        )
        result = runner.run_paths(paths)
    except FileNotFoundError as exc:
        err.write(f"repro-lint: {exc}\n")
        return EXIT_USAGE

    self_check: dict | None = None
    if args.lint_self:
        self_dir = Path(__file__).resolve().parent
        self_check, self_findings = _self_check(self_dir, root)
        result.findings.extend(self_findings)
        result.findings.sort()

    baseline_path = Path(args.baseline) if args.baseline else (
        root / DEFAULT_BASELINE
    )
    if args.update_baseline:
        Baseline().write(baseline_path, result.findings)
        out.write(
            f"wrote {len(result.findings)} finding(s) to "
            f"{baseline_path}\n"
        )
        return EXIT_CLEAN

    if args.no_baseline:
        new, baselined = list(result.findings), 0
    else:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, json.JSONDecodeError) as exc:
            err.write(f"repro-lint: bad baseline: {exc}\n")
            return EXIT_USAGE
        new, baselined = baseline.filter(result.findings)

    report = _report_dict(result, new, baselined, self_check)
    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        out.write(json.dumps(report, indent=2) + "\n")
    elif args.format == "github":
        for f in new:
            out.write(f.render_github() + "\n")
    else:
        for f in new:
            out.write(f.render_text() + "\n")
        tail = (
            f"{result.files_checked} file(s) checked: "
            f"{len(new)} finding(s)"
        )
        extras = []
        if result.suppressed:
            extras.append(f"{result.suppressed} suppressed inline")
        if baselined:
            extras.append(f"{baselined} baselined")
        if result.cache_hits:
            extras.append(f"{result.cache_hits} from cache")
        if self_check is not None:
            extras.append(
                f"self-check interpreted {self_check['functions']} "
                f"function(s), {self_check['converged']} converged"
            )
        if extras:
            tail += f" ({', '.join(extras)})"
        out.write(tail + "\n")

    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
