"""The checked-in findings baseline.

A baseline lets the linter land with rules stricter than the existing
tree: pre-existing findings are recorded (fingerprint -> count) in a
committed JSON file and stop failing CI, while anything *new* still
does.  The goal state is an empty baseline — every entry is ratcheted
debt, and regenerating with ``--update-baseline`` after a cleanup
shrinks it.

Matching is by :meth:`~repro.lint.findings.Finding.fingerprint`
(rule + path + enclosing qualname + normalized source context, so pure
line moves and message rewording keep entries valid) with
per-fingerprint counts — adding a *second* instance of an
already-baselined violation to the same file is still reported.

Version-1 baselines (the pre-PR 9 rule+path+message scheme) load as
*legacy* entries: findings that miss on the current fingerprint are
retried against :meth:`~repro.lint.findings.Finding.legacy_fingerprint`
so an old committed baseline keeps absorbing its debt.  Running
``--update-baseline`` (or :meth:`Baseline.write`) migrates the file to
version 2 in place.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_SCHEMA"]

BASELINE_SCHEMA = "repro.lint_baseline"
_VERSION = 2


class Baseline:
    """Fingerprint -> allowed-count map with JSON (de)serialization."""

    def __init__(
        self,
        counts: dict[str, int] | None = None,
        legacy_counts: dict[str, int] | None = None,
    ) -> None:
        self.counts: dict[str, int] = dict(counts or {})
        #: version-1 (rule+path+message) fingerprints, matched second.
        self.legacy_counts: dict[str, int] = dict(legacy_counts or {})

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("schema") != BASELINE_SCHEMA:
            raise ValueError(
                f"{path} is not a lint baseline (schema="
                f"{data.get('schema')!r})"
            )
        counts = {
            fp: int(entry["count"])
            for fp, entry in data.get("findings", {}).items()
        }
        if int(data.get("version", 1)) < 2:
            # A pre-migration file: its fingerprints were computed with
            # the rule+path+message scheme.
            return cls(legacy_counts=counts)
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        """A baseline accepting exactly the given findings."""
        return cls(dict(Counter(f.fingerprint() for f in findings)))

    def write(self, path: str | Path, findings: Sequence[Finding]) -> Path:
        """Serialize, with one annotated entry per fingerprint.

        Always writes the version-2 scheme — rewriting an old baseline
        with the current findings *is* the migration.
        """
        by_fp: dict[str, dict[str, Any]] = {}
        for f in sorted(findings):
            fp = f.fingerprint()
            if fp in by_fp:
                by_fp[fp]["count"] += 1
            else:
                by_fp[fp] = {
                    "rule": f.rule_id,
                    "path": f.path,
                    "qualname": f.qualname,
                    "context": f.context,
                    "message": f.message,
                    "count": 1,
                }
        document = {
            "schema": BASELINE_SCHEMA,
            "version": _VERSION,
            "findings": by_fp,
        }
        path = Path(path)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    def filter(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], int]:
        """Split findings into (new, baselined-count).

        Up to ``counts[fingerprint]`` occurrences of each fingerprint
        are absorbed (legacy fingerprints matched for version-1 files);
        the overflow is new.
        """
        budget = Counter(self.counts)
        legacy_budget = Counter(self.legacy_counts)
        fresh: list[Finding] = []
        absorbed = 0
        for f in sorted(findings):
            fp = f.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                absorbed += 1
                continue
            legacy = f.legacy_fingerprint()
            if legacy_budget[legacy] > 0:
                legacy_budget[legacy] -= 1
                absorbed += 1
                continue
            fresh.append(f)
        return fresh, absorbed

    def __len__(self) -> int:
        return sum(self.counts.values()) + sum(self.legacy_counts.values())
