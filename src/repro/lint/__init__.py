"""repro-lint: domain static analysis for the reproduction.

A full section of the source paper is devoted to bugs visible only by
inspecting generated code — the nvcc shallow pointer swap and the
register-array spill that silently wrecked the improved intra-task
kernel (Section III-A).  This package encodes that lesson as
machine-checked invariants over *this* codebase: aliased buffer swaps
in wavefront sweeps, dtype-unstable score arithmetic, unseeded
randomness inside the determinism contract, drift between emitted
counter/span names and their documented registry, swallowed executor
failures, and untyped/undocumented public API.

Pieces:

* :mod:`~repro.lint.rules` — the :class:`~repro.lint.rules.Rule`
  framework and the built-in ruleset: the heuristic family
  (``RPL101``..``RPL106``) plus the dataflow-backed family
  (``RPL107`` broadcast-mismatch, ``RPL108`` dtype-promotion,
  ``RPL109`` view-alias-mutation, ``RPL110`` pool-boundary);
* :mod:`~repro.lint.dataflow` — the intraprocedural abstract
  interpreter behind the second family: per-variable abstract dtype
  with NumPy promotion, symbolic shapes unified through broadcasting,
  and storage-set aliasing, joined at branch merges and iterated to a
  fixed point around loops;
* :mod:`~repro.lint.runner` — file discovery, AST dispatch, cross-file
  ``finish`` hooks, inline ``# repro-lint: disable=...`` suppressions,
  a process pool for per-file rules and the content-hash findings
  cache (``.repro-lint-cache/``);
* :mod:`~repro.lint.baseline` — the committed-findings ratchet;
* :mod:`~repro.lint.cli` — the ``repro-lint`` command (text / JSON /
  GitHub-annotation output, ``--jobs``/``--no-cache``, and ``--self``
  which also drives the interpreter over the linter's own sources).

See ``docs/static-analysis.md`` for the rule catalogue and workflow.
The package is stdlib-only on purpose: it must import (and run in CI)
without NumPy/SciPy present.
"""

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, all_rules, get_rule, rule_ids
from repro.lint.runner import LintResult, LintRunner

__all__ = [
    "Baseline",
    "Finding",
    "Severity",
    "FileContext",
    "Rule",
    "all_rules",
    "get_rule",
    "rule_ids",
    "LintResult",
    "LintRunner",
]
