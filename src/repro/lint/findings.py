"""Findings: what a rule reports, and how it serializes.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` identifies the *logical* violation for
baseline matching: it hashes the rule id, the file path, the enclosing
definition's qualname and the normalized source line the finding
anchors to — but neither the line number nor the message, so unrelated
edits that move a baselined finding (or reword a message that embeds a
line number) do not resurrect it.  The pre-PR 9 scheme hashed the
message instead; :meth:`Finding.legacy_fingerprint` keeps it available
so version-1 baselines still match until regenerated.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Severity", "Finding"]

_WS = re.compile(r"\s+")


def _normalize(text: str) -> str:
    """Strip all whitespace so formatting-only edits keep fingerprints."""
    return _WS.sub("", text)


class Severity(str, Enum):
    """How bad a finding is; drives exit codes and GitHub annotations."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str  #: repo-relative, '/'-separated
    line: int  #: 1-based; 0 for whole-file/project findings
    col: int  #: 0-based column offset
    rule_id: str  #: e.g. ``RPL103``
    rule_name: str  #: e.g. ``unseeded-random``
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)
    #: dotted name of the enclosing def/class ('' at module level).
    qualname: str = field(default="", compare=False)
    #: the normalized source line the finding anchors to.
    context: str = field(default="", compare=False)

    def fingerprint(self) -> str:
        """Stable id for baseline matching (line- and message-stable).

        Keyed on (rule, path, enclosing qualname, normalized source
        context); whole-file findings (no context) fall back to the
        message, which is all they have.
        """
        anchor = _normalize(self.context) or self.message
        key = f"{self.rule_id}::{self.path}::{self.qualname}::{anchor}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def legacy_fingerprint(self) -> str:
        """The pre-PR 9 fingerprint (rule + path + message)."""
        key = f"{self.rule_id}::{self.path}::{self.message}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the report schema's finding shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
            "qualname": self.qualname,
            "context": self.context,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache I/O)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule"]),
            rule_name=str(data["name"]),
            message=str(data["message"]),
            severity=Severity(data.get("severity", "error")),
            qualname=str(data.get("qualname", "")),
            context=str(data.get("context", "")),
        )

    def render_text(self) -> str:
        """The classic one-line ``path:line:col: ID message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def render_github(self) -> str:
        """A GitHub Actions workflow-command annotation line."""
        kind = "error" if self.severity is Severity.ERROR else "warning"
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::{kind} file={self.path},line={max(self.line, 1)},"
            f"col={self.col + 1},title={self.rule_id} {self.rule_name}::"
            f"{message}"
        )
