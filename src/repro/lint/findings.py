"""Findings: what a rule reports, and how it serializes.

A :class:`Finding` is one rule violation at one source location.  Its
:meth:`Finding.fingerprint` identifies the *logical* violation for
baseline matching: it hashes the rule id, the file path and the message
— but not the line number, so unrelated edits above a baselined finding
do not resurrect it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["Severity", "Finding"]


class Severity(str, Enum):
    """How bad a finding is; drives exit codes and GitHub annotations."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one location."""

    path: str  #: repo-relative, '/'-separated
    line: int  #: 1-based; 0 for whole-file/project findings
    col: int  #: 0-based column offset
    rule_id: str  #: e.g. ``RPL103``
    rule_name: str  #: e.g. ``unseeded-random``
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    def fingerprint(self) -> str:
        """Stable id for baseline matching (line-number insensitive)."""
        key = f"{self.rule_id}::{self.path}::{self.message}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the report schema's finding shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "severity": str(self.severity),
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    def render_text(self) -> str:
        """The classic one-line ``path:line:col: ID message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def render_github(self) -> str:
        """A GitHub Actions workflow-command annotation line."""
        kind = "error" if self.severity is Severity.ERROR else "warning"
        message = self.message.replace("%", "%25").replace("\n", "%0A")
        return (
            f"::{kind} file={self.path},line={max(self.line, 1)},"
            f"col={self.col + 1},title={self.rule_id} {self.rule_name}::"
            f"{message}"
        )
