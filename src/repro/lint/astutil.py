"""Small shared AST helpers used by several rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "call_name",
    "has_kwarg",
    "kwarg_value",
    "iter_functions",
    "str_arg",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``np.random.default_rng``)."""
    return dotted_name(node.func)


def has_kwarg(call: ast.Call, name: str) -> bool:
    """Whether ``call`` passes keyword argument ``name``."""
    return any(kw.arg == name for kw in call.keywords)


def kwarg_value(call: ast.Call, name: str) -> ast.expr | None:
    """The value expression of keyword ``name``, or ``None``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition anywhere in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def str_arg(call: ast.Call, index: int = 0) -> str | None:
    """The ``index``-th positional argument if it is a string literal."""
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None
