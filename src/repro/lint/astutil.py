"""Small shared AST helpers used by several rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "dotted_name",
    "call_name",
    "has_kwarg",
    "kwarg_value",
    "iter_functions",
    "str_arg",
    "qualname_index",
    "qualname_for_line",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """The dotted name a call targets (``np.random.default_rng``)."""
    return dotted_name(node.func)


def has_kwarg(call: ast.Call, name: str) -> bool:
    """Whether ``call`` passes keyword argument ``name``."""
    return any(kw.arg == name for kw in call.keywords)


def kwarg_value(call: ast.Call, name: str) -> ast.expr | None:
    """The value expression of keyword ``name``, or ``None``."""
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def iter_functions(
    tree: ast.AST,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition anywhere in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def qualname_index(tree: ast.AST) -> dict[int, str]:
    """``id(def-node) -> dotted qualname`` for every class/function.

    Nested scopes join with ``.`` (``Outer.method.closure``), which is
    what the baseline fingerprints and the dataflow analyses use to
    name a finding's enclosing definition stably across line moves.
    """
    out: dict[int, str] = {}

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                qualname = f"{prefix}.{child.name}" if prefix else child.name
                out[id(child)] = qualname
                walk(child, qualname)
            else:
                walk(child, prefix)

    walk(tree, "")
    return out


def qualname_for_line(tree: ast.AST, line: int) -> str:
    """The innermost class/function qualname containing ``line``.

    Returns ``""`` for module-level lines (and for ``line <= 0``).
    Callers cache the computed interval table on the file context; this
    helper recomputes it, so prefer
    :meth:`repro.lint.rules.base.FileContext.qualname_at` in rules.
    """
    if line <= 0:
        return ""
    best = ""
    best_span: int | None = None
    index = qualname_index(tree)
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        if node.lineno <= line <= end:
            span = end - node.lineno
            if best_span is None or span <= best_span:
                best = index.get(id(node), node.name)
                best_span = span
    return best


def str_arg(call: ast.Call, index: int = 0) -> str | None:
    """The ``index``-th positional argument if it is a string literal."""
    if len(call.args) > index:
        arg = call.args[index]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None
