"""RPL108: flow-sensitive dtype-promotion discipline.

The striped engine's 8/16-bit score tiers (SSW-style saturation) are
only correct while every operation stays in the lane width — NumPy
promotion is the enemy: ``uint8_array + int16_array`` silently yields
``int16``, the saturating clamps stop clamping, and the overflow re-run
logic never triggers because nothing overflows anymore.  The symmetric
bug hits the wide side: a hot-loop accumulator the engine contract pins
at ``int32`` picks up ``int64``/``float64`` through a stray operand and
doubles the sweep's memory traffic.

RPL102 catches allocation-site dtype omissions; this rule catches the
*flow* version using the abstract interpreter's widening events:

* a name bound to a saturating-tier array (``int8``/``uint8``/
  ``int16``) rebound to a strictly wider dtype — unless the widening is
  an explicit ``.astype(...)``, which is the sanctioned escape hatch
  (that is how the striped tier cascade deliberately re-runs overflowed
  lanes at 16 bits);
* an ``int32`` array that widens to ``int64``/``float`` across a loop
  back edge — the accumulator-promotion shape.

In-place ops (``+=``, ``out=``) never change a NumPy array's dtype, so
they never fire this rule; the striped ``uint8``
maximum-before-subtract idiom and the strips segmented carry pass
clean (both are fixture-tested).  Functions whose interpretation did
not converge are skipped.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import NARROW_DTYPES, file_analysis
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["DtypePromotionRule"]


@register
class DtypePromotionRule(Rule):
    """Flag silent widening of tiered arrays and loop accumulators."""

    id = "RPL108"
    name = "dtype-promotion"
    description = (
        "Saturating 8/16-bit tier array silently promoted to a wider "
        "dtype, or an int32 hot-loop accumulator widened to int64/float "
        "across a loop iteration: both change scores or memory traffic "
        "without crashing (use an explicit .astype for deliberate tier "
        "changes)"
    )
    scope = (
        "repro/engine/",
        "repro/kernels/",
        "repro/sw/",
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        module = file_analysis(ctx)
        for analysis in module.functions:
            if analysis.error is not None or not analysis.confident:
                continue
            for event in analysis.widen_events():
                if event.old in NARROW_DTYPES:
                    where = (
                        "across a loop iteration"
                        if event.via == "loop"
                        else "by this assignment"
                    )
                    yield self.finding(
                        ctx,
                        event.node,
                        f"saturating {event.old} array {event.name!r} in "
                        f"{analysis.qualname}() is silently promoted to "
                        f"{event.new} {where}: the tier's clamps stop "
                        f"saturating; widen explicitly with .astype or "
                        f"keep the operand in-tier",
                    )
                elif event.old == "int32" and event.via == "loop" and (
                    event.new in ("int64", "float")
                ):
                    yield self.finding(
                        ctx,
                        event.node,
                        f"int32 accumulator {event.name!r} in "
                        f"{analysis.qualname}() widens to {event.new} "
                        f"across a loop iteration: the engine contract "
                        f"pins hot-loop score accumulators at int32; pin "
                        f"the widening operand or cast explicitly",
                    )
