"""RPL107: operands whose symbolic shapes provably cannot broadcast.

The batched engines live on broadcasting — lane sweeps combine
``(lanes,)`` row vectors against ``(lanes, width)`` tiles every step —
and a mis-sized operand does not always crash: NumPy happily broadcasts
``(n, 1)`` against ``(m,)`` into ``(n, m)``, silently turning a lane
vector into a matrix and burying the score error under a reduction.

The dataflow interpreter (:mod:`repro.lint.dataflow`) seeds symbolic
shapes from allocation calls, ``.shape`` unpacking and slicing, and
checks every array-array operation.  A mismatch is only reported when
it is *provable*: both extents concrete integers, unequal, and neither
equal to 1 — symbolic dims unify rather than refute, so parameterized
shapes never false-positive.  Functions whose interpretation did not
converge are skipped entirely.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import Shape, file_analysis
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["BroadcastMismatchRule"]


def format_shape(shape: Shape) -> str:
    """``(3, n, ?)`` rendering of a symbolic shape."""
    if shape is None:
        return "(?)"
    dims = ", ".join("?" if d is None else str(d) for d in shape)
    if len(shape) == 1:
        dims += ","
    return f"({dims})"


@register
class BroadcastMismatchRule(Rule):
    """Flag array operations that provably cannot broadcast."""

    id = "RPL107"
    name = "broadcast-mismatch"
    description = (
        "Array operands whose inferred shapes provably cannot broadcast "
        "(concrete unequal extents, neither 1): the op either crashes at "
        "runtime or silently broadcasts into the wrong geometry"
    )
    scope = (
        "repro/engine/",
        "repro/kernels/",
        "repro/sw/",
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        module = file_analysis(ctx)
        for analysis in module.functions:
            if analysis.error is not None or not analysis.confident:
                continue
            for event in analysis.broadcast_events():
                left, right = event.dims
                yield self.finding(
                    ctx,
                    event.node,
                    f"operands with shapes {format_shape(event.left)} and "
                    f"{format_shape(event.right)} cannot broadcast in "
                    f"{analysis.qualname}(): extent {left} vs {right} "
                    f"(neither is 1)",
                )
