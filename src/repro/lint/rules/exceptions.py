"""RPL105: bare excepts and swallowed results in executor code paths.

The fault-tolerant executor's whole design is that *every* failure is
observed — counted, retried, or surfaced with partial results.  A bare
``except:`` (which also catches ``KeyboardInterrupt`` and
``SystemExit``) or an ``except ...: pass`` handler is the opposite: a
failure mode that vanishes without a counter increment or a retry,
exactly the "silently wrong" class the paper's Section III post-mortem
warns about.

Flagged, in engine/app/CLI modules:

* ``except:`` with no exception type, anywhere;
* any handler whose body is only ``pass``/``...``/``continue`` — the
  result (or the error) is swallowed.  Deliberate best-effort teardown
  paths carry an inline ``# repro-lint: disable=RPL105`` with a
  justification comment, which is the documented escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["ExceptSwallowRule"]


def _is_noop(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Pass, ast.Continue)):
        return True
    return isinstance(stmt, ast.Expr) and (
        isinstance(stmt.value, ast.Constant) and stmt.value.value is Ellipsis
    )


@register
class ExceptSwallowRule(Rule):
    """Flag bare excepts and pass-only handlers."""

    id = "RPL105"
    name = "except-swallow"
    description = (
        "Bare except:, or an exception handler that only passes: the "
        "failure disappears without a counter, retry or log"
    )
    scope = (
        "repro/engine/",
        "repro/app/",
        "repro/cli.py",
        "repro/obs/",
    )

    def visit_ExceptHandler(
        self, node: ast.ExceptHandler, ctx: FileContext
    ) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx,
                node,
                "bare except: catches KeyboardInterrupt/SystemExit too; "
                "name the exceptions this path can actually handle",
            )
            return
        if all(_is_noop(stmt) for stmt in node.body):
            yield self.finding(
                ctx,
                node,
                "exception swallowed: handler body is only pass — count "
                "it, retry it, or re-raise (suppress inline with a "
                "justification if this teardown is genuinely best-effort)",
            )
