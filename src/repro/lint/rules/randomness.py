"""RPL103: unseeded randomness in deterministic subsystems.

Determinism is a contract, not a style choice: the fault-tolerant
executor recomputes lost work and asserts bit-identical scores, the
equivalence suites compare engines on generated databases, and the
paper-exhibit pipeline must regenerate the same figures from the same
seeds.  A single unseeded draw anywhere in those paths makes failures
unreproducible.  Inside the scoped modules every random draw must flow
from an explicit ``rng`` parameter or seed:

* ``np.random.default_rng()`` / ``np.random.Generator(...)`` without a
  seed argument;
* any legacy global-state ``np.random.<fn>()`` call (``rand``,
  ``randint``, ``shuffle``, ``seed``, ...);
* module-level ``random.<fn>()`` calls and ``random.Random()`` with no
  seed.

Calls on an ``rng`` object that was passed in are fine — the seed
decision happened at the boundary, which is the point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import call_name
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["UnseededRandomRule"]

#: ``random`` module functions that read or mutate the global state.
_STDLIB_GLOBAL = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "triangular",
        "seed",
        "getrandbits",
        "randbytes",
    }
)


@register
class UnseededRandomRule(Rule):
    """Forbid unseeded RNG use where determinism is contractual."""

    id = "RPL103"
    name = "unseeded-random"
    description = (
        "Unseeded random/np.random call in a determinism-contract "
        "module: thread an explicit rng or seed parameter instead"
    )
    scope = (
        "repro/engine/",
        "repro/kernels/",
        "repro/sequence/synthetic.py",
        "repro/sequence/mutate.py",
    )

    def visit_Call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        name = call_name(node)
        if name is None:
            return
        seeded = bool(node.args) or bool(node.keywords)
        if name in ("np.random.default_rng", "numpy.random.default_rng"):
            if not seeded:
                yield self.finding(
                    ctx,
                    node,
                    "np.random.default_rng() without a seed: results "
                    "are unreproducible; accept an rng/seed parameter",
                )
            return
        if name.startswith(("np.random.", "numpy.random.")):
            yield self.finding(
                ctx,
                node,
                f"legacy global-state call {name}(): use an explicit "
                f"np.random.Generator threaded from the caller",
            )
            return
        if name == "random.Random":
            if not seeded:
                yield self.finding(
                    ctx,
                    node,
                    "random.Random() without a seed: pass an explicit "
                    "seed so retries/backoff replay deterministically",
                )
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and (
            parts[1] in _STDLIB_GLOBAL
        ):
            yield self.finding(
                ctx,
                node,
                f"global-state call {name}(): draw from an explicit "
                f"seeded random.Random/np.random.Generator instead",
            )
