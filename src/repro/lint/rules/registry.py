"""RPL104: counter/span/histogram names must match the documented registry.

``docs/observability.md`` is the contract for every counter, span and
histogram name the instrumentation emits — the reproduction's Table I
registry.  Nothing used to keep code and document in sync: a counter
renamed in ``engine/pack.py`` (or a new one added) silently orphaned
its documentation, and dashboards built on the documented names broke.

The document carries machine-readable registry sections delimited by
HTML comments::

    <!-- repro-lint:counter-registry -->
    | `engine.pack.groups` | ... |
    | `kernel.*` | ... |
    <!-- /repro-lint:counter-registry -->

(and the same with ``span-registry`` and ``histogram-registry``).  The
first backticked token on each line inside the markers is a registered
name (descriptions may backtick other identifiers freely); a trailing
``.*`` makes it a prefix wildcard, reserved for genuinely dynamic
families such as the per-kernel ``kernel.<name>.*`` ledger.

The rule enforces both directions:

* every string literal passed to ``instr.count(...)`` /
  ``instr.span(...)`` / ``instr.observe(...)`` in the source tree must
  be registered (exactly, or under a wildcard);
* every *exact* registered name must appear as a literal somewhere in
  the source tree — stale documentation fails the build too.  Wildcards
  are exempt from this direction, since their members are built at
  runtime.

By convention the ambient instrumentation handle is named ``instr``
(see ``repro.obs.context``); only calls through that name are
collected, so unrelated ``str.count`` / ``Span``-like APIs do not leak
into the registry.  A span name forwarded into a helper must travel as
an explicit ``span_name="..."`` keyword at the call site — that keeps
the literal statically visible to this rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.astutil import str_arg
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["CounterRegistryRule", "parse_registry"]

#: The doc carrying the registry sections, repo-relative.
REGISTRY_DOC = "docs/observability.md"

_MARKER = re.compile(
    r"<!--\s*repro-lint:(counter|span|histogram)-registry\s*-->"
    r"(.*?)"
    r"<!--\s*/repro-lint:\1-registry\s*-->",
    re.DOTALL,
)
_BACKTICKED = re.compile(r"`([^`\s]+)`")


def parse_registry(
    markdown: str,
) -> tuple[set[str], set[str], set[str], set[str]]:
    """Extract (exact counters, counter prefixes, span names, histogram
    names) from the registry sections of ``markdown``.

    Only the *first* backticked token of each line registers — table
    rows put the name in the first column and may mention classes or
    other identifiers in their description.  Prefixes come from
    ``name.*`` wildcard entries, with the ``*`` stripped (the dot is
    kept so ``kernel.*`` cannot accidentally cover ``kernelx``).
    """
    counters: set[str] = set()
    prefixes: set[str] = set()
    spans: set[str] = set()
    histograms: set[str] = set()
    for match in _MARKER.finditer(markdown):
        kind, body = match.group(1), match.group(2)
        for line in body.splitlines():
            first = _BACKTICKED.search(line)
            if first is None:
                continue
            token = first.group(1)
            if kind == "span":
                spans.add(token)
            elif kind == "histogram":
                histograms.add(token)
            elif token.endswith(".*"):
                prefixes.add(token[:-1])  # keep the trailing dot
            else:
                counters.add(token)
    return counters, prefixes, spans, histograms


@register
class CounterRegistryRule(Rule):
    """Reconcile instr.count/span/observe literals with
    docs/observability.md."""

    id = "RPL104"
    name = "counter-registry"
    description = (
        "Counter/span/histogram name used in code but absent from the "
        "docs/observability.md registry (or registered but unused): "
        "the observability contract drifted"
    )
    # Everything instrumented; the linter's own fixtures are excluded.
    scope = ("repro/",)

    def __init__(self) -> None:
        #: name -> first (ctx.path, node) using it.
        self.counters_used: dict[str, tuple[str, int, int]] = {}
        self.spans_used: dict[str, tuple[str, int, int]] = {}
        self.histograms_used: dict[str, tuple[str, int, int]] = {}

    def applies_to(self, ctx: FileContext) -> bool:
        if ctx.module_path.startswith("repro/lint/"):
            return False
        return super().applies_to(ctx)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        """Collect literals; reconciliation happens in :meth:`finish`."""
        # Span names forwarded into a helper travel as an explicit
        # span_name= keyword (the documented convention), so the
        # literal stays visible at the call site.
        for kw in node.keywords:
            if kw.arg == "span_name" and (
                isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                self.spans_used.setdefault(
                    kw.value.value,
                    (ctx.path, node.lineno, node.col_offset),
                )
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if not (
            isinstance(func.value, ast.Name) and func.value.id == "instr"
        ):
            return None
        if func.attr not in ("count", "span", "observe"):
            return None
        literal = str_arg(node)
        if literal is None:
            return None
        used = {
            "count": self.counters_used,
            "span": self.spans_used,
            "observe": self.histograms_used,
        }[func.attr]
        used.setdefault(literal, (ctx.path, node.lineno, node.col_offset))
        return None

    def finish(self, project) -> Iterator[Finding]:
        doc_path = project.root / REGISTRY_DOC
        if (
            not self.counters_used
            and not self.spans_used
            and not self.histograms_used
        ):
            return
        if not doc_path.is_file():
            yield self._doc_finding(
                f"instrumentation names are used but the registry "
                f"document {REGISTRY_DOC} does not exist",
            )
            return
        exact, prefixes, spans, histograms = parse_registry(
            doc_path.read_text(encoding="utf-8")
        )
        if not exact and not prefixes and not spans and not histograms:
            yield self._doc_finding(
                f"{REGISTRY_DOC} has no repro-lint registry sections "
                f"(<!-- repro-lint:counter-registry --> markers)",
            )
            return
        for name, (path, line, col) in sorted(self.counters_used.items()):
            if name in exact or any(name.startswith(p) for p in prefixes):
                continue
            yield Finding(
                path=path,
                line=line,
                col=col,
                rule_id=self.id,
                rule_name=self.name,
                message=(
                    f"counter {name!r} is not in the {REGISTRY_DOC} "
                    f"registry: document it (or fix the name)"
                ),
                severity=self.severity,
            )
        for name, (path, line, col) in sorted(self.spans_used.items()):
            if name in spans:
                continue
            yield Finding(
                path=path,
                line=line,
                col=col,
                rule_id=self.id,
                rule_name=self.name,
                message=(
                    f"span {name!r} is not in the {REGISTRY_DOC} "
                    f"registry: document it (or fix the name)"
                ),
                severity=self.severity,
            )
        for name, (path, line, col) in sorted(self.histograms_used.items()):
            if name in histograms:
                continue
            yield Finding(
                path=path,
                line=line,
                col=col,
                rule_id=self.id,
                rule_name=self.name,
                message=(
                    f"histogram {name!r} is not in the {REGISTRY_DOC} "
                    f"registry: document it (or fix the name)"
                ),
                severity=self.severity,
            )
        for name in sorted(exact - set(self.counters_used)):
            yield self._doc_finding(
                f"registered counter {name!r} is never emitted by the "
                f"linted sources: stale documentation (delete the entry "
                f"or restore the counter)",
            )
        for name in sorted(spans - set(self.spans_used)):
            yield self._doc_finding(
                f"registered span {name!r} is never opened by the "
                f"linted sources: stale documentation (delete the entry "
                f"or restore the span)",
            )
        for name in sorted(histograms - set(self.histograms_used)):
            yield self._doc_finding(
                f"registered histogram {name!r} is never observed by "
                f"the linted sources: stale documentation (delete the "
                f"entry or restore the histogram)",
            )

    def _doc_finding(self, message: str) -> Finding:
        return Finding(
            path=REGISTRY_DOC,
            line=0,
            col=0,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            severity=self.severity,
        )
