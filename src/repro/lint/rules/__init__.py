"""The rule framework and the built-in domain ruleset.

A :class:`Rule` inspects one parsed file at a time through
``visit_<NodeType>`` methods (dispatched over ``ast.walk``) or by
overriding :meth:`Rule.check_file` outright for flow-sensitive
analyses; cross-file rules additionally override :meth:`Rule.finish`,
which runs once after every file has been visited (the counter-registry
rule reconciles code against ``docs/observability.md`` there).

Rules self-register via :func:`register`; :func:`all_rules` instantiates
the full set.  Importing this package loads every built-in rule module.
"""

from repro.lint.rules.base import (
    FileContext,
    Rule,
    all_rules,
    get_rule,
    register,
    rule_ids,
)

# Import for the registration side effect: each module defines and
# registers its rule class.
from repro.lint.rules import (  # noqa: F401  (registration imports)
    aliasing,
    api_docs,
    broadcast,
    dtypes,
    exceptions,
    poolsafety,
    promotion,
    randomness,
    registry,
    view_alias,
)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
]
