"""RPL106: public-API docstring and annotation coverage for repro.app.

``repro.app`` is the layer user code imports (``CudaSW``,
``search_batch``, ``SearchResult``); its surface is the contract the
README and docs teach.  Every public module-level function, class, and
public method there must carry a docstring, and every public function
and method must be fully annotated (parameters and return type) —
that's also what keeps mypy's strict gate meaningful.

Exemptions: ``_private`` names, dunder methods other than ``__init__``
(``__init__`` still needs annotations — it is the constructor signature
users call — but the class docstring covers it), and ``@overload``
stubs.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["PublicApiDocsRule"]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.add(name.split(".")[-1])
    return names


def _missing_annotations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[str]:
    missing = []
    args = fn.args
    positional = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    for i, arg in enumerate(positional):
        if i == 0 and arg.arg in ("self", "cls"):
            continue
        if arg.annotation is None:
            missing.append(arg.arg)
    if args.vararg is not None and args.vararg.annotation is None:
        missing.append("*" + args.vararg.arg)
    if args.kwarg is not None and args.kwarg.annotation is None:
        missing.append("**" + args.kwarg.arg)
    if fn.returns is None:
        missing.append("return")
    return missing


@register
class PublicApiDocsRule(Rule):
    """Docstring + type coverage of the repro.app public surface."""

    id = "RPL106"
    name = "public-api-docs"
    description = (
        "Public repro.app function/class/method without a docstring or "
        "with incomplete type annotations"
    )
    scope = ("repro/app/",)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(stmt.name):
                    yield from self._check_function(ctx, stmt, stmt.name)
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                yield from self._check_class(ctx, stmt)

    def _check_class(
        self, ctx: FileContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        if ast.get_docstring(cls) is None:
            yield self.finding(
                ctx, cls, f"public class {cls.name} has no docstring"
            )
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            qualname = f"{cls.name}.{stmt.name}"
            if stmt.name == "__init__":
                yield from self._check_function(
                    ctx, stmt, qualname, need_docstring=False
                )
            elif _is_public(stmt.name):
                yield from self._check_function(ctx, stmt, qualname)

    def _check_function(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        *,
        need_docstring: bool = True,
    ) -> Iterator[Finding]:
        if "overload" in _decorator_names(fn):
            return
        if need_docstring and ast.get_docstring(fn) is None:
            yield self.finding(
                ctx, fn, f"public {qualname}() has no docstring"
            )
        missing = _missing_annotations(fn)
        if missing:
            yield self.finding(
                ctx,
                fn,
                f"public {qualname}() has unannotated "
                f"{', '.join(missing)}",
            )
