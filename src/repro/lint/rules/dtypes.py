"""RPL102: score-array dtype stability in the DP hot paths.

Striped/SIMD Smith-Waterman implementations live on saturation and
width discipline (SSW, SWIPE: scores are only correct while they fit
the lane width).  The NumPy analogue: an array allocated *without* an
explicit ``dtype`` silently becomes ``float64`` (or the platform
default integer, which is ``int32`` on Windows and ``int64`` on Linux),
so score arithmetic either loses integer exactness or changes overflow
behavior between platforms.  Every allocation on a scoring hot path
must pin its dtype at the call site.

``*_like`` constructors are exempt: they inherit the (already pinned)
dtype of their prototype.

The rule's second check guards the other edge of width discipline:
8-bit lanes that *are* pinned can still silently wrap.  NumPy integer
arithmetic wraps modulo 2**8 with no warning by default, so a plain
``np.add``/``+`` on an ``int8``/``uint8`` array is only correct inside
a saturation discipline — the ``np.maximum``-before-``np.subtract``
saturating idiom and the per-column ``np.minimum`` cap clip of
:mod:`repro.engine.striped` are the sanctioned shapes.  A function
that allocates an 8-bit array and runs wrap-prone arithmetic on it
without any clamp (``np.minimum``/``np.maximum``/``np.clip``)
touching its narrow arrays is flagged; a single clamp marks the
function as saturation-disciplined (the check is deliberately
function-granular and flow-insensitive, like every other rule here).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name, has_kwarg, kwarg_value
from repro.lint.dataflow import file_analysis, subtree_analyses
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["DtypeStabilityRule"]

#: Constructors that take a dtype and default it when omitted.
_NEEDS_DTYPE = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "array", "asarray"}
)

#: Dtype spellings that denote wrap-prone 8-bit lanes.
_NARROW_DTYPES = frozenset({"int8", "uint8"})

#: Elementwise ufuncs whose integer overflow wraps silently.
_WRAP_UFUNCS = frozenset({"add", "subtract", "multiply"})

#: Clamp ufuncs that implement the saturating idiom.
_GUARD_UFUNCS = frozenset({"minimum", "maximum", "clip"})

_WRAP_BINOPS = (ast.Add, ast.Sub, ast.Mult)


def _is_narrow_dtype(node: ast.expr | None) -> bool:
    """Whether a ``dtype=`` value statically names an 8-bit lane type."""
    if node is None:
        return False
    name = dotted_name(node)
    if name is not None:
        parts = name.split(".")
        return (
            len(parts) == 2
            and parts[0] in ("np", "numpy")
            and parts[1] in _NARROW_DTYPES
        )
    return isinstance(node, ast.Constant) and node.value in _NARROW_DTYPES


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` under a Subscript/Attribute chain
    (``f[:, 0, 1:]`` -> ``f``), else ``None``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class DtypeStabilityRule(Rule):
    """Flag NumPy allocations without an explicit dtype in hot loops."""

    id = "RPL102"
    name = "dtype-stability"
    description = (
        "NumPy array allocated without an explicit dtype= in a scoring "
        "hot path, or unguarded int8/uint8 arithmetic that can wrap "
        "without a saturation clamp: silent promotion and silent "
        "wraparound both change scores without crashing"
    )
    scope = (
        "repro/kernels/",
        "repro/engine/lanes.py",
        "repro/engine/striped.py",
        "repro/sw/",
    )

    def visit_Call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # Only numpy-module constructors (np.zeros / numpy.zeros); bare
        # zeros() or method calls named array() are someone else's.
        if len(parts) != 2 or parts[0] not in ("np", "numpy"):
            return
        if parts[1] not in _NEEDS_DTYPE:
            return
        if has_kwarg(node, "dtype"):
            return
        yield self.finding(
            ctx,
            node,
            f"np.{parts[1]}(...) without an explicit dtype= on a "
            f"scoring hot path: pin the score dtype at allocation",
        )

    def visit_Module(
        self, node: ast.Module, ctx: FileContext
    ) -> Iterator[Finding]:
        # The wrap check is function-granular: closures share their
        # enclosing function's arrays (and its clamps), so each
        # *outermost* function is analyzed with its whole subtree and
        # nested defs are skipped as separate units.
        nested: set[ast.AST] = set()
        functions = [
            n
            for n in ast.walk(node)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in functions:
            for sub in ast.walk(fn):
                if sub is not fn and isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    nested.add(sub)
        for fn in functions:
            if fn not in nested:
                yield from self._check_wrap(fn, ctx)

    def _check_wrap(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> Iterator[Finding]:
        """Flag wrap-prone 8-bit arithmetic in a clamp-free function."""
        narrow = self._resolve_narrow(fn, ctx)
        if not narrow or self._has_saturation_guard(fn, narrow):
            return
        for sub in ast.walk(fn):
            if isinstance(sub, ast.BinOp) and isinstance(
                sub.op, _WRAP_BINOPS
            ):
                name = self._narrow_operand(
                    narrow, sub.left, sub.right
                )
                if name is not None:
                    yield self._wrap_finding(ctx, sub, name, "+/-/*")
            elif isinstance(sub, ast.AugAssign) and isinstance(
                sub.op, _WRAP_BINOPS
            ):
                name = self._narrow_operand(narrow, sub.target, sub.value)
                if name is not None:
                    yield self._wrap_finding(ctx, sub, name, "+=/-=/*=")
            elif isinstance(sub, ast.Call):
                ufunc = self._numpy_func(sub)
                if ufunc in _WRAP_UFUNCS:
                    name = self._narrow_operand(
                        narrow,
                        *sub.args,
                        *(kw.value for kw in sub.keywords),
                    )
                    if name is not None:
                        yield self._wrap_finding(
                            ctx, sub, name, f"np.{ufunc}"
                        )

    def _resolve_narrow(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        ctx: FileContext,
    ) -> frozenset[str]:
        """Names bound to 8-bit arrays anywhere in ``fn``'s subtree.

        The abstract interpreter's set is preferred when every unit in
        the subtree converged: it follows dtype through rebinding,
        ``*_like`` prototypes and views, which the static scan cannot.
        Non-converged functions fall back to the allocation-site scan.
        """
        confident, analyses = subtree_analyses(file_analysis(ctx), fn)
        if confident:
            narrow: set[str] = set()
            for analysis in analyses:
                narrow.update(analysis.narrow_names)
            return frozenset(narrow)
        return self._narrow_names(fn)

    @staticmethod
    def _narrow_names(
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> frozenset[str]:
        """Local names statically bound to 8-bit arrays: allocator
        calls with a narrow ``dtype=`` and ``.astype(np.uint8)``."""
        names = set()
        for sub in ast.walk(fn):
            if not (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Call)
            ):
                continue
            call = sub.value
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "astype":
                cast_to = call.args[0] if call.args else None
                if _is_narrow_dtype(cast_to):
                    names.add(sub.targets[0].id)
            elif _is_narrow_dtype(kwarg_value(call, "dtype")):
                names.add(sub.targets[0].id)
        return frozenset(names)

    def _has_saturation_guard(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        narrow: frozenset[str],
    ) -> bool:
        """Whether any clamp in ``fn`` touches a narrow array — the
        marker that the function runs a saturation discipline."""
        for sub in ast.walk(fn):
            if not isinstance(sub, ast.Call):
                continue
            ufunc = self._numpy_func(sub)
            is_clip_method = (
                isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "clip"
                and _root_name(sub.func.value) in narrow
            )
            if is_clip_method:
                return True
            if ufunc in _GUARD_UFUNCS and (
                self._narrow_operand(
                    narrow,
                    *sub.args,
                    *(kw.value for kw in sub.keywords),
                )
                is not None
            ):
                return True
        return False

    @staticmethod
    def _numpy_func(call: ast.Call) -> str | None:
        """``"add"`` for ``np.add(...)``/``numpy.add(...)``, else
        ``None``."""
        name = dotted_name(call.func)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in ("np", "numpy"):
            return parts[1]
        return None

    @staticmethod
    def _narrow_operand(
        narrow: frozenset[str], *operands: ast.expr
    ) -> str | None:
        """The first operand rooted in a narrow name, if any."""
        for operand in operands:
            name = _root_name(operand)
            if name in narrow:
                return name
        return None

    def _wrap_finding(
        self, ctx: FileContext, node: ast.AST, name: str, op: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"unguarded {op} on 8-bit array {name!r}: int8/uint8 "
            f"arithmetic wraps silently; clamp with np.maximum/"
            f"np.minimum/np.clip (saturating idiom) or widen first",
        )
