"""RPL102: score-array dtype stability in the DP hot paths.

Striped/SIMD Smith-Waterman implementations live on saturation and
width discipline (SSW, SWIPE: scores are only correct while they fit
the lane width).  The NumPy analogue: an array allocated *without* an
explicit ``dtype`` silently becomes ``float64`` (or the platform
default integer, which is ``int32`` on Windows and ``int64`` on Linux),
so score arithmetic either loses integer exactness or changes overflow
behavior between platforms.  Every allocation on a scoring hot path
must pin its dtype at the call site.

``*_like`` constructors are exempt: they inherit the (already pinned)
dtype of their prototype.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name, has_kwarg
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["DtypeStabilityRule"]

#: Constructors that take a dtype and default it when omitted.
_NEEDS_DTYPE = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "array", "asarray"}
)


@register
class DtypeStabilityRule(Rule):
    """Flag NumPy allocations without an explicit dtype in hot loops."""

    id = "RPL102"
    name = "dtype-stability"
    description = (
        "NumPy array allocated without an explicit dtype= in a scoring "
        "hot path: silent float64/platform-int promotion changes "
        "overflow behavior and integer exactness"
    )
    scope = (
        "repro/kernels/",
        "repro/engine/lanes.py",
        "repro/sw/",
    )

    def visit_Call(
        self, node: ast.Call, ctx: FileContext
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        # Only numpy-module constructors (np.zeros / numpy.zeros); bare
        # zeros() or method calls named array() are someone else's.
        if len(parts) != 2 or parts[0] not in ("np", "numpy"):
            return
        if parts[1] not in _NEEDS_DTYPE:
            return
        if has_kwarg(node, "dtype"):
            return
        yield self.finding(
            ctx,
            node,
            f"np.{parts[1]}(...) without an explicit dtype= on a "
            f"scoring hot path: pin the score dtype at allocation",
        )
