"""RPL110: pool-boundary safety for executor chunk dispatch.

Everything that crosses ``pool.submit`` / ``ProcessPoolExecutor``
dispatch is pickled into a worker process.  Three mistakes survive
review because they *work on the happy path*:

* **unpicklable cargo** — an ``Instrumentation`` handle, a counter/
  span/histogram registry, an open file or a lock smuggled into a
  chunk payload either crashes at submit time or (worse, with fork)
  silently ships a *copy* whose updates never come back;
* **closure dispatch** — a locally-defined function or lambda passed
  as the task: the pickle protocol cannot serialize nested functions,
  and with a thread pool it runs but shares parent state;
* **parent-state mutation** — a worker-side callable that writes to
  enclosing-scope variables, which mutates a forked copy (lost
  silently) or races the parent (threads).

The shipped protocol — module-level ``_score_chunk_task`` +
``_init_worker`` installing ``_WORKER_STATE``, results merged
parent-side from a returned ``WorkerTelemetry`` value — passes clean:
module-level callables resolve to no local ``func`` value, worker
globals are installed via ``initializer=``, and ``WorkerTelemetry`` is
a plain picklable dataclass that crosses the boundary as a *return*
value, exactly once.

Dispatch sites are recognized by shape: ``<receiver>.submit/map/
apply_async/starmap(...)`` where the receiver's root name mentions
``pool`` or ``executor``, plus ``ProcessPoolExecutor(...)`` /
``Pool(...)`` constructors (whose ``initializer``/``initargs`` are
checked like a submission).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.dataflow import AbstractValue, CallEvent, file_analysis
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["PoolBoundaryRule"]

_DISPATCH_METHODS = frozenset(
    {"submit", "map", "apply_async", "apply", "starmap", "imap",
     "imap_unordered"}
)
_POOL_CONSTRUCTORS = frozenset({"ProcessPoolExecutor", "Pool"})

#: Constructor names whose instances must never cross the boundary.
_UNPICKLABLE = frozenset(
    {
        "Instrumentation",
        "CounterRegistry",
        "SpanTracer",
        "HistogramRegistry",
        "MemoryPhases",
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Thread",
        "file",  # the open(...) result
        "TextIOWrapper",
        "BufferedReader",
        "BufferedWriter",
    }
)


def _receiver_root(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Call)):
        node = node.func if isinstance(node, ast.Call) else node.value
    return node.id if isinstance(node, ast.Name) else None


def _is_pool_receiver(call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr not in _DISPATCH_METHODS:
        return False
    root = _receiver_root(call.func.value)
    if root is None:
        return False
    lowered = root.lower()
    return "pool" in lowered or "executor" in lowered


def _closure_mutations(fn: ast.AST) -> list[str]:
    """Enclosing-scope names an inner callable writes to.

    Local names are the parameters plus anything bound by a plain
    assignment inside the callable; a subscript store, augmented
    assignment, ``out=`` target or ``nonlocal`` rebinding of any
    *other* name reaches into the parent frame.
    """
    if isinstance(fn, ast.Lambda):
        return []
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    args = fn.args
    local = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *( (args.vararg,) if args.vararg else () ),
            *( (args.kwarg,) if args.kwarg else () ),
        )
    }
    nonlocals: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Nonlocal):
            nonlocals.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    local.add(target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                local.add(node.target.id)

    def root(node: ast.expr) -> str | None:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    mutated: list[str] = []

    def note(name: str | None) -> None:
        if name is not None and name not in local and name not in mutated:
            mutated.append(name)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    note(root(target))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                note(root(node.target))
            elif isinstance(node.target, ast.Name):
                if node.target.id in nonlocals:
                    note(node.target.id)
                # A bare augmented assignment of a free name is a
                # NameError at runtime unless nonlocal/global - skip.
        elif isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "out":
                    note(root(kw.value))
    mutated.extend(n for n in nonlocals if n not in mutated)
    return mutated


@register
class PoolBoundaryRule(Rule):
    """Flag unpicklable or parent-coupled state crossing pool dispatch."""

    id = "RPL110"
    name = "pool-boundary"
    description = (
        "Unpicklable object (Instrumentation/registry/file/lock), "
        "locally-defined callable, or parent-state-mutating worker "
        "function crossing a process-pool dispatch boundary: ship "
        "module-level callables and plain data, merge results "
        "parent-side (the WorkerTelemetry return protocol)"
    )
    scope = (
        "repro/engine/",
        "repro/app/",
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        module = file_analysis(ctx)
        for analysis in module.functions:
            if analysis.error is not None:
                continue
            for event in analysis.call_events():
                yield from self._check_event(ctx, analysis.qualname, event)

    # ------------------------------------------------------------------
    def _check_event(
        self, ctx: FileContext, qualname: str, event: CallEvent
    ) -> Iterator[Finding]:
        call = event.node
        if _is_pool_receiver(call):
            method = call.func.attr  # type: ignore[union-attr]
            if event.args:
                yield from self._check_callable(
                    ctx, qualname, call, method, call.args[0], event.args[0]
                )
            for expr, value in zip(call.args[1:], event.args[1:]):
                yield from self._check_payload(
                    ctx, qualname, method, expr, value
                )
            for (name, value), kw in zip(
                event.keywords,
                [k for k in call.keywords if k.arg is not None],
            ):
                yield from self._check_payload(
                    ctx, qualname, method, kw.value, value
                )
            return
        leaf = (event.func_name or "").split(".")[-1]
        if leaf in _POOL_CONSTRUCTORS:
            kwmap = dict(event.keywords)
            for kw in call.keywords:
                if kw.arg == "initializer":
                    yield from self._check_callable(
                        ctx, qualname, call, "initializer=", kw.value,
                        kwmap.get("initializer", AbstractValue()),
                    )
                elif kw.arg == "initargs":
                    yield from self._check_payload(
                        ctx, qualname, "initargs=", kw.value,
                        kwmap.get("initargs", AbstractValue()),
                    )

    def _check_callable(
        self,
        ctx: FileContext,
        qualname: str,
        call: ast.Call,
        how: str,
        expr: ast.expr,
        value: AbstractValue,
    ) -> Iterator[Finding]:
        fn_node = value.func_node if value.kind == "func" else None
        if isinstance(expr, ast.Lambda):
            fn_node = expr
        if fn_node is None:
            return
        label = (
            "lambda"
            if isinstance(fn_node, ast.Lambda)
            else f"locally-defined function {getattr(fn_node, 'name', '?')!r}"
        )
        yield self.finding(
            ctx,
            call,
            f"{label} passed to {how} in {qualname}(): nested callables "
            f"do not pickle across a process-pool boundary; move the "
            f"worker function to module level and ship its state via "
            f"initargs",
        )
        mutated = _closure_mutations(fn_node)
        if mutated:
            names = ", ".join(repr(n) for n in sorted(mutated))
            yield self.finding(
                ctx,
                call,
                f"worker-side callable passed to {how} in {qualname}() "
                f"mutates parent-scope state ({names}): the write lands "
                f"in a forked copy (silently lost) or races the parent; "
                f"return results and merge them parent-side instead",
            )

    def _check_payload(
        self,
        ctx: FileContext,
        qualname: str,
        how: str,
        expr: ast.expr,
        value: AbstractValue,
        depth: int = 0,
    ) -> Iterator[Finding]:
        if value.kind == "object" and value.classname in _UNPICKLABLE:
            article = "an" if value.classname[:1].lower() in "aeiou" else "a"
            yield self.finding(
                ctx,
                expr,
                f"{article} {value.classname} instance flows into {how} "
                f"in {qualname}(): it does not survive the process-pool "
                f"pickle boundary (or silently forks a divergent copy); "
                f"pass plain data and merge worker results parent-side "
                f"(the WorkerTelemetry protocol)",
            )
            return
        if value.kind == "func" and value.func_node is not None:
            yield self.finding(
                ctx,
                expr,
                f"locally-defined callable flows into {how} in "
                f"{qualname}(): nested callables do not pickle across a "
                f"process-pool boundary",
            )
            return
        if value.kind == "tuple" and value.elements is not None and depth < 3:
            exprs: list[ast.expr]
            if isinstance(expr, (ast.Tuple, ast.List)) and len(
                expr.elts
            ) == len(value.elements):
                exprs = list(expr.elts)
            else:
                exprs = [expr] * len(value.elements)
            for sub_expr, sub_value in zip(exprs, value.elements):
                yield from self._check_payload(
                    ctx, qualname, how, sub_expr, sub_value, depth + 1
                )
