"""RPL109: flow-sensitive view/alias mutation — Section III-A, precise.

The paper's costliest bug: swapping *pointers* to the register arrays
instead of their contents (Section III-A) silently demoted the improved
kernel's tile state to local memory.  The NumPy rendition — ``prev =
cur`` followed anywhere later by an in-place update of either name —
corrupts two wavefront rows at once, and only on inputs where the
clobbered cells mattered.

RPL101 catches this with single-pass heuristics (allocation-site names,
a later-line check).  This rule is the dataflow replacement: the
interpreter gives every allocation a storage id, propagates may-overlap
sets through rebinding, branches and loops, and records a *bare-name
alias pair* for each ``a = b`` whose right side is an array.  A
mutation fires only when the mutated memory is still shared by a live
pair — which is exactly what distinguishes the bug from the sanctioned
idioms:

* ``h, hbuf = hbuf, h`` — simultaneous tuple exchange; no pair is
  recorded (the right side is evaluated against the pre-assignment
  state), and after the swap the names hold *different* buffers anyway.
* ``carry = tmp[:, 1:]`` — an explicit slice view; deliberate
  windowing creates no bare-name pair.
* ``prev = cur`` where ``cur`` is immediately rebound to a fresh
  buffer — the pair's storage sets no longer overlap at mutation time,
  so the fresh-buffer rotation stays clean.

Mutation through a third name (a view taken off either partner) is
still caught: the check is on storage overlap, not on the mutated
name's spelling.  Functions whose interpretation did not converge are
skipped — RPL101's heuristics still cover them.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.dataflow import file_analysis
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["ViewAliasMutationRule"]


@register
class ViewAliasMutationRule(Rule):
    """Flag in-place mutation of memory shared through a bare alias."""

    id = "RPL109"
    name = "view-alias-mutation"
    description = (
        "In-place mutation of an array whose buffer is still shared "
        "through a bare-name rebinding (prev = cur), tracked "
        "flow-sensitively through branches, loops and views — the "
        "Section III-A shallow-swap bug; exchange with a simultaneous "
        "tuple assignment or take an explicit .copy()"
    )
    scope = (
        "repro/engine/",
        "repro/kernels/",
        "repro/sw/",
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        module = file_analysis(ctx)
        for analysis in module.functions:
            if analysis.error is not None or not analysis.confident:
                continue
            for event in analysis.alias_events():
                yield self.finding(
                    ctx,
                    event.node,
                    f"in-place mutation ({event.how}) of {event.name!r} in "
                    f"{analysis.qualname}() hits a buffer still aliased by "
                    f"{event.other!r} (bare rebinding on line "
                    f"{event.alias_node.lineno}): a shallow swap — "
                    f"exchange with a simultaneous tuple assignment or "
                    f"take an explicit .copy()",
                )
