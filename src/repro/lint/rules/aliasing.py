"""RPL101: shallow buffer swaps and parameter-aliasing mutations.

The Python analogue of the paper's nvcc "shallow swap" pitfall
(Section III-A): swapping *pointers* to register arrays instead of their
contents silently demoted the improved kernel's tile state to local
memory.  In a NumPy wavefront sweep the same move — rebinding a name to
an existing buffer (``prev = cur``) instead of exchanging or copying —
creates an alias, and the next in-place update (``cur[...] = ``,
``np.maximum(..., out=cur)``, ``cur += ``) corrupts both rows at once.
The bug is silent: scores drift only on inputs where the clobbered
cells mattered.

Two patterns are flagged, per function:

* a plain assignment ``a = b`` (or ``a = b[...]``, a view) where ``b``
  is a NumPy buffer allocated in the same function, and either name is
  mutated in place on a *later* line — the alias and the mutation
  together are the hazard.  Simultaneous tuple rotations
  (``a, b = b, a``), which exchange bindings without creating a shared
  dangling alias, and explicit ``.copy()`` are the sanctioned idioms.
* an in-place mutation of a bare function parameter (subscript store,
  augmented assignment, or ``out=param``) — the caller's array, which
  may be a cached or shared buffer, is silently modified.

The later-line requirement keeps the rule precise: rebinding a buffer
that is never touched again (the fresh-buffer rotation in the
antidiagonal sweep) is the *fix* for this bug class, not an instance of
it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.astutil import dotted_name, iter_functions
from repro.lint.dataflow import (
    ModuleAnalysis,
    file_analysis,
    subtree_analyses,
)
from repro.lint.findings import Finding
from repro.lint.rules.base import FileContext, Rule, register

__all__ = ["ShallowSwapRule"]

#: NumPy allocation constructors whose result is a mutable buffer.
_ALLOCATORS = frozenset(
    {
        "zeros",
        "ones",
        "empty",
        "full",
        "zeros_like",
        "ones_like",
        "empty_like",
        "full_like",
        "arange",
        "array",
    }
)


def _is_allocation(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _ALLOCATORS


def _base_name(node: ast.expr) -> str | None:
    """The root variable of ``x``, ``x[...]`` or ``x.attr`` chains."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FunctionScan:
    """One pass over a function body collecting the facts the rule needs."""

    def __init__(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        args = fn.args
        self.params = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs
            )
            if a.arg not in ("self", "cls")
        }
        self.buffers: set[str] = set()
        #: name -> line numbers of in-place mutations of that name.
        self.mutations: dict[str, list[int]] = {}
        #: (node, target, source, is_view) of plain alias assignments.
        self.aliases: list[tuple[ast.Assign, str, str, bool]] = []
        #: in-place mutations hitting parameters: (node, param, how).
        self.param_mutations: list[tuple[ast.AST, str, str]] = []
        self._walk(fn)

    def _mutate(self, name: str | None, node: ast.AST, how: str) -> None:
        if name is None:
            return
        self.mutations.setdefault(name, []).append(node.lineno)
        if name in self.params:
            self.param_mutations.append((node, name, how))

    def _walk(self, fn: ast.AST) -> None:
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                self._scan_assign(node)
            elif isinstance(node, ast.AugAssign):
                # Attribute targets (obj.field += x) mutate an object's
                # field — the accumulator pattern, not array aliasing.
                if not isinstance(node.target, ast.Attribute):
                    self._mutate(
                        _base_name(node.target), node, "augmented assignment"
                    )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg == "out" and isinstance(kw.value, ast.Name):
                        self._mutate(
                            kw.value.id, node, "out= argument"
                        )

    def _scan_assign(self, node: ast.Assign) -> None:
        # Subscript stores are in-place mutations of the base buffer.
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._mutate(_base_name(target), node, "subscript store")

        # Simultaneous tuple exchanges (a, b = b, a and longer
        # rotations) rebind without leaving a stale alias: the names on
        # both sides are the same set.
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Tuple)
            and isinstance(node.value, ast.Tuple)
        ):
            tgt_names = [
                elt.id
                for elt in node.targets[0].elts
                if isinstance(elt, ast.Name)
            ]
            src_names = [
                elt.id
                for elt in node.value.elts
                if isinstance(elt, ast.Name)
            ]
            if (
                len(tgt_names) == len(node.targets[0].elts)
                and len(src_names) == len(node.value.elts)
                and set(tgt_names) == set(src_names)
            ):
                return

        # Buffer allocations introduce buffer names.
        if _is_allocation(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.buffers.add(target.id)
            return

        # Plain alias: name = buffer (or a view of one).
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            source = node.value
            is_view = isinstance(source, ast.Subscript)
            if is_view:
                source = source.value
            if isinstance(source, ast.Name):
                self.aliases.append(
                    (node, node.targets[0].id, source.id, is_view)
                )


@register
class ShallowSwapRule(Rule):
    """Flag view-rebinding buffer rotations and parameter mutations."""

    id = "RPL101"
    name = "shallow-swap"
    description = (
        "Wavefront buffer rebound as an alias/view and later mutated in "
        "place, or an in-place op applied to a function parameter "
        "(the nvcc shallow-pointer-swap bug, in NumPy form)"
    )
    scope = (
        "repro/sw/",
        "repro/engine/lanes.py",
        "repro/kernels/",
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        module = file_analysis(ctx)
        for fn in iter_functions(ctx.tree):
            scan = _FunctionScan(fn)
            yield from self._check_aliases(ctx, fn, scan, module)
            for node, param, how in scan.param_mutations:
                yield self.finding(
                    ctx,
                    node,
                    f"in-place mutation ({how}) of parameter {param!r} "
                    f"in {fn.name}(): the caller's array is modified; "
                    f"operate on a copy or document ownership transfer",
                )

    def _check_aliases(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        scan: _FunctionScan,
        module: ModuleAnalysis,
    ) -> Iterator[Finding]:
        # When the abstract interpreter converged on this function we
        # trust its flow-sensitive verdict for bare-name aliases: a
        # heuristic candidate is kept only if dataflow saw a mutation
        # while the pair's storage was still shared (which also kills
        # false positives the later-line check cannot — e.g. the alias
        # partner rebound to a fresh buffer before the mutation).  View
        # aliases (``a = b[...]``) stay on the heuristic path: deliberate
        # windowing never records a dataflow pair.
        confident, analyses = subtree_analyses(module, fn)
        confirmed_lines: set[int] | None = None
        if confident:
            confirmed_lines = {
                event.alias_node.lineno
                for analysis in analyses
                for event in analysis.alias_events()
            }
        for node, target, source, is_view in scan.aliases:
            if source not in scan.buffers:
                continue
            if confirmed_lines is not None and not is_view:
                if node.lineno not in confirmed_lines:
                    continue
            for name in (source, target):
                later = [
                    ln
                    for ln in scan.mutations.get(name, ())
                    if ln > node.lineno
                ]
                if later:
                    yield self.finding(
                        ctx,
                        node,
                        f"{target!r} aliases buffer {source!r} in "
                        f"{fn.name}() but {name!r} is mutated in place "
                        f"on line {later[0]}: a shallow swap — exchange "
                        f"with a simultaneous tuple assignment or take "
                        f"an explicit .copy()",
                    )
                    break
