"""Rule base class, visitor dispatch and the rule registry."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.lint.astutil import qualname_index
from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lint.runner import Project

__all__ = [
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
]


@dataclass
class FileContext:
    """One parsed source file as the rules see it.

    ``module_path`` is the path from the innermost ``repro/`` package
    root onward (``repro/engine/lanes.py``), which is what rule scopes
    match against — so the same file scopes identically whether the
    linter was pointed at ``src/``, ``src/repro/engine`` or a checkout
    living somewhere else entirely.
    """

    path: str  #: as reported in findings (repo-relative when possible)
    module_path: str  #: scope-matching path, '/'-separated
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: per-file scratch shared between rules (dataflow analyses,
    #: qualname tables) so each expensive pass runs at most once.
    cache: dict[str, Any] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def qualname_at(self, line: int) -> str:
        """Innermost def/class qualname containing ``line`` ('' if none)."""
        spans = self.cache.get("qualname_spans")
        if spans is None:
            index = qualname_index(self.tree)
            spans = sorted(
                (
                    node.lineno,
                    getattr(node, "end_lineno", None) or node.lineno,
                    index.get(id(node), ""),
                )
                for node in ast.walk(self.tree)
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                )
            )
            self.cache["qualname_spans"] = spans
        best = ""
        best_span: int | None = None
        for start, end, qualname in spans:
            if start > line:
                break
            if line <= end and (best_span is None or end - start <= best_span):
                best = qualname
                best_span = end - start
        return best

    def context_line(self, line: int) -> str:
        """The source line at 1-based ``line`` ('' out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


class Rule:
    """Base class: one named, scoped static check.

    Subclasses set the class attributes and either define
    ``visit_<NodeType>(node, ctx)`` methods (each may return an
    iterable of :class:`Finding`) or override :meth:`check_file`.
    """

    #: Stable id, ``RPL1xx``.
    id: str = ""
    #: Human name, usable in suppressions (``disable=unseeded-random``).
    name: str = ""
    #: One-line description for ``--list-rules`` and the docs.
    description: str = ""
    severity: Severity = Severity.ERROR
    #: ``module_path`` prefixes this rule applies to ('' matches all).
    scope: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` (prefix match on scope)."""
        if not self.scope:
            return True
        return any(ctx.module_path.startswith(p) for p in self.scope)

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Default engine: dispatch ``visit_<NodeType>`` over the AST."""
        for node in ast.walk(ctx.tree):
            visitor = getattr(self, f"visit_{type(node).__name__}", None)
            if visitor is None:
                continue
            result = visitor(node, ctx)
            if result:
                yield from result

    def finish(self, project: "Project") -> Iterator[Finding]:
        """Cross-file hook, called once after every file was checked."""
        return iter(())

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST | None,
        message: str,
    ) -> Finding:
        """A :class:`Finding` by this rule at ``node`` (or whole-file)."""
        line = getattr(node, "lineno", 0) if node is not None else 0
        return Finding(
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) if node is not None else 0,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            severity=self.severity,
            qualname=ctx.qualname_at(line),
            context=ctx.context_line(line),
        )


_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: add a rule to the built-in registry."""
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs an id and a name")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def get_rule(id_or_name: str) -> type[Rule]:
    """Look a rule class up by id (``RPL103``) or name."""
    if id_or_name in _REGISTRY:
        return _REGISTRY[id_or_name]
    for cls in _REGISTRY.values():
        if cls.name == id_or_name:
            return cls
    raise KeyError(f"no rule {id_or_name!r}")


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    return tuple(sorted(_REGISTRY))
