"""Intraprocedural abstract interpretation for the dataflow rules.

The flow-insensitive rules of PR 4 pattern-match single statements; the
bug classes the engines now actually ship are *flow* bugs — a dtype
silently promoted three assignments after the allocation, a view
mutated along only one branch, an unpicklable object threaded into a
pool chunk.  This module interprets each function body over a small
abstract domain and emits *events* that the RPL107–RPL110 rules (and
the delegating RPL101/RPL102) consume:

* **dtype** — ``int8/uint8/int16/int32/int64/float/bool`` plus
  ``unknown``, combined through NumPy's promotion rules (NEP-50
  semantics for Python scalars: a Python ``int`` does not widen an
  array, a Python ``float`` does).
* **shape** — a tuple of symbolic dims (``int`` literal, ``str``
  symbol, or ``None`` for unknown), seeded from ``np.zeros``-style
  allocations, ``.shape`` unpacking and slicing, and unified through
  broadcasting.  A provable broadcast mismatch (two concrete unequal
  dims, neither 1) raises a :class:`BroadcastEvent`.
* **aliasing** — every allocation site gets a storage id; values carry
  the *may-overlap* set of storage ids, so a bare-name rebinding
  (``prev = cur``) is distinguishable from a simultaneous tuple
  exchange (``cur, prev = prev, cur``) and from an explicit slice view.

Control flow: branches join pointwise (dtype joins through the
promotion lattice, dims to ``unknown`` on disagreement, storage sets
by union); ``for``/``while`` bodies run to a fixed point with an
iteration cap.  Events are only recorded on a final pass over the
converged state, so a half-converged loop cannot emit a stale event;
the lone exception is loop widening itself, which is *defined* by the
difference between the pre-loop state and the converged loop-entry
state (:class:`WidenEvent` with ``via="loop"``).

Analyses that hit the iteration cap, or meet ``global``/``exec``/
``eval``, drop their ``confident`` flag — consumers fall back to the
PR 4 heuristics rather than trust a partial interpretation.

Everything here is stdlib-only (``ast`` + dataclasses): the linter must
import without NumPy installed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence, Union

from repro.lint.astutil import dotted_name

__all__ = [
    "UNKNOWN",
    "NARROW_DTYPES",
    "AbstractValue",
    "BroadcastEvent",
    "WidenEvent",
    "AliasMutationEvent",
    "CallEvent",
    "FunctionAnalysis",
    "ModuleAnalysis",
    "promote",
    "join_dtype",
    "wider_than",
    "broadcast_shapes",
    "join_values",
    "analyze_function",
    "analyze_module",
    "file_analysis",
    "subtree_analyses",
]

# ---------------------------------------------------------------------------
# The dtype lattice
# ---------------------------------------------------------------------------

UNKNOWN = "unknown"

#: Saturating-tier widths: arithmetic on these is only correct inside a
#: clamp discipline, so a silent promotion out of them changes scores.
NARROW_DTYPES = frozenset({"int8", "uint8", "int16"})

_INT_ORDER = ("int8", "uint8", "int16", "int32", "int64")
_INT_WIDTH = {"int8": 8, "uint8": 8, "int16": 16, "int32": 32, "int64": 64}

#: Tokens for Python scalars (NEP-50 "weak" values): they participate in
#: arithmetic without forcing an array promotion.
_WEAK_INT = "int"
_WEAK_FLOAT = "float"

_KNOWN_ARRAY_DTYPES = frozenset({*_INT_ORDER, "float", "bool"})


def promote(a: str, b: str) -> str:
    """NumPy result dtype of an array-array op between ``a`` and ``b``."""
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == b:
        return a
    # Weak Python-int tokens can reach a join (``x = 0`` on one branch,
    # an array on the other); NEP-50 makes them transparent.
    if a == _WEAK_INT:
        return b
    if b == _WEAK_INT:
        return a
    if a not in _KNOWN_ARRAY_DTYPES or b not in _KNOWN_ARRAY_DTYPES:
        return UNKNOWN
    if "float" in (a, b):
        return "float"
    if a == "bool":
        return b
    if b == "bool":
        return a
    # Both integers.  int8 + uint8 has no common 8-bit signed/unsigned
    # home, so NumPy widens to int16; otherwise the larger width wins
    # (signedness agrees at >= 16 bits in this token set).
    if {a, b} == {"int8", "uint8"}:
        return "int16"
    return a if _INT_WIDTH[a] >= _INT_WIDTH[b] else b


def join_dtype(a: str, b: str) -> str:
    """Control-flow join of two dtypes: the promotion lub.

    Using the promotion lattice (rather than collapsing straight to
    ``unknown``) is what lets the loop-widening check see *what* an
    accumulator widened to across a back edge.
    """
    return promote(a, b)


def wider_than(new: str, old: str) -> bool:
    """Whether ``new`` is a strict widening of ``old`` (both known)."""
    if new == old or UNKNOWN in (new, old):
        return False
    if old == "bool" or new == "bool":
        return False
    return promote(new, old) == new


def promote_with_scalar(array_dtype: str, scalar_dtype: str) -> str:
    """Array-op-scalar result dtype under NEP-50 weak-scalar rules."""
    if array_dtype == UNKNOWN:
        return UNKNOWN
    if scalar_dtype in (_WEAK_INT, "bool"):
        return array_dtype
    if scalar_dtype == _WEAK_FLOAT:
        return promote(array_dtype, "float")
    if scalar_dtype == UNKNOWN:
        return UNKNOWN
    return promote(array_dtype, scalar_dtype)


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------

#: One symbolic dimension: a concrete extent, a named symbol, or unknown.
Dim = Union[int, str, None]
#: ``None`` means unknown rank.
Shape = Union[tuple, None]


def _join_dim(a: Dim, b: Dim) -> Dim:
    return a if a == b else None


def join_shape(a: Shape, b: Shape) -> Shape:
    if a is None or b is None or len(a) != len(b):
        return None
    return tuple(_join_dim(x, y) for x, y in zip(a, b))


def broadcast_shapes(
    a: Shape, b: Shape
) -> tuple[Shape, tuple[Dim, Dim] | None]:
    """Broadcast two symbolic shapes.

    Returns ``(result_shape, mismatch)`` where ``mismatch`` is the
    offending dim pair when the shapes *provably* cannot broadcast:
    both extents concrete, unequal, and neither 1.  Symbolic or unknown
    dims are always compatible (they unify, never refute).
    """
    if a is None or b is None:
        return None, None
    short, long = (a, b) if len(a) <= len(b) else (b, a)
    pad = len(long) - len(short)
    out: list[Dim] = list(long[:pad])
    mismatch: tuple[Dim, Dim] | None = None
    for x, y in zip(long[pad:], short):
        if x == 1:
            out.append(y)
        elif y == 1:
            out.append(x)
        elif x == y:
            out.append(x)
        elif isinstance(x, int) and isinstance(y, int):
            mismatch = (x, y) if long is a else (y, x)
            out.append(None)
        else:
            out.append(None)
    return tuple(out), mismatch


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AbstractValue:
    """One variable's abstract state at one program point.

    ``storage`` is the may-overlap set of allocation-site ids (negative
    ids are synthesized for parameters and free variables); ``param``
    marks memory that may belong to the caller.
    """

    kind: str = UNKNOWN  #: array | scalar | tuple | func | object | unknown
    dtype: str = UNKNOWN
    shape: Shape = None
    storage: frozenset = frozenset()
    param: bool = False
    classname: str | None = None  #: constructor name for ``object`` kind
    func_node: ast.AST | None = None  #: FunctionDef/Lambda for local funcs
    sym: int | str | None = None  #: scalar symbolic identity
    elements: tuple | None = None  #: tuple-kind element values


TOP = AbstractValue()


def join_values(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    if a == b:
        return a
    return AbstractValue(
        kind=a.kind if a.kind == b.kind else UNKNOWN,
        dtype=join_dtype(a.dtype, b.dtype),
        shape=join_shape(a.shape, b.shape),
        storage=a.storage | b.storage,
        param=a.param or b.param,
        classname=a.classname if a.classname == b.classname else None,
        func_node=a.func_node if a.func_node is b.func_node else None,
        sym=a.sym if a.sym == b.sym else None,
        elements=None,
    )


Env = dict


def join_env(a: Env, b: Env) -> Env:
    out: Env = {}
    for name in a.keys() | b.keys():
        va, vb = a.get(name), b.get(name)
        if va is None:
            out[name] = vb
        elif vb is None:
            out[name] = va
        else:
            out[name] = join_values(va, vb)
    return out


# ---------------------------------------------------------------------------
# Events
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BroadcastEvent:
    """Two operands whose shapes provably cannot broadcast."""

    node: ast.AST
    left: Shape
    right: Shape
    dims: tuple  #: the offending (left_extent, right_extent) pair


@dataclass(frozen=True)
class WidenEvent:
    """A name's array dtype silently widened.

    ``via`` is ``"assign"`` for a straight-line rebinding and
    ``"loop"`` when the widening happens across a loop back edge (the
    node is then the loop statement itself).
    """

    node: ast.AST
    name: str
    old: str
    new: str
    via: str


@dataclass(frozen=True)
class AliasMutationEvent:
    """In-place mutation of memory shared through a bare-name alias."""

    node: ast.AST  #: the mutating statement/call
    name: str  #: the name mutated
    other: str  #: the live alias partner
    alias_node: ast.AST  #: the assignment that created the alias
    how: str


@dataclass(frozen=True)
class CallEvent:
    """One call site with the abstract values that flowed into it."""

    node: ast.Call
    func_name: str | None
    func_value: AbstractValue
    args: tuple
    keywords: tuple  #: ((name, AbstractValue), ...) pairs


Event = Union[BroadcastEvent, WidenEvent, AliasMutationEvent, CallEvent]


# ---------------------------------------------------------------------------
# Analysis results
# ---------------------------------------------------------------------------


@dataclass
class FunctionAnalysis:
    """Everything the rules need to know about one function body."""

    fn: ast.AST
    qualname: str
    confident: bool = True
    error: str | None = None  #: internal interpreter failure, if any
    events: list = field(default_factory=list)
    #: names that held a known int8/uint8 array at some point
    narrow_names: frozenset = frozenset()
    #: locally-defined callables: name -> FunctionDef/Lambda node
    local_defs: dict = field(default_factory=dict)

    def alias_events(self) -> list:
        return [e for e in self.events if isinstance(e, AliasMutationEvent)]

    def widen_events(self) -> list:
        return [e for e in self.events if isinstance(e, WidenEvent)]

    def broadcast_events(self) -> list:
        return [e for e in self.events if isinstance(e, BroadcastEvent)]

    def call_events(self) -> list:
        return [e for e in self.events if isinstance(e, CallEvent)]


@dataclass
class ModuleAnalysis:
    """Per-function analyses for one parsed file."""

    functions: list = field(default_factory=list)
    by_node: dict = field(default_factory=dict)

    def for_node(self, fn: ast.AST) -> FunctionAnalysis | None:
        return self.by_node.get(id(fn))


_FN_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Iteration cap for the loop fixed point.  The lattice is finite
#: height (dtype chains of length <= 5, dims collapse in one step,
#: storage sets bounded by the allocation sites in the body), so real
#: code converges in 2-3 passes; hitting the cap drops ``confident``.
MAX_LOOP_ITERS = 8

_ALLOCATORS = frozenset({"zeros", "ones", "empty", "full"})
_LIKE_ALLOCATORS = frozenset(
    {"zeros_like", "ones_like", "empty_like", "full_like"}
)
_BINARY_UFUNCS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "maximum",
        "minimum",
        "fmax",
        "fmin",
        "mod",
        "remainder",
        "floor_divide",
        "bitwise_and",
        "bitwise_or",
        "bitwise_xor",
        "left_shift",
        "right_shift",
        "hypot",
        "logaddexp",
        "power",
        "greater",
        "greater_equal",
        "less",
        "less_equal",
        "equal",
        "not_equal",
    }
)
_COMPARE_UFUNCS = frozenset(
    {"greater", "greater_equal", "less", "less_equal", "equal", "not_equal"}
)
_FLOAT_UFUNCS = frozenset(
    {"sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tanh", "divide",
     "true_divide"}
)
_PASSTHROUGH_UFUNCS = frozenset(
    {"abs", "absolute", "negative", "positive", "sign", "copy", "ascontiguousarray"}
)
_REDUCERS_INT64 = frozenset({"sum", "prod", "dot", "matmul", "trace"})
_VIEW_METHODS = frozenset(
    {"reshape", "ravel", "transpose", "swapaxes", "view", "squeeze"}
)
_MUTATING_METHODS = frozenset({"fill", "sort", "partition", "put"})

_STATIC_DTYPES = {
    "int8": "int8",
    "uint8": "uint8",
    "int16": "int16",
    "uint16": "int16",
    "int32": "int32",
    "uint32": "int32",
    "int64": "int64",
    "uint64": "int64",
    "intp": "int64",
    "float16": "float",
    "float32": "float",
    "float64": "float",
    "bool_": "bool",
    "bool": "bool",
    "float": "float",
    "int": "int64",
}


def _static_dtype(node: ast.expr | None, env: Env) -> str:
    """Resolve a ``dtype=`` expression to a lattice token, if static."""
    if node is None:
        return UNKNOWN
    name = dotted_name(node)
    if name is not None:
        parts = name.split(".")
        if len(parts) == 2 and parts[0] in ("np", "numpy"):
            return _STATIC_DTYPES.get(parts[1], UNKNOWN)
        if len(parts) == 1 and parts[0] in ("float", "int", "bool"):
            return _STATIC_DTYPES[parts[0]]
        # A plain name bound to a known-static dtype earlier on.
        if len(parts) == 1:
            bound = env.get(parts[0])
            if bound is not None and isinstance(bound.sym, str):
                return _STATIC_DTYPES.get(
                    bound.sym.removeprefix("dtype:"), UNKNOWN
                )
        return UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _STATIC_DTYPES.get(node.value, UNKNOWN)
    return UNKNOWN


@dataclass
class _BlockResult:
    env: Env
    terminated: bool  #: the block ended in return/raise/break/continue


class _Interpreter:
    """One function body's abstract interpretation."""

    def __init__(self, fn: ast.AST, qualname: str) -> None:
        self.fn = fn
        self.qualname = qualname
        self.confident = True
        self.recording = True
        self.events: list = []
        self._event_keys: set = set()
        self.narrow_names: set = set()
        self.local_defs: dict = {}
        #: bare-name alias links: (target, source, assign node)
        self.pairs: list = []
        self._free_ids: dict = {}
        self._next_free = -1

    # -- plumbing ----------------------------------------------------------

    def _free_storage(self, name: str) -> frozenset:
        if name not in self._free_ids:
            self._free_ids[name] = self._next_free
            self._next_free -= 1
        return frozenset({self._free_ids[name]})

    def _emit(self, event: Event) -> None:
        if not self.recording:
            return
        key = (type(event).__name__, id(event.node), getattr(event, "name", None))
        if key not in self._event_keys:
            self._event_keys.add(key)
            self.events.append(event)

    # -- entry -------------------------------------------------------------

    def run(self) -> Env:
        env: Env = {}
        args = self.fn.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env[arg.arg] = self._param_value(arg)
        if args.vararg is not None:
            env[args.vararg.arg] = AbstractValue(kind="tuple")
        if args.kwarg is not None:
            env[args.kwarg.arg] = TOP
        result = self.exec_block(self.fn.body, env)
        return result.env

    def _param_value(self, arg: ast.arg) -> AbstractValue:
        storage = self._free_storage(arg.arg)
        kind = UNKNOWN
        classname: str | None = None
        ann = dotted_name(arg.annotation) if arg.annotation is not None else None
        if ann is not None:
            leaf = ann.split(".")[-1]
            if leaf == "ndarray":
                kind = "array"
            elif leaf in ("int", "float", "bool", "str"):
                kind = "scalar"
            elif leaf[:1].isupper():
                kind = "object"
                classname = leaf
        return AbstractValue(
            kind=kind, storage=storage, param=True, classname=classname
        )

    # -- statements --------------------------------------------------------

    def exec_block(self, stmts: Sequence, env: Env) -> _BlockResult:
        for stmt in stmts:
            result = self.exec_stmt(stmt, env)
            env = result.env
            if result.terminated:
                return _BlockResult(env, True)
        return _BlockResult(env, False)

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> _BlockResult:
        handler = getattr(self, f"stmt_{type(stmt).__name__}", None)
        if handler is not None:
            out = handler(stmt, env)
            assert isinstance(out, _BlockResult)
            return out
        # Unknown statement kinds: evaluate child expressions for their
        # events, keep the environment.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return _BlockResult(env, False)

    def stmt_Assign(self, stmt: ast.Assign, env: Env) -> _BlockResult:
        value = self.eval(stmt.value, env)
        for target in stmt.targets:
            self._bind_target(target, stmt.value, value, stmt, env)
        return _BlockResult(env, False)

    def stmt_AnnAssign(self, stmt: ast.AnnAssign, env: Env) -> _BlockResult:
        if stmt.value is not None:
            value = self.eval(stmt.value, env)
            self._bind_target(stmt.target, stmt.value, value, stmt, env)
        return _BlockResult(env, False)

    def stmt_AugAssign(self, stmt: ast.AugAssign, env: Env) -> _BlockResult:
        value = self.eval(stmt.value, env)
        target = stmt.target
        if isinstance(target, ast.Name):
            old = env.get(target.id, TOP)
            if old.kind == "array":
                # NumPy in-place ops cast the RHS into the target: the
                # dtype never changes, but the buffer is mutated.
                self._mutate(target.id, stmt, "augmented assignment", env)
            elif old.kind == "scalar":
                env[target.id] = replace(
                    old,
                    dtype=promote(old.dtype, value.dtype)
                    if value.kind == "scalar"
                    else UNKNOWN,
                    sym=None,
                )
            else:
                env[target.id] = TOP
        elif isinstance(target, ast.Subscript):
            base = _root_of(target)
            if base is not None:
                self._mutate(base, stmt, "augmented assignment", env)
        return _BlockResult(env, False)

    def stmt_Expr(self, stmt: ast.Expr, env: Env) -> _BlockResult:
        self.eval(stmt.value, env)
        return _BlockResult(env, False)

    def stmt_Return(self, stmt: ast.Return, env: Env) -> _BlockResult:
        if stmt.value is not None:
            self.eval(stmt.value, env)
        return _BlockResult(env, True)

    def stmt_Raise(self, stmt: ast.Raise, env: Env) -> _BlockResult:
        if stmt.exc is not None:
            self.eval(stmt.exc, env)
        return _BlockResult(env, True)

    def stmt_Break(self, stmt: ast.Break, env: Env) -> _BlockResult:
        return _BlockResult(env, True)

    def stmt_Continue(self, stmt: ast.Continue, env: Env) -> _BlockResult:
        return _BlockResult(env, True)

    def stmt_Pass(self, stmt: ast.Pass, env: Env) -> _BlockResult:
        return _BlockResult(env, False)

    def stmt_Assert(self, stmt: ast.Assert, env: Env) -> _BlockResult:
        self.eval(stmt.test, env)
        return _BlockResult(env, False)

    def stmt_Delete(self, stmt: ast.Delete, env: Env) -> _BlockResult:
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                env.pop(target.id, None)
        return _BlockResult(env, False)

    def stmt_Global(self, stmt: ast.Global, env: Env) -> _BlockResult:
        self.confident = False
        return _BlockResult(env, False)

    def stmt_Nonlocal(self, stmt: ast.Nonlocal, env: Env) -> _BlockResult:
        return _BlockResult(env, False)

    def stmt_Import(self, stmt: ast.Import, env: Env) -> _BlockResult:
        return _BlockResult(env, False)

    def stmt_ImportFrom(self, stmt: ast.ImportFrom, env: Env) -> _BlockResult:
        return _BlockResult(env, False)

    def stmt_FunctionDef(
        self, stmt: ast.FunctionDef, env: Env
    ) -> _BlockResult:
        # The nested body is analyzed as its own unit by the module
        # driver; here the def only binds a local callable.
        self.local_defs[stmt.name] = stmt
        env[stmt.name] = AbstractValue(kind="func", func_node=stmt)
        return _BlockResult(env, False)

    def stmt_AsyncFunctionDef(
        self, stmt: ast.AsyncFunctionDef, env: Env
    ) -> _BlockResult:
        self.local_defs[stmt.name] = stmt
        env[stmt.name] = AbstractValue(kind="func", func_node=stmt)
        return _BlockResult(env, False)

    def stmt_ClassDef(self, stmt: ast.ClassDef, env: Env) -> _BlockResult:
        env[stmt.name] = AbstractValue(kind="object", classname=stmt.name)
        return _BlockResult(env, False)

    def stmt_If(self, stmt: ast.If, env: Env) -> _BlockResult:
        self.eval(stmt.test, env)
        then = self.exec_block(stmt.body, dict(env))
        other = self.exec_block(stmt.orelse, dict(env))
        return self._merge_branches(then, other)

    @staticmethod
    def _merge_branches(a: _BlockResult, b: _BlockResult) -> _BlockResult:
        if a.terminated and not b.terminated:
            return b
        if b.terminated and not a.terminated:
            return a
        return _BlockResult(join_env(a.env, b.env), a.terminated and b.terminated)

    def stmt_While(self, stmt: ast.While, env: Env) -> _BlockResult:
        self.eval(stmt.test, env)
        state = self._loop_fixpoint(stmt, stmt.body, env, bind=None)
        if stmt.orelse:
            state = self.exec_block(stmt.orelse, state).env
        return _BlockResult(state, False)

    def stmt_For(self, stmt: ast.For, env: Env) -> _BlockResult:
        iter_value = self.eval(stmt.iter, env)
        elem = self._element_of(stmt.iter, iter_value)

        def bind(e: Env) -> None:
            self._bind_target(stmt.target, None, elem, stmt, e, alias=False)

        state = self._loop_fixpoint(stmt, stmt.body, env, bind=bind)
        if stmt.orelse:
            state = self.exec_block(stmt.orelse, state).env
        return _BlockResult(state, False)

    stmt_AsyncFor = stmt_For

    def _loop_fixpoint(
        self,
        stmt: ast.stmt,
        body: Sequence,
        env: Env,
        bind,
    ) -> Env:
        """Run ``body`` to a fixed point; record events on a final pass."""
        before = dict(env)
        state = dict(env)
        was_recording = self.recording
        self.recording = False
        try:
            for _ in range(MAX_LOOP_ITERS):
                iter_env = dict(state)
                if bind is not None:
                    bind(iter_env)
                out = self.exec_block(body, iter_env)
                merged = join_env(state, out.env)
                if merged == state:
                    break
                state = merged
            else:
                self.confident = False
        finally:
            self.recording = was_recording
        if self.recording:
            # Loop-widening events: the back edge changed a name's
            # array dtype relative to the pre-loop state.
            for name, old in before.items():
                new = state.get(name)
                if (
                    new is not None
                    and "array" in (old.kind, new.kind)
                    and old.dtype in _KNOWN_ARRAY_DTYPES
                    and new.dtype in _KNOWN_ARRAY_DTYPES
                    and wider_than(new.dtype, old.dtype)
                ):
                    self._emit(
                        WidenEvent(
                            node=stmt,
                            name=name,
                            old=old.dtype,
                            new=new.dtype,
                            via="loop",
                        )
                    )
            # One recorded pass over the converged state for the other
            # event kinds (broadcasts, alias mutations, calls).
            iter_env = dict(state)
            if bind is not None:
                bind(iter_env)
            self.exec_block(body, iter_env)
        return state

    def stmt_With(self, stmt: ast.With, env: Env) -> _BlockResult:
        for item in stmt.items:
            value = self.eval(item.context_expr, env)
            if item.optional_vars is not None:
                self._bind_target(
                    item.optional_vars, item.context_expr, value, stmt, env,
                    alias=False,
                )
        return self.exec_block(stmt.body, env)

    stmt_AsyncWith = stmt_With

    def stmt_Try(self, stmt: ast.Try, env: Env) -> _BlockResult:
        entry = dict(env)
        body = self.exec_block(stmt.body, dict(env))
        state = body
        for handler in stmt.handlers:
            # An exception can fire anywhere in the body, so handlers
            # start from the conservative join of entry and body-end.
            h_env = join_env(entry, body.env)
            if handler.name is not None:
                h_env[handler.name] = TOP
            h_out = self.exec_block(handler.body, h_env)
            state = self._merge_branches(state, h_out)
        if stmt.orelse and not body.terminated:
            state = self._merge_branches(
                state, self.exec_block(stmt.orelse, dict(state.env))
            )
        if stmt.finalbody:
            state = _BlockResult(
                self.exec_block(stmt.finalbody, state.env).env,
                state.terminated,
            )
        return state

    stmt_TryStar = stmt_Try

    def stmt_Match(self, stmt: ast.Match, env: Env) -> _BlockResult:
        self.eval(stmt.subject, env)
        state = _BlockResult(dict(env), False)  # the no-match path
        for case in stmt.cases:
            state = self._merge_branches(
                state, self.exec_block(case.body, dict(env))
            )
        return state

    # -- binding -----------------------------------------------------------

    def _bind_target(
        self,
        target: ast.expr,
        value_expr: ast.expr | None,
        value: AbstractValue,
        stmt: ast.AST,
        env: Env,
        *,
        alias: bool = True,
    ) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, value_expr, value, stmt, env, alias)
        elif isinstance(target, ast.Subscript):
            base = _root_of(target)
            if base is not None:
                self._mutate(base, stmt, "subscript store", env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            self._bind_tuple(target, value_expr, value, stmt, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(
                target.value, None, AbstractValue(kind="tuple"), stmt, env,
                alias=False,
            )
        # Attribute targets (obj.x = v) mutate objects, out of scope.

    def _bind_name(
        self,
        name: str,
        value_expr: ast.expr | None,
        value: AbstractValue,
        stmt: ast.AST,
        env: Env,
        alias: bool,
    ) -> None:
        old = env.get(name)
        if (
            old is not None
            and old.kind == "array"
            and value.kind == "array"
            and old.dtype in _KNOWN_ARRAY_DTYPES
            and value.dtype in _KNOWN_ARRAY_DTYPES
            and wider_than(value.dtype, old.dtype)
            and not _is_astype_call(value_expr)
        ):
            self._emit(
                WidenEvent(
                    node=stmt,
                    name=name,
                    old=old.dtype,
                    new=value.dtype,
                    via="assign",
                )
            )
        # Rebinding a name breaks every bare-name pair it participates
        # in: the two *names* no longer address the same buffer, even if
        # the old buffer lives on elsewhere.  This is what keeps the
        # fresh-buffer rotation idiom clean — `h_cur = np.full(...)` at
        # the top of a loop kills the `h_prev = h_cur` pair recorded at
        # the bottom of the previous iteration.
        if self.pairs:
            self.pairs = [
                p for p in self.pairs if name != p[0] and name != p[1]
            ]
        if (
            alias
            and isinstance(value_expr, ast.Name)
            and value.kind == "array"
        ):
            self.pairs.append((name, value_expr.id, stmt))
        if value.kind == "array" and value.dtype in ("int8", "uint8"):
            if self.recording:
                self.narrow_names.add(name)
        env[name] = value

    def _bind_tuple(
        self,
        target: ast.Tuple | ast.List,
        value_expr: ast.expr | None,
        value: AbstractValue,
        stmt: ast.stmt,
        env: Env,
    ) -> None:
        elements: Sequence | None = None
        if value.elements is not None and len(value.elements) == len(
            target.elts
        ):
            elements = value.elements
        for i, elt in enumerate(target.elts):
            elem_value = elements[i] if elements is not None else TOP
            # Simultaneous semantics: the whole RHS was evaluated
            # against the pre-assignment environment already, so tuple
            # exchanges (h, hbuf = hbuf, h) rebind without creating a
            # dangling alias — no pair is recorded for tuple targets.
            self._bind_target(elt, None, elem_value, stmt, env, alias=False)

    # -- mutation ----------------------------------------------------------

    def _mutate(self, name: str, node: ast.AST, how: str, env: Env) -> None:
        value = env.get(name)
        if value is None or not self.recording:
            return
        if value.kind != "array" and not (
            value.kind == UNKNOWN and value.storage
        ):
            return
        for target, source, pair_node in self.pairs:
            tv = env.get(target)
            sv = env.get(source)
            if tv is None or sv is None:
                continue
            shared = tv.storage & sv.storage
            if not shared or not (shared & value.storage):
                continue
            if value.kind != "array" and tv.kind != "array":
                continue
            other = source if name == target else target
            if name not in (target, source):
                other = f"{target}/{source}"
            self._emit(
                AliasMutationEvent(
                    node=node,
                    name=name,
                    other=other,
                    alias_node=pair_node,
                    how=how,
                )
            )
            return

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: Env) -> AbstractValue:
        handler = getattr(self, f"eval_{type(node).__name__}", None)
        if handler is not None:
            out = handler(node, env)
            assert isinstance(out, AbstractValue)
            return out
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return TOP

    def eval_Constant(self, node: ast.Constant, env: Env) -> AbstractValue:
        v = node.value
        if isinstance(v, bool):
            return AbstractValue(kind="scalar", dtype="bool", sym=int(v))
        if isinstance(v, int):
            return AbstractValue(kind="scalar", dtype=_WEAK_INT, sym=v)
        if isinstance(v, float):
            return AbstractValue(kind="scalar", dtype=_WEAK_FLOAT)
        return TOP

    def eval_Name(self, node: ast.Name, env: Env) -> AbstractValue:
        value = env.get(node.id)
        if value is None:
            # A free variable (closure/global): give it a stable
            # synthetic storage id so repeated reads agree.
            value = AbstractValue(storage=self._free_storage(node.id))
            env[node.id] = value
        return value

    def eval_Tuple(self, node: ast.Tuple, env: Env) -> AbstractValue:
        return AbstractValue(
            kind="tuple",
            elements=tuple(self.eval(e, env) for e in node.elts),
        )

    eval_List = eval_Tuple

    def eval_Starred(self, node: ast.Starred, env: Env) -> AbstractValue:
        return self.eval(node.value, env)

    def eval_NamedExpr(self, node: ast.NamedExpr, env: Env) -> AbstractValue:
        value = self.eval(node.value, env)
        if isinstance(node.target, ast.Name):
            self._bind_name(
                node.target.id, node.value, value, node, env, alias=True
            )
        return value

    def eval_UnaryOp(self, node: ast.UnaryOp, env: Env) -> AbstractValue:
        operand = self.eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            return AbstractValue(kind="scalar", dtype="bool")
        return operand

    def eval_BoolOp(self, node: ast.BoolOp, env: Env) -> AbstractValue:
        values = [self.eval(v, env) for v in node.values]
        out = values[0]
        for v in values[1:]:
            out = join_values(out, v)
        return out

    def eval_IfExp(self, node: ast.IfExp, env: Env) -> AbstractValue:
        self.eval(node.test, env)
        return join_values(
            self.eval(node.body, env), self.eval(node.orelse, env)
        )

    def eval_Compare(self, node: ast.Compare, env: Env) -> AbstractValue:
        left = self.eval(node.left, env)
        rights = [self.eval(c, env) for c in node.comparators]
        if left.kind == "array" or any(r.kind == "array" for r in rights):
            shape = left.shape if left.kind == "array" else None
            for r in rights:
                if r.kind == "array":
                    shape = self._broadcast(node, shape, r.shape)
            return AbstractValue(
                kind="array", dtype="bool", shape=shape,
                storage=frozenset({id(node)}),
            )
        return AbstractValue(kind="scalar", dtype="bool")

    def _broadcast(self, node: ast.AST, a: Shape, b: Shape) -> Shape:
        result, mismatch = broadcast_shapes(a, b)
        if mismatch is not None:
            self._emit(
                BroadcastEvent(node=node, left=a, right=b, dims=mismatch)
            )
        return result

    def eval_BinOp(self, node: ast.BinOp, env: Env) -> AbstractValue:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        arrays = [v for v in (left, right) if v.kind == "array"]
        if not arrays:
            if left.kind == "scalar" and right.kind == "scalar":
                if isinstance(node.op, ast.Div):
                    dtype = _WEAK_FLOAT
                else:
                    dtype = promote(left.dtype, right.dtype) if (
                        left.dtype != UNKNOWN and right.dtype != UNKNOWN
                    ) else (
                        _WEAK_FLOAT
                        if _WEAK_FLOAT in (left.dtype, right.dtype)
                        else left.dtype
                        if left.dtype == right.dtype
                        else UNKNOWN
                    )
                return AbstractValue(kind="scalar", dtype=dtype)
            return TOP
        if len(arrays) == 2:
            dtype = promote(left.dtype, right.dtype)
            shape = self._broadcast(node, left.shape, right.shape)
        else:
            array = arrays[0]
            scalar = right if array is left else left
            dtype = (
                promote_with_scalar(array.dtype, scalar.dtype)
                if scalar.kind == "scalar"
                else UNKNOWN
            )
            shape = array.shape
        if isinstance(node.op, ast.Div):
            dtype = "float"
        return AbstractValue(
            kind="array",
            dtype=dtype,
            shape=shape,
            storage=frozenset({id(node)}),
        )

    def eval_Attribute(self, node: ast.Attribute, env: Env) -> AbstractValue:
        base = self.eval(node.value, env)
        if base.kind == "array":
            if node.attr == "T":
                shape = (
                    tuple(reversed(base.shape))
                    if base.shape is not None
                    else None
                )
                return replace(base, shape=shape)
            if node.attr == "shape":
                key = "s" + ",".join(str(s) for s in sorted(base.storage))
                if base.shape is not None:
                    elems = tuple(
                        AbstractValue(
                            kind="scalar",
                            dtype=_WEAK_INT,
                            sym=d if d is not None else f"{key}[{i}]",
                        )
                        for i, d in enumerate(base.shape)
                    )
                    return AbstractValue(kind="tuple", elements=elems, sym=key)
                return AbstractValue(kind="tuple", sym=f"shape:{key}")
            if node.attr in ("dtype", "size", "ndim", "nbytes"):
                return AbstractValue(kind="scalar", dtype=_WEAK_INT)
            if node.attr == "flat":
                return replace(base, shape=None)
        return TOP

    def eval_Subscript(self, node: ast.Subscript, env: Env) -> AbstractValue:
        base = self.eval(node.value, env)
        self.eval(node.slice, env)
        if base.kind == "tuple":
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, int
            ):
                i = index.value
                if base.elements is not None and 0 <= i < len(base.elements):
                    return base.elements[i]
                if isinstance(base.sym, str) and base.sym.startswith("shape:"):
                    return AbstractValue(
                        kind="scalar",
                        dtype=_WEAK_INT,
                        sym=f"{base.sym[6:]}[{i}]",
                    )
            return TOP
        if base.kind != "array":
            return TOP
        shape = _slice_shape(base.shape, node.slice)
        if shape is not None and len(shape) == 0:
            return AbstractValue(kind="scalar", dtype=base.dtype)
        return AbstractValue(
            kind="array", dtype=base.dtype, shape=shape,
            storage=base.storage, param=base.param,
        )

    def eval_Lambda(self, node: ast.Lambda, env: Env) -> AbstractValue:
        return AbstractValue(kind="func", func_node=node)

    def eval_ListComp(self, node: ast.expr, env: Env) -> AbstractValue:
        # Comprehensions get their own scope: bind each generator target
        # to the iterable's element and evaluate the body there, so
        # events inside it still fire (``[pool.submit(task, c) for c in
        # chunks]`` is the idiomatic dispatch shape).
        inner = dict(env)
        for comp in node.generators:  # type: ignore[attr-defined]
            iter_value = self.eval(comp.iter, inner)
            element = self._element_of(comp.iter, iter_value)
            self._bind_target(
                comp.target, None, element, comp.iter, inner, alias=False
            )
            for cond in comp.ifs:
                self.eval(cond, inner)
        if isinstance(node, ast.DictComp):
            self.eval(node.key, inner)
            self.eval(node.value, inner)
        else:
            self.eval(node.elt, inner)  # type: ignore[attr-defined]
        return AbstractValue(kind="tuple")

    eval_SetComp = eval_ListComp
    eval_DictComp = eval_ListComp
    eval_GeneratorExp = eval_ListComp

    def eval_Dict(self, node: ast.Dict, env: Env) -> AbstractValue:
        for v in node.values:
            if v is not None:
                self.eval(v, env)
        return TOP

    def eval_JoinedStr(self, node: ast.JoinedStr, env: Env) -> AbstractValue:
        return AbstractValue(kind="scalar")

    # -- calls -------------------------------------------------------------

    def eval_Call(self, node: ast.Call, env: Env) -> AbstractValue:
        fname = dotted_name(node.func)
        args = tuple(self.eval(a, env) for a in node.args)
        keywords = tuple(
            (kw.arg, self.eval(kw.value, env))
            for kw in node.keywords
            if kw.arg is not None
        )
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value, env)
        kwmap = dict(keywords)

        func_value = TOP
        if isinstance(node.func, ast.Name):
            func_value = env.get(node.func.id, TOP)
        elif isinstance(node.func, ast.Attribute):
            # Evaluate the receiver for its events (but don't re-emit
            # argument evaluations).
            self.eval(node.func.value, env)

        self._emit(
            CallEvent(
                node=node,
                func_name=fname,
                func_value=func_value,
                args=args,
                keywords=keywords,
            )
        )

        if fname in ("exec", "eval"):
            self.confident = False

        # out= targets are mutated in place, and the result aliases them.
        out_kw = kwmap.get("out")
        for kw in node.keywords:
            if kw.arg == "out":
                for target in _names_in(kw.value):
                    self._mutate(target, node, "out= argument", env)

        result = self._dispatch_call(node, fname, args, kwmap, env)
        if result is not None:
            return result
        if out_kw is not None:
            return out_kw
        return TOP

    def _dispatch_call(
        self,
        node: ast.Call,
        fname: str | None,
        args: tuple,
        kwmap: Mapping,
        env: Env,
    ) -> AbstractValue | None:
        if fname is None:
            return None
        parts = fname.split(".")

        # ---- builtins ----
        if len(parts) == 1:
            name = parts[0]
            if name == "len":
                target = args[0] if args else TOP
                key = ",".join(str(s) for s in sorted(target.storage))
                return AbstractValue(
                    kind="scalar", dtype=_WEAK_INT,
                    sym=f"len:{key}" if key else None,
                )
            if name in ("int", "round"):
                return AbstractValue(kind="scalar", dtype=_WEAK_INT)
            if name == "float":
                return AbstractValue(kind="scalar", dtype=_WEAK_FLOAT)
            if name == "bool":
                return AbstractValue(kind="scalar", dtype="bool")
            if name in ("min", "max", "abs", "sum"):
                scalars = [a for a in args if a.kind == "scalar"]
                if scalars and len(scalars) == len(args):
                    dtype = scalars[0].dtype
                    for s in scalars[1:]:
                        dtype = dtype if dtype == s.dtype else UNKNOWN
                    return AbstractValue(kind="scalar", dtype=dtype)
                return TOP
            if name in ("range", "enumerate", "zip", "reversed", "sorted",
                        "list", "tuple"):
                return AbstractValue(kind="tuple", sym=f"iter:{name}")
            if name == "open":
                return AbstractValue(kind="object", classname="file")
            if name and name[:1].isupper():
                bound = env.get(name)
                if bound is not None and bound.kind == "func":
                    return TOP
                return AbstractValue(kind="object", classname=name)
            return None

        # ---- numpy namespace ----
        if parts[0] in ("np", "numpy"):
            return self._numpy_call(node, parts[1:], args, kwmap, env)

        # ---- methods / other attributes ----
        leaf = parts[-1]
        if len(parts) >= 2:
            receiver_expr = node.func.value if isinstance(
                node.func, ast.Attribute
            ) else None
            receiver = (
                self.eval(receiver_expr, env)
                if receiver_expr is not None
                else TOP
            )
            if leaf in _MUTATING_METHODS:
                root = _root_of(receiver_expr) if receiver_expr is not None else None
                if root is not None:
                    self._mutate(root, node, f".{leaf}()", env)
                return TOP
            if receiver.kind == "array":
                return self._array_method(node, leaf, receiver, args, kwmap)
            if leaf == "astype" and receiver.kind == UNKNOWN:
                # .astype() is an ndarray-only method: even on a value
                # we know nothing about, the result is an array of the
                # statically named dtype.
                return self._array_method(node, leaf, receiver, args, kwmap)
            if leaf[:1].isupper():
                return AbstractValue(kind="object", classname=leaf)
        return None

    def _array_method(
        self,
        node: ast.Call,
        leaf: str,
        receiver: AbstractValue,
        args: tuple,
        kwmap: Mapping,
    ) -> AbstractValue | None:
        if leaf == "astype":
            dtype_expr = node.args[0] if node.args else _kwarg_expr(
                node, "dtype"
            )
            dtype = _static_dtype(dtype_expr, {})
            # astype(copy=False) may alias, but an explicit cast is the
            # sanctioned widening idiom either way; treat as fresh.
            return AbstractValue(
                kind="array", dtype=dtype, shape=receiver.shape,
                storage=frozenset({id(node)}),
            )
        if leaf == "copy":
            return AbstractValue(
                kind="array", dtype=receiver.dtype, shape=receiver.shape,
                storage=frozenset({id(node)}),
            )
        if leaf in _VIEW_METHODS:
            return AbstractValue(
                kind="array", dtype=receiver.dtype, shape=None,
                storage=receiver.storage, param=receiver.param,
            )
        if leaf == "flatten":
            return AbstractValue(
                kind="array", dtype=receiver.dtype, shape=None,
                storage=frozenset({id(node)}),
            )
        if leaf == "clip":
            return AbstractValue(
                kind="array", dtype=receiver.dtype, shape=receiver.shape,
                storage=frozenset({id(node)}),
            )
        if leaf in ("max", "min", "item", "argmax", "argmin", "all", "any"):
            dtype = receiver.dtype if leaf in ("max", "min", "item") else (
                "bool" if leaf in ("all", "any") else "int64"
            )
            return AbstractValue(kind="scalar", dtype=dtype)
        if leaf in ("sum", "prod", "dot"):
            dtype = (
                "int64"
                if receiver.dtype in _INT_WIDTH or receiver.dtype == "bool"
                else receiver.dtype
            )
            if "axis" in kwmap:
                return AbstractValue(
                    kind="array", dtype=dtype, shape=None,
                    storage=frozenset({id(node)}),
                )
            return AbstractValue(kind="scalar", dtype=dtype)
        if leaf == "mean":
            return AbstractValue(kind="scalar", dtype="float")
        return None

    def _numpy_call(
        self,
        node: ast.Call,
        tail: list,
        args: tuple,
        kwmap: Mapping,
        env: Env,
    ) -> AbstractValue | None:
        name = tail[0]
        # np.<ufunc>.accumulate/.reduce/.outer/.at
        if len(tail) == 2:
            method = tail[1]
            base = args[0] if args else TOP
            if method == "at":
                root = _root_of(node.args[0]) if node.args else None
                if root is not None:
                    self._mutate(root, node, f"np.{name}.at", env)
                return TOP
            if method == "accumulate":
                out = kwmap.get("out")
                if out is not None and out.kind == "array":
                    return out
                return AbstractValue(
                    kind="array", dtype=base.dtype, shape=base.shape,
                    storage=frozenset({id(node)}),
                )
            if method == "reduce":
                return AbstractValue(kind="scalar", dtype=base.dtype)
            if method == "outer":
                return AbstractValue(
                    kind="array",
                    dtype=promote(
                        base.dtype, args[1].dtype if len(args) > 1 else UNKNOWN
                    ),
                    storage=frozenset({id(node)}),
                )
            return None
        if len(tail) != 1:
            return None

        if name in _ALLOCATORS:
            shape = self._shape_argument(node, kwmap, env)
            dtype = _static_dtype(_kwarg_expr(node, "dtype"), env)
            if dtype == UNKNOWN and not _has_kwarg(node, "dtype"):
                if name == "full":
                    fill = args[1] if len(args) > 1 else TOP
                    dtype = (
                        "int64" if fill.dtype == _WEAK_INT
                        else "float" if fill.dtype == _WEAK_FLOAT
                        else UNKNOWN
                    )
                else:
                    dtype = "float"  # NumPy's default is float64
            return AbstractValue(
                kind="array", dtype=dtype, shape=shape,
                storage=frozenset({id(node)}),
            )
        if name in _LIKE_ALLOCATORS:
            proto = args[0] if args else TOP
            dtype = _static_dtype(_kwarg_expr(node, "dtype"), env)
            if dtype == UNKNOWN and not _has_kwarg(node, "dtype"):
                dtype = proto.dtype
            return AbstractValue(
                kind="array", dtype=dtype, shape=proto.shape,
                storage=frozenset({id(node)}),
            )
        if name == "arange":
            dtype = _static_dtype(_kwarg_expr(node, "dtype"), env)
            if dtype == UNKNOWN and not _has_kwarg(node, "dtype"):
                if all(a.dtype == _WEAK_INT for a in args):
                    dtype = "int64"
            return AbstractValue(
                kind="array", dtype=dtype, shape=(None,),
                storage=frozenset({id(node)}),
            )
        if name in ("array", "asarray", "ascontiguousarray", "asanyarray"):
            source = args[0] if args else TOP
            dtype = _static_dtype(_kwarg_expr(node, "dtype"), env)
            if dtype == UNKNOWN and not _has_kwarg(node, "dtype"):
                if source.kind == "array":
                    dtype = source.dtype
                elif source.kind == "tuple" and source.elements:
                    dtype = (
                        "int64"
                        if all(
                            e.dtype == _WEAK_INT for e in source.elements
                        )
                        else UNKNOWN
                    )
            shape = source.shape if source.kind == "array" else (
                (len(source.elements),)
                if source.kind == "tuple" and source.elements is not None
                else None
            )
            # asarray of an array may return the input itself.
            storage = frozenset({id(node)}) | (
                source.storage if name != "array" else frozenset()
            )
            return AbstractValue(
                kind="array", dtype=dtype, shape=shape, storage=storage,
                param=source.param if name != "array" else False,
            )
        if name == "copyto":
            root = _root_of(node.args[0]) if node.args else None
            if root is not None:
                self._mutate(root, node, "np.copyto", env)
            return TOP
        if name == "broadcast_to":
            source = args[0] if args else TOP
            shape = self._shape_argument(node, kwmap, env, arg_index=1)
            return AbstractValue(
                kind="array", dtype=source.dtype, shape=shape,
                storage=source.storage, param=source.param,
            )
        if name == "where":
            a = args[1] if len(args) > 1 else TOP
            b = args[2] if len(args) > 2 else TOP
            shape = self._broadcast(node, a.shape, b.shape)
            if len(args) > 0 and args[0].kind == "array":
                shape = self._broadcast(node, shape, args[0].shape)
            return AbstractValue(
                kind="array",
                dtype=_combine_operands(a, b),
                shape=shape,
                storage=frozenset({id(node)}),
            )
        if name in _BINARY_UFUNCS:
            a = args[0] if args else TOP
            b = args[1] if len(args) > 1 else TOP
            out = kwmap.get("out")
            arrays = [v for v in (a, b) if v.kind == "array"]
            if arrays and len(arrays) == 2:
                shape = self._broadcast(node, a.shape, b.shape)
            else:
                shape = arrays[0].shape if arrays else None
            if out is not None and out.kind == "array":
                return out
            dtype = (
                "bool"
                if name in _COMPARE_UFUNCS
                else _combine_operands(a, b)
            )
            return AbstractValue(
                kind="array" if arrays else "scalar",
                dtype=dtype,
                shape=shape,
                storage=frozenset({id(node)}) if arrays else frozenset(),
            )
        if name in _FLOAT_UFUNCS:
            a = args[0] if args else TOP
            out = kwmap.get("out")
            if out is not None and out.kind == "array":
                return out
            return AbstractValue(
                kind=a.kind if a.kind in ("array", "scalar") else UNKNOWN,
                dtype="float",
                shape=a.shape,
                storage=frozenset({id(node)}) if a.kind == "array" else frozenset(),
            )
        if name in _PASSTHROUGH_UFUNCS:
            a = args[0] if args else TOP
            storage = (
                frozenset({id(node)})
                if name not in ("ascontiguousarray",)
                else frozenset({id(node)}) | a.storage
            )
            return replace(a, storage=storage) if a.kind == "array" else a
        if name == "clip":
            a = args[0] if args else TOP
            out = kwmap.get("out")
            if out is not None and out.kind == "array":
                return out
            return AbstractValue(
                kind="array", dtype=a.dtype, shape=a.shape,
                storage=frozenset({id(node)}),
            )
        if name in _REDUCERS_INT64:
            a = args[0] if args else TOP
            dtype = (
                "int64"
                if a.dtype in _INT_WIDTH or a.dtype == "bool"
                else "float" if a.dtype == "float" else UNKNOWN
            )
            if "axis" in kwmap:
                return AbstractValue(
                    kind="array", dtype=dtype, shape=None,
                    storage=frozenset({id(node)}),
                )
            return AbstractValue(kind="scalar", dtype=dtype)
        if name in ("concatenate", "stack", "hstack", "vstack", "column_stack"):
            parts_v = args[0].elements if args and args[0].kind == "tuple" else None
            dtype = UNKNOWN
            if parts_v:
                dtype = parts_v[0].dtype
                for p in parts_v[1:]:
                    dtype = promote(dtype, p.dtype)
            return AbstractValue(
                kind="array", dtype=dtype, shape=None,
                storage=frozenset({id(node)}),
            )
        if name in _STATIC_DTYPES:
            # np.int32(5), np.float64(x): a *strong* NumPy scalar that
            # does promote arrays it meets (unlike weak Python ints).
            return AbstractValue(
                kind="scalar", dtype=_STATIC_DTYPES[name]
            )
        if name in ("searchsorted", "argsort", "argmax", "argmin",
                    "count_nonzero"):
            return AbstractValue(kind="scalar", dtype=_WEAK_INT)
        if name in ("sort", "unique", "flip", "roll", "repeat", "tile"):
            a = args[0] if args else TOP
            return AbstractValue(
                kind="array", dtype=a.dtype, shape=None,
                storage=frozenset({id(node)}),
            )
        return None

    def _shape_argument(
        self,
        node: ast.Call,
        kwmap: Mapping,
        env: Env,
        arg_index: int = 0,
    ) -> Shape:
        expr: ast.expr | None = None
        if len(node.args) > arg_index:
            expr = node.args[arg_index]
        else:
            expr = _kwarg_expr(node, "shape")
        if expr is None:
            return None
        if isinstance(expr, (ast.Tuple, ast.List)):
            return tuple(self._dim_of(e, env) for e in expr.elts)
        value = self.eval(expr, env)
        if value.kind == "scalar":
            return (_dim_from_scalar(value),)
        if value.kind == "tuple" and value.elements is not None:
            return tuple(_dim_from_scalar(e) for e in value.elements)
        if value.kind == "array":
            # np.zeros(x.shape) handled through eval_Attribute's tuple.
            return None
        return None

    def _dim_of(self, expr: ast.expr, env: Env) -> Dim:
        value = self.eval(expr, env)
        if value.kind == "scalar":
            return _dim_from_scalar(value)
        return None

    def _element_of(
        self, iter_expr: ast.expr, iter_value: AbstractValue
    ) -> AbstractValue:
        """The abstract value bound by ``for target in <iter>``."""
        if isinstance(iter_expr, ast.Call):
            cname = dotted_name(iter_expr.func)
            if cname == "range":
                return AbstractValue(kind="scalar", dtype=_WEAK_INT)
            if cname == "enumerate":
                return AbstractValue(
                    kind="tuple",
                    elements=(
                        AbstractValue(kind="scalar", dtype=_WEAK_INT),
                        TOP,
                    ),
                )
        if iter_value.kind == "array":
            if iter_value.shape is not None and len(iter_value.shape) == 1:
                return AbstractValue(kind="scalar", dtype=iter_value.dtype)
            shape = (
                iter_value.shape[1:] if iter_value.shape is not None else None
            )
            return AbstractValue(
                kind="array", dtype=iter_value.dtype, shape=shape,
                storage=iter_value.storage, param=iter_value.param,
            )
        return TOP


def _dim_from_scalar(value: AbstractValue) -> Dim:
    if isinstance(value.sym, int):
        return value.sym
    if isinstance(value.sym, str):
        return value.sym
    return None


def _combine_operands(a: AbstractValue, b: AbstractValue) -> str:
    if a.kind == "array" and b.kind == "array":
        return promote(a.dtype, b.dtype)
    if a.kind == "array":
        return promote_with_scalar(
            a.dtype, b.dtype if b.kind == "scalar" else UNKNOWN
        )
    if b.kind == "array":
        return promote_with_scalar(
            b.dtype, a.dtype if a.kind == "scalar" else UNKNOWN
        )
    return UNKNOWN


def _root_of(node: ast.expr | None) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _names_in(node: ast.expr) -> Iterator[str]:
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, (ast.Tuple, ast.List)):
        for elt in node.elts:
            yield from _names_in(elt)


def _is_astype_call(node: ast.expr | None) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("astype", "view")
    )


def _kwarg_expr(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _has_kwarg(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _slice_shape(shape: Shape, index: ast.expr) -> Shape:
    """The shape of ``x[index]`` given ``x``'s symbolic shape."""
    if shape is None:
        return None

    def one(dim_index: int, expr: ast.expr) -> tuple:
        """(consumed_axes, produced_dims) for one index element."""
        if isinstance(expr, ast.Slice):
            if expr.lower is None and expr.upper is None and expr.step is None:
                return 1, (shape[dim_index],) if dim_index < len(shape) else (None,)
            return 1, (None,)
        if isinstance(expr, ast.Constant) and expr.value is None:
            return 0, (1,)  # np.newaxis
        # Integer (or anything else scalar-like) drops the axis;
        # fancy/boolean indexing degrades to unknown handled below.
        return 1, ()

    elems = (
        list(index.elts) if isinstance(index, ast.Tuple) else [index]
    )
    if any(isinstance(e, (ast.List, ast.Name)) for e in elems) and not all(
        isinstance(e, (ast.Slice, ast.Constant)) for e in elems
    ):
        # Fancy indexing (array/list indices): rank preserved only by
        # accident; give up on the shape but keep the view-ness.
        return None
    out: list[Dim] = []
    axis = 0
    for e in elems:
        consumed, produced = one(axis, e)
        out.extend(produced)
        axis += consumed
        if axis > len(shape):
            return None
    out.extend(shape[axis:])
    return tuple(out)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def analyze_function(fn: ast.AST, qualname: str = "") -> FunctionAnalysis:
    """Interpret one function body; never raises."""
    interp = _Interpreter(fn, qualname or getattr(fn, "name", "<lambda>"))
    analysis = FunctionAnalysis(fn=fn, qualname=interp.qualname)
    try:
        interp.run()
    except Exception as exc:  # pragma: no cover - defensive: the
        # interpreter must never take the linter down with it
        analysis.confident = False
        analysis.error = f"{type(exc).__name__}: {exc}"
        return analysis
    analysis.confident = interp.confident
    analysis.events = interp.events
    analysis.narrow_names = frozenset(interp.narrow_names)
    analysis.local_defs = dict(interp.local_defs)
    return analysis


def analyze_module(
    tree: ast.Module, qualnames: Mapping | None = None
) -> ModuleAnalysis:
    """Analyze every function definition in a parsed module."""
    out = ModuleAnalysis()
    for node in ast.walk(tree):
        if isinstance(node, _FN_TYPES):
            qualname = (
                qualnames.get(id(node), node.name)
                if qualnames is not None
                else node.name
            )
            analysis = analyze_function(node, qualname)
            out.functions.append(analysis)
            out.by_node[id(node)] = analysis
    return out


def file_analysis(ctx) -> ModuleAnalysis:
    """The (memoized) module analysis for one :class:`FileContext`."""
    cached = ctx.cache.get("dataflow")
    if cached is None:
        from repro.lint.astutil import qualname_index

        cached = analyze_module(ctx.tree, qualname_index(ctx.tree))
        ctx.cache["dataflow"] = cached
    return cached


def subtree_analyses(
    module: ModuleAnalysis, fn: ast.AST
) -> tuple[bool, list]:
    """All analyses for ``fn`` and its nested defs.

    Returns ``(all_confident, analyses)`` — the delegating rules treat
    a function unit as trustworthy only when every nested unit
    converged cleanly too.
    """
    units = [
        module.by_node.get(id(node))
        for node in ast.walk(fn)
        if isinstance(node, _FN_TYPES)
    ]
    present = [u for u in units if u is not None]
    confident = bool(present) and all(
        u.confident and u.error is None for u in present
    )
    return confident, present
