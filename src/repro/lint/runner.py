"""Driving the rules over a source tree.

:class:`LintRunner` discovers files, parses each once, fans the rule
set over the ASTs, runs the cross-file ``finish`` hooks, and applies
inline suppressions — producing a :class:`LintResult` the CLI renders.
``run_sources`` accepts an in-memory ``{path: source}`` map so rule
tests exercise fixture snippets without touching the filesystem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, all_rules
from repro.lint.suppress import SuppressionMap, scan_suppressions

__all__ = ["LintRunner", "LintResult", "Project"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "venv", "node_modules", ".mypy_cache"}
)


@dataclass
class Project:
    """What cross-file ``finish`` hooks get to see."""

    root: Path
    file_paths: list[str] = field(default_factory=list)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]
    suppressed: int = 0  #: findings silenced by inline directives
    files_checked: int = 0

    @property
    def errors(self) -> list[Finding]:
        """Only the error-severity findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]


def _module_path(rel_path: str) -> str:
    """The scope-matching path: from the last ``repro/`` component on.

    Paths that do not contain a ``repro`` package component (test
    fixtures, scratch files) scope as themselves.
    """
    parts = rel_path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return "/".join(parts)


class LintRunner:
    """Run a rule set over files or in-memory sources."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        rules: Sequence[Rule] | None = None,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
    ) -> None:
        self.root = Path(root or Path.cwd()).resolve()
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            chosen = [
                r for r in chosen if r.id in wanted or r.name in wanted
            ]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [
                r
                for r in chosen
                if r.id not in dropped and r.name not in dropped
            ]
        self.rules = chosen

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run_paths(self, paths: Sequence[str | Path]) -> LintResult:
        """Lint files/directories on disk."""
        sources: dict[str, str] = {}
        unreadable: list[tuple[str, str]] = []
        for path in self._discover(paths):
            rel = self._relative(path)
            try:
                sources[rel] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                unreadable.append((rel, str(exc)))
        result = self.run_sources(sources)
        for rel, reason in unreadable:
            result.findings.append(
                Finding(
                    path=rel,
                    line=0,
                    col=0,
                    rule_id="RPL100",
                    rule_name="parse-error",
                    message=f"file could not be read: {reason}",
                )
            )
        result.findings.sort()
        result.files_checked += len(unreadable)
        return result

    def run_sources(self, sources: Mapping[str, str]) -> LintResult:
        """Lint an in-memory ``{relative_path: source}`` mapping."""
        project = Project(root=self.root, file_paths=sorted(sources))
        raw: list[Finding] = []
        suppressions: dict[str, SuppressionMap] = {}
        for rel in sorted(sources):
            source = sources[rel]
            suppressions[rel] = scan_suppressions(source)
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                raw.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 0,
                        col=(exc.offset or 1) - 1,
                        rule_id="RPL100",
                        rule_name="parse-error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            ctx = FileContext(
                path=rel,
                module_path=_module_path(rel),
                source=source,
                tree=tree,
            )
            for rule in self.rules:
                if rule.applies_to(ctx):
                    raw.extend(rule.check_file(ctx))
        for rule in self.rules:
            raw.extend(rule.finish(project))

        kept: list[Finding] = []
        suppressed = 0
        for f in raw:
            smap = suppressions.get(f.path)
            if smap is not None and smap.is_suppressed(
                f.line, f.rule_id, f.rule_name
            ):
                suppressed += 1
            else:
                kept.append(f)
        kept.sort()
        return LintResult(
            findings=kept,
            suppressed=suppressed,
            files_checked=len(sources),
        )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, paths: Sequence[str | Path]) -> list[Path]:
        out: list[Path] = []
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file():
                candidates: Iterable[Path] = [path]
            elif path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
            for candidate in candidates:
                if any(part in _SKIP_DIRS for part in candidate.parts):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(resolved)
        return out

    def _relative(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()
