"""Driving the rules over a source tree.

:class:`LintRunner` discovers files, parses each once, fans the rule
set over the ASTs, runs the cross-file ``finish`` hooks, and applies
inline suppressions — producing a :class:`LintResult` the CLI renders.
``run_sources`` accepts an in-memory ``{path: source}`` map so rule
tests exercise fixture snippets without touching the filesystem.

Per-file work parallelizes: rules that never override
:meth:`Rule.finish` are *local* — their findings depend only on one
file's source — so they can run in worker processes (``jobs``) and
their findings can be memoized in a content-hash cache
(``.repro-lint-cache/``) keyed on the file body, the rule set and the
linter's own sources.  Cross-file rules (the observability-registry
reconciliation) accumulate state across ``check_file`` calls and must
stay in the parent process; they run serially and are never cached.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.lint.findings import Finding, Severity
from repro.lint.rules import FileContext, Rule, all_rules, get_rule
from repro.lint.suppress import SuppressionMap, scan_suppressions

__all__ = ["LintRunner", "LintResult", "Project", "DEFAULT_CACHE_DIR"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".venv",
        "venv",
        "node_modules",
        ".mypy_cache",
        ".repro-lint-cache",
    }
)

DEFAULT_CACHE_DIR = ".repro-lint-cache"

_CACHE_VERSION = 1

#: Lazily computed digest of the lint package's own sources: editing
#: any rule or the dataflow core invalidates every cache entry.
_package_salt_memo: str | None = None


def _package_salt() -> str:
    global _package_salt_memo
    if _package_salt_memo is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).resolve().parent
        for path in sorted(package_dir.rglob("*.py")):
            digest.update(path.relative_to(package_dir).as_posix().encode())
            try:
                digest.update(path.read_bytes())
            except OSError:
                pass
        _package_salt_memo = digest.hexdigest()
    return _package_salt_memo


@dataclass
class Project:
    """What cross-file ``finish`` hooks get to see."""

    root: Path
    file_paths: list[str] = field(default_factory=list)


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: list[Finding]
    suppressed: int = 0  #: findings silenced by inline directives
    files_checked: int = 0
    cache_hits: int = 0  #: files whose local findings came from cache

    @property
    def errors(self) -> list[Finding]:
        """Only the error-severity findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]


def _module_path(rel_path: str) -> str:
    """The scope-matching path: from the last ``repro/`` component on.

    Paths that do not contain a ``repro`` package component (test
    fixtures, scratch files) scope as themselves.
    """
    parts = rel_path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return "/".join(parts)


def _is_local_rule(rule: Rule) -> bool:
    """Whether ``rule``'s findings depend on one file alone."""
    return type(rule).finish is Rule.finish


def _lint_one_file(
    rel: str, module_path: str, source: str, rule_ids: Sequence[str]
) -> list[dict]:
    """Run the named local rules over one source; findings as dicts.

    Shared by the in-process path, the worker processes and the cache
    writer, so all three produce byte-identical results.
    """
    tree = ast.parse(source)
    ctx = FileContext(
        path=rel, module_path=module_path, source=source, tree=tree
    )
    out: list[dict] = []
    for rule_id in rule_ids:
        rule = get_rule(rule_id)()
        if rule.applies_to(ctx):
            out.extend(f.to_dict() for f in rule.check_file(ctx))
    return out


def _lint_file_task(payload: tuple) -> tuple[str, list[dict]]:
    """Worker-side entry: plain-data payload in, plain data out."""
    rel, module_path, source, rule_ids = payload
    return rel, _lint_one_file(rel, module_path, source, rule_ids)


class LintRunner:
    """Run a rule set over files or in-memory sources."""

    def __init__(
        self,
        root: str | Path | None = None,
        *,
        rules: Sequence[Rule] | None = None,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] | None = None,
        jobs: int = 1,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.root = Path(root or Path.cwd()).resolve()
        chosen = list(rules) if rules is not None else all_rules()
        if select is not None:
            wanted = set(select)
            chosen = [
                r for r in chosen if r.id in wanted or r.name in wanted
            ]
        if ignore is not None:
            dropped = set(ignore)
            chosen = [
                r
                for r in chosen
                if r.id not in dropped and r.name not in dropped
            ]
        self.rules = chosen
        self.jobs = max(1, jobs)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run_paths(self, paths: Sequence[str | Path]) -> LintResult:
        """Lint files/directories on disk."""
        sources: dict[str, str] = {}
        unreadable: list[tuple[str, str]] = []
        for path in self._discover(paths):
            rel = self._relative(path)
            try:
                sources[rel] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                unreadable.append((rel, str(exc)))
        result = self.run_sources(sources)
        for rel, reason in unreadable:
            result.findings.append(
                Finding(
                    path=rel,
                    line=0,
                    col=0,
                    rule_id="RPL100",
                    rule_name="parse-error",
                    message=f"file could not be read: {reason}",
                )
            )
        result.findings.sort()
        result.files_checked += len(unreadable)
        return result

    def run_sources(self, sources: Mapping[str, str]) -> LintResult:
        """Lint an in-memory ``{relative_path: source}`` mapping."""
        project = Project(root=self.root, file_paths=sorted(sources))
        local_ids = tuple(
            sorted(r.id for r in self.rules if _is_local_rule(r))
        )
        global_rules = [r for r in self.rules if not _is_local_rule(r)]

        raw: list[Finding] = []
        suppressions: dict[str, SuppressionMap] = {}
        pending: list[tuple[str, str, str, str | None]] = []
        cache_hits = 0
        for rel in sorted(sources):
            source = sources[rel]
            suppressions[rel] = scan_suppressions(source)
            try:
                tree = ast.parse(source)
            except SyntaxError as exc:
                raw.append(
                    Finding(
                        path=rel,
                        line=exc.lineno or 0,
                        col=(exc.offset or 1) - 1,
                        rule_id="RPL100",
                        rule_name="parse-error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
                continue
            module_path = _module_path(rel)
            ctx = FileContext(
                path=rel,
                module_path=module_path,
                source=source,
                tree=tree,
            )
            for rule in global_rules:
                if rule.applies_to(ctx):
                    raw.extend(rule.check_file(ctx))
            key = self._cache_key(rel, module_path, source, local_ids)
            cached = self._cache_read(key)
            if cached is not None:
                cache_hits += 1
                raw.extend(Finding.from_dict(d) for d in cached)
            else:
                pending.append((rel, module_path, source, key))

        if pending:
            raw.extend(self._run_local(pending, local_ids))

        for rule in self.rules:
            raw.extend(rule.finish(project))

        kept: list[Finding] = []
        suppressed = 0
        for f in raw:
            smap = suppressions.get(f.path)
            if smap is not None and smap.is_suppressed(
                f.line, f.rule_id, f.rule_name
            ):
                suppressed += 1
            else:
                kept.append(f)
        kept.sort()
        return LintResult(
            findings=kept,
            suppressed=suppressed,
            files_checked=len(sources),
            cache_hits=cache_hits,
        )

    # ------------------------------------------------------------------
    # Local-rule execution (serial or worker pool) and caching
    # ------------------------------------------------------------------
    def _run_local(
        self,
        pending: Sequence[tuple[str, str, str, str | None]],
        local_ids: tuple[str, ...],
    ) -> list[Finding]:
        by_rel: dict[str, list[dict]] | None = None
        if self.jobs > 1 and len(pending) > 1:
            by_rel = self._run_pool(pending, local_ids)
        if by_rel is None:
            by_rel = {
                rel: _lint_one_file(rel, module_path, source, local_ids)
                for rel, module_path, source, _ in pending
            }
        out: list[Finding] = []
        for rel, _, _, key in pending:
            dicts = by_rel[rel]
            self._cache_write(key, dicts)
            out.extend(Finding.from_dict(d) for d in dicts)
        return out

    def _run_pool(
        self,
        pending: Sequence[tuple[str, str, str, str | None]],
        local_ids: tuple[str, ...],
    ) -> dict[str, list[dict]] | None:
        """Fan the pending files over a process pool; ``None`` on any
        pool failure (the caller falls back to in-process serial)."""
        import concurrent.futures

        payloads = [
            (rel, module_path, source, local_ids)
            for rel, module_path, source, _ in pending
        ]
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=min(self.jobs, len(payloads))
            ) as pool:
                return dict(pool.map(_lint_file_task, payloads))
        except Exception:
            return None

    def _cache_key(
        self,
        rel: str,
        module_path: str,
        source: str,
        local_ids: tuple[str, ...],
    ) -> str | None:
        if self.cache_dir is None:
            return None
        digest = hashlib.sha256()
        digest.update(_package_salt().encode())
        digest.update(f"v{_CACHE_VERSION}".encode())
        digest.update(rel.encode())
        digest.update(module_path.encode())
        digest.update(",".join(local_ids).encode())
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _cache_read(self, key: str | None) -> list[dict] | None:
        if key is None or self.cache_dir is None:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, list):
            return None
        return data

    def _cache_write(self, key: str | None, dicts: list[dict]) -> None:
        if key is None or self.cache_dir is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            path = self.cache_dir / f"{key}.json"
            path.write_text(
                json.dumps(dicts, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            pass  # a read-only tree just runs uncached

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def _discover(self, paths: Sequence[str | Path]) -> list[Path]:
        out: list[Path] = []
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_file():
                candidates: Iterable[Path] = [path]
            elif path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                raise FileNotFoundError(f"no such file or directory: {raw}")
            for candidate in candidates:
                if any(part in _SKIP_DIRS for part in candidate.parts):
                    continue
                resolved = candidate.resolve()
                if resolved not in seen:
                    seen.add(resolved)
                    out.append(resolved)
        return out

    def _relative(self, path: Path) -> str:
        try:
            return path.relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()
