"""Fault-tolerance policy for the group executor.

The paper's whole-application speedup assumes every dispatched work
unit completes: one stalled SIMT lane stalls its kernel launch.  The
functional executor has the same exposure — a hung worker process used
to hang :func:`~repro.engine.executor.run_groups` forever, and a dead
one discarded every completed group score.  Production SW engines
(SWAPHI's multi-device dispatcher, the SSW library's API contract)
degrade and report instead of crashing or hanging; this module is that
policy layer:

* :class:`FaultPolicy` — per-task timeout, bounded retry with
  exponential backoff + seeded jitter, a whole-search deadline, and a
  dispatch chunk size;
* :class:`SearchDeadlineExceeded` — the typed deadline error, carrying
  every group score completed before the deadline fired;
* :class:`InjectionPlan` — a deterministic fault injector (crash /
  hang / garbage on chosen tasks) that runs *inside worker processes*,
  so every degradation path is unit-testable without flaky
  timing-dependent tests.

The executor consumes the policy; nothing here imports multiprocessing.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DEFAULT_POLICY",
    "DeadlineClock",
    "FaultPolicy",
    "InjectionPlan",
    "SearchDeadlineExceeded",
    "auto_chunksize",
]


@dataclass(frozen=True)
class InjectionPlan:
    """Deterministic faults injected into pool workers, for testing.

    The plan ships to every worker through the pool initializer and is
    consulted once per group task.  All triggers are deterministic
    functions of the group index or of the worker's own completed-task
    count — no randomness, no wall-clock races — so degradation tests
    assert exact outcomes.  Injection never applies to the serial path:
    a group that always fails in the pool still completes correctly in
    the serial retry, which is exactly the recovery property under test.

    Attributes
    ----------
    crash_after:
        A worker process calls ``os._exit`` (simulating a segfault /
        OOM-kill) when it has already completed this many group tasks
        and receives another.  ``None`` disables.
    crash_groups:
        Group indices whose task always kills its worker.
    hang_groups:
        Group indices whose task sleeps ``hang_seconds`` before
        returning (simulating a wedged device / livelocked worker).
    hang_seconds:
        Sleep length for ``hang_groups``; keep it comfortably above the
        policy timeout but finite, so an abandoned worker that escapes
        termination still exits on its own.
    garbage_groups:
        Group indices whose task returns a wrong-shaped array
        (simulating a corrupted result buffer).
    """

    crash_after: int | None = None
    crash_groups: tuple[int, ...] = ()
    hang_groups: tuple[int, ...] = ()
    hang_seconds: float = 30.0
    garbage_groups: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.crash_after is not None and self.crash_after < 0:
            raise ValueError("crash_after must be >= 0 or None")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def apply(self, group_index: int, tasks_done: int) -> bool:
        """Run the injected fault for one group task, worker-side.

        Returns ``True`` when the task must return garbage instead of a
        real score vector.  Crash triggers do not return.
        """
        if self.crash_after is not None and tasks_done >= self.crash_after:
            os._exit(13)
        if group_index in self.crash_groups:
            os._exit(13)
        if group_index in self.hang_groups:
            time.sleep(self.hang_seconds)
        return group_index in self.garbage_groups


@dataclass(frozen=True)
class FaultPolicy:
    """How a search tolerates slow, dead and lying workers.

    Attributes
    ----------
    timeout:
        Seconds a dispatched pool task may run (queue wait included)
        before it is abandoned and retried.  ``None`` (default) never
        times tasks out.  Applies to the pool path only — a serial
        NumPy sweep cannot be preempted mid-group.
    retries:
        Extra pool attempts per task after its first failure (timeout,
        crash, garbage or raised exception).  A task that exhausts its
        retries is recomputed serially, injection-free, so scores are
        produced unless the deadline fires first.
    deadline:
        Whole-search wall-clock budget in seconds.  When exceeded, the
        executor abandons all outstanding work and raises
        :class:`SearchDeadlineExceeded` carrying everything completed
        so far.  ``None`` (default) never expires.  Honored by both the
        pool and serial paths (the serial path checks between groups).
    backoff:
        Base delay in seconds before the first retry of a task.
    backoff_multiplier:
        Growth factor per successive retry of the same task.
    jitter:
        Uniform-random fraction added on top of each delay
        (``delay * [0, jitter)``), decorrelating retry storms.  Drawn
        from a :class:`random.Random` seeded with ``seed``, so retry
        schedules are reproducible.
    seed:
        Seed for the jitter stream.
    chunksize:
        Groups dispatched per pool task.  ``None`` (default) picks
        ``max(1, n_groups // (workers * 4))`` — large enough to
        amortize the per-task round trip over thousands of tiny
        groups, small enough that every worker stays busy and a
        failure loses little.  Retry/recovery granularity is the
        chunk; set ``1`` for strict per-group recovery.
    inject:
        Optional :class:`InjectionPlan` for deterministic fault
        testing.  Never applied on serial paths.
    """

    timeout: float | None = None
    retries: int = 2
    deadline: float | None = None
    backoff: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    chunksize: int | None = None
    inject: InjectionPlan | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive or None")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive or None")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.chunksize is not None and self.chunksize <= 0:
            raise ValueError("chunksize must be positive or None")

    def retry_delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to hold a task back before pool attempt ``attempt``
        (the first retry is attempt 2)."""
        if attempt < 2:
            return 0.0
        base = self.backoff * self.backoff_multiplier ** (attempt - 2)
        if self.jitter:
            base *= 1.0 + self.jitter * rng.random()
        return base


#: The executor's default: no timeout, no deadline, two pool retries
#: then serial recompute — always terminates, always returns scores.
DEFAULT_POLICY = FaultPolicy()


def auto_chunksize(n_groups: int, workers: int) -> int:
    """Groups per pool task when the policy does not pin one.

    ``pool.map``'s old default of one group per round trip serialized
    thousands of submissions for tiny groups; aiming for ~4 chunks per
    worker amortizes the round trips while keeping enough tasks in
    flight that stragglers rebalance and a lost task loses little.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if n_groups < 0:
        raise ValueError(f"n_groups must be >= 0, got {n_groups}")
    return max(1, n_groups // (workers * 4))


class DeadlineClock:
    """Monotonic countdown for one search's wall-clock budget."""

    __slots__ = ("deadline", "_start")

    def __init__(self, deadline: float | None) -> None:
        self.deadline = deadline
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` when no deadline is set."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed

    def expired(self) -> bool:
        r = self.remaining()
        return r is not None and r <= 0


@dataclass
class SearchDeadlineExceeded(TimeoutError):
    """A search's wall-clock deadline fired with work still pending.

    Everything completed before the deadline is attached, so callers
    can use the partial ranking or resubmit only the missing groups.

    Attributes
    ----------
    deadline, elapsed:
        The configured budget and the wall time actually spent.
    partial:
        Completed per-group score vectors, keyed by group index.
    pending:
        Indices of the groups still unscored when the deadline fired.
    partial_scores, completed_mask:
        Filled by :meth:`repro.engine.BatchedEngine.search` before
        re-raising: scores scattered to database order (unscored
        entries hold ``-1``) and the matching validity mask.
    """

    deadline: float
    elapsed: float
    partial: dict[int, np.ndarray] = field(default_factory=dict)
    pending: tuple[int, ...] = ()
    partial_scores: np.ndarray | None = None
    completed_mask: np.ndarray | None = None

    def __post_init__(self) -> None:
        super().__init__(str(self))

    def __str__(self) -> str:
        return (
            f"search deadline of {self.deadline:g}s exceeded after "
            f"{self.elapsed:.3f}s with {len(self.partial)} group(s) "
            f"completed and {len(self.pending)} pending"
        )
