"""Memory budgeting for group packing: split instead of OOM.

The lane sweep materializes roughly seven ``(size, max_len)`` working
arrays per group (H double-buffer, F, Htmp, scan and scratch buffers,
the similarity gather) on top of the ``uint8`` code matrix — see
:func:`~repro.engine.lanes.score_packed_group`.  A titin-class tail
group in a wide packing can therefore allocate hundreds of megabytes at
once, and on a memory-capped host the kernel's OOM killer ends the
whole search (exactly the process-level failure the checkpoint journal
exists to survive — better to not trigger it at all).

:class:`MemoryBudget` caps the estimated working set of any single
packed group.  ``pack_database(db, group_size, budget=...)`` consults
it while cutting the length-sorted order into groups: a chunk whose
padded rectangle would exceed the budget is split into narrower groups
(fewer lanes, same width) that each fit.  Splitting never changes
scores — groups are scored independently — only the fan-out geometry,
so the guard degrades throughput gracefully instead of killing the
process.  A single sequence so long that even a one-lane group exceeds
the budget cannot be split further; it is kept as a singleton group and
counted, with a warning, so operators can raise the budget or trim the
database.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.obs import current as obs_current

__all__ = [
    "MemoryBudget",
    "STRIP_SWEEP_BYTES_PER_CELL",
    "SWEEP_BYTES_PER_CELL",
    "estimate_group_bytes",
    "estimate_strip_group_bytes",
]

#: Estimated working-set bytes per padded lane cell: seven int64
#: ``(size, max_len)`` sweep buffers (the worst-case dtype) plus the
#: uint8 code matrix, rounded up for interpreter slack.  Deliberately
#: conservative — the budget is an OOM guard, not an allocator.
SWEEP_BYTES_PER_CELL = 64

#: The strip-sweep engine keeps more live ``(strips, width)`` buffers
#: per row than the rectangle sweep (H/F/E plus the diagonal shift, two
#: prefix-scan workspaces and the segmented-carry key), so its
#: per-strip-cell estimate is half again the rectangle figure.
STRIP_SWEEP_BYTES_PER_CELL = 96


def estimate_group_bytes(size: int, max_length: int) -> int:
    """Estimated peak working-set bytes for sweeping one packed group."""
    if size < 1 or max_length < 1:
        raise ValueError(
            f"group geometry must be positive, got {size}x{max_length}"
        )
    return size * (max_length + 1) * SWEEP_BYTES_PER_CELL


def estimate_strip_group_bytes(sweep_cells: int) -> int:
    """Estimated peak working-set bytes for one strip-engine group,
    from its total strip-swept cells (``strips x strip_width``)."""
    if sweep_cells < 1:
        raise ValueError(
            f"sweep cells must be positive, got {sweep_cells}"
        )
    return (sweep_cells + 1) * STRIP_SWEEP_BYTES_PER_CELL


@dataclass(frozen=True)
class MemoryBudget:
    """Cap on one packed group's estimated sweep working set.

    Attributes
    ----------
    max_group_bytes:
        Largest estimated working set (see :func:`estimate_group_bytes`)
        a single group may reach.  Groups that would exceed it are split
        into narrower groups at packing time.
    """

    max_group_bytes: int

    def __post_init__(self) -> None:
        if self.max_group_bytes <= 0:
            raise ValueError(
                f"max_group_bytes must be positive, got {self.max_group_bytes}"
            )

    @classmethod
    def from_megabytes(cls, megabytes: float) -> "MemoryBudget":
        """A budget from a mebibyte count (the CLI's unit)."""
        if megabytes <= 0:
            raise ValueError(
                f"memory budget must be positive, got {megabytes} MiB"
            )
        return cls(max_group_bytes=int(megabytes * 2**20))

    def fits(self, size: int, max_length: int) -> bool:
        """Whether a ``size x max_length`` group stays within budget."""
        return estimate_group_bytes(size, max_length) <= self.max_group_bytes

    def split_points(self, lengths: "list[int]") -> list[int]:
        """Cut one ascending-length chunk into budget-fitting segments.

        ``lengths`` is the chunk's (already length-sorted, ascending)
        true lane lengths.  Returns segment *end* offsets — ``[len]``
        when the whole chunk fits.  Greedy left-to-right: a segment is
        closed just before the lane whose inclusion would blow the
        budget (the running max length is simply the current lane's,
        thanks to the ascending sort).  Single lanes over budget are
        kept as singleton segments and counted as
        ``engine.budget.oversized_singletons``.
        """
        if not lengths:
            raise ValueError("cannot split an empty chunk")
        ends: list[int] = []
        start = 0
        for i, length in enumerate(lengths):
            width = max(int(length), 1)
            if i > start and not self.fits(i - start + 1, width):
                ends.append(i)
                start = i
            if i == start and not self.fits(1, width):
                instr = obs_current()
                instr.count("engine.budget.oversized_singletons", 1)
                warnings.warn(
                    f"sequence of length {length} exceeds the memory "
                    f"budget ({self.max_group_bytes} bytes) even as a "
                    "single-lane group; keeping it whole — raise the "
                    "budget or trim the database",
                    UserWarning,
                    stacklevel=4,
                )
                ends.append(i + 1)
                start = i + 1
        if start < len(lengths):
            ends.append(len(lengths))
        return ends
