"""Batched inter-sequence scoring engine.

The functional analogue of CUDASW++'s inter-task kernel: instead of one
SIMT lane per database sequence, one *NumPy lane* per sequence.  A
length-sorted database is packed into ``(group_size, max_len)`` code
matrices (:mod:`~repro.engine.pack`), and a single vectorized step per
query row advances the H/E/F recurrences for every lane of a group at
once (:mod:`~repro.engine.lanes`).  Groups can optionally fan out across
worker processes (:mod:`~repro.engine.executor`).

:class:`BatchedEngine` is the turnkey front end used by
:meth:`repro.app.cudasw.CudaSW.search` (the default functional backend)
and by the throughput benchmark; the pieces compose individually for
anything custom.  Scores are bit-identical to
:func:`~repro.sw.scalar.sw_score_scalar` on every pair.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.sequence.sequence import Sequence

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.engine.budget import (
    MemoryBudget,
    estimate_group_bytes,
    estimate_strip_group_bytes,
)
from repro.engine.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    atomic_write_text,
    search_fingerprint,
)
from repro.engine.dbstore import (
    DatabaseFormatError,
    DatabaseStore,
    StoreGroupRef,
    build_store,
    build_store_from_fasta,
    open_database,
)
from repro.engine.executor import run_groups
from repro.engine.faults import (
    DEFAULT_POLICY,
    FaultPolicy,
    InjectionPlan,
    SearchDeadlineExceeded,
)
from repro.engine.lanes import padded_lane_profile, score_packed_group
from repro.engine.pack import (
    DEFAULT_STRIP_WIDTH,
    TAIL_EFFICIENCY_FLOOR,
    PackedGroup,
    _record_pack_counters,
    pack_database,
    pack_database_hetero,
    pack_group,
)
from repro.engine.striped import (
    LANE_ENGINES,
    count_striped_work,
    score_packed_group_striped,
)
from repro.engine.strips import score_packed_group_strips
from repro.obs import AnyInstrumentation, current as obs_current
from repro.sequence.database import Database
from repro.sequence.profile import QueryProfile
from repro.sequence.striped_profile import StripedProfile
from repro.sw.utils import as_codes

__all__ = [
    "BatchedEngine",
    "CheckpointError",
    "CheckpointJournal",
    "DatabaseFormatError",
    "DatabaseStore",
    "EngineReport",
    "FaultPolicy",
    "InjectionPlan",
    "MemoryBudget",
    "PackedGroup",
    "SearchDeadlineExceeded",
    "StoreGroupRef",
    "StripedProfile",
    "atomic_write_text",
    "build_store",
    "build_store_from_fasta",
    "count_striped_work",
    "estimate_group_bytes",
    "open_database",
    "pack_database",
    "pack_database_hetero",
    "pack_group",
    "padded_lane_profile",
    "run_groups",
    "score_packed_group",
    "score_packed_group_striped",
    "score_packed_group_strips",
    "search_fingerprint",
    "DEFAULT_DB_FANOUT_MIN_CELLS",
    "DEFAULT_FANOUT_MIN_CELLS",
    "DEFAULT_GROUP_SIZE",
    "DEFAULT_POLICY",
    "DEFAULT_STRIP_WIDTH",
    "LANE_ENGINES",
]

#: Default lanes per group.  Large enough that vectorized work dwarfs the
#: per-row interpreter overhead, small enough that a length-sorted
#: group's padded rectangle stays tight on log-normal (Swiss-Prot-shaped)
#: length distributions, whose heavy tail dominates a too-wide last
#: group — and several groups exist to fan out across workers.
DEFAULT_GROUP_SIZE = 128

#: Smallest search (query length x padded database cells) worth fanning
#: out to worker processes.  Below this, pool spin-up plus per-chunk
#: group pickling costs more than the sweep itself — BENCH_engine.json
#: showed ``workers=2`` *losing* to serial on the 1,000-sequence
#: benchmark (1.28s vs 1.18s), whose ~90M padded cells sit well under
#: this line.  Searches smaller than the threshold are demoted to the
#: serial path (counted as ``engine.executor.fanout_demotions``); an
#: explicit non-default fault policy suppresses the demotion, since
#: fault-injection and timeout semantics need the pool.
DEFAULT_FANOUT_MIN_CELLS = 256 * 1024 * 1024

#: Fan-out floor for *store-backed* searches.  With a pre-packed
#: ``.rdb`` the pool's dominant per-chunk cost — pickling whole lane
#: matrices to every worker — is gone (chunks ship
#: :class:`~repro.engine.dbstore.StoreGroupRef` index vectors and each
#: worker packs from its own memmap), so fanning out pays for itself on
#: much smaller searches than the FASTA path's
#: :data:`DEFAULT_FANOUT_MIN_CELLS`.  Applied only when the caller left
#: ``fanout_min_cells`` at its default.
DEFAULT_DB_FANOUT_MIN_CELLS = 32 * 1024 * 1024


@dataclass(frozen=True)
class EngineReport:
    """Packing/execution accounting of one batched search.

    ``group_efficiencies`` is the per-group sweep efficiency — the
    functional analogue of the paper's Figure 2 load-balance efficiency:
    useful residues over the cells the group's assigned engine sweeps
    (the padded ``size x max_len`` rectangle for batched groups, the
    bounded strip total for strip groups; identical for single-engine
    searches).  ``padded_cells`` aggregates the same quantity.
    """

    group_size: int
    workers: int
    group_sizes: tuple[int, ...]
    group_max_lengths: tuple[int, ...]
    group_efficiencies: tuple[float, ...]
    residues: int
    padded_cells: int
    lane_engine: str = "gotoh"
    #: Resolved per-group engine assignment (one entry per group).
    #: Empty for homogeneous searches from older call sites.
    lane_engines: tuple[str, ...] = ()
    #: The length threshold a heterogeneous search dispatched on
    #: (``None`` for single-engine searches).
    split_threshold: int | None = None

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    @property
    def padding_efficiency(self) -> float:
        """Aggregate useful-work fraction over all groups.

        An empty database packs zero groups and wastes zero work, so its
        efficiency is 1.0 by convention (not a ZeroDivisionError).
        """
        if self.padded_cells == 0:
            return 1.0
        return self.residues / self.padded_cells


class BatchedEngine:
    """Score whole database groups per NumPy sweep.

    Parameters
    ----------
    matrix, gaps:
        The scoring model, shared by every search through this engine.
    group_size:
        Lanes per packed group (the inter-task kernel's ``s``).
    workers:
        Worker processes to fan groups out across; 1 (default) runs
        serially and never touches multiprocessing.
    fault_policy:
        :class:`~repro.engine.faults.FaultPolicy` governing per-task
        timeout, retries with backoff, the whole-search deadline and
        fault injection (default: :data:`~repro.engine.faults.
        DEFAULT_POLICY` — no timeout, no deadline, pool failures
        recovered serially).
    memory_budget:
        Optional :class:`~repro.engine.budget.MemoryBudget`; oversized
        groups are split at packing time so a single sweep can never
        allocate past the budget (OOM guard, scores unchanged).
    lane_engine:
        Per-group score kernel: ``"gotoh"`` (default, the row-parallel
        sweep of :mod:`~repro.engine.lanes`), ``"striped"`` (the
        Farrar engine of :mod:`~repro.engine.striped`), ``"strips"``
        (the long-tail strip sweep of :mod:`~repro.engine.strips`) or
        ``"hetero"`` — the paper's length-threshold split: sequences at
        or under the split threshold pack into striped bulk groups,
        longer ones into strip groups, mixed in one search.  Scores are
        bit-identical; only throughput differs.
    split_threshold:
        Heterogeneous dispatch threshold — ``"auto"`` (default for
        ``lane_engine="hetero"``; tuned per database by the
        :func:`repro.app.threshold.tune_split_threshold` cost model
        from the packed-group geometry) or a length ``>= 0``.  Only
        valid with ``lane_engine="hetero"``.
    strip_width:
        Strip width for tail groups under heterogeneous dispatch or
        ``lane_engine="strips"`` (``None`` =
        :data:`~repro.engine.pack.DEFAULT_STRIP_WIDTH`).
    strip_cell_cost, striped_column_overhead:
        Cost-model knobs for the ``"auto"`` split threshold: the
        relative cost of one strip-engine cell versus a striped bulk
        cell, and the fixed per-column overhead charged to striped
        groups (``None`` = the measured defaults
        :data:`~repro.app.threshold.STRIP_CELL_COST` /
        :data:`~repro.app.threshold.STRIPED_COLUMN_OVERHEAD`).  They
        shift where the length split lands on a given machine; scores
        are unaffected.
    fanout_min_cells:
        Smallest search (query length x padded cells) worth a worker
        pool; smaller searches run serially even with ``workers > 1``
        (``None`` uses :data:`DEFAULT_FANOUT_MIN_CELLS`, ``0`` disables
        the demotion).  Ignored when a non-default ``fault_policy`` is
        set — injected faults, timeouts and deadlines keep pool
        semantics regardless of size.
    """

    def __init__(
        self,
        matrix: SubstitutionMatrix,
        gaps: GapPenalty,
        *,
        group_size: int = DEFAULT_GROUP_SIZE,
        workers: int = 1,
        fault_policy: FaultPolicy | None = None,
        memory_budget: MemoryBudget | None = None,
        lane_engine: str = "gotoh",
        fanout_min_cells: int | None = None,
        split_threshold: int | str | None = None,
        strip_width: int | None = None,
        strip_cell_cost: float | None = None,
        striped_column_overhead: float | None = None,
    ) -> None:
        if group_size <= 0:
            raise ValueError(f"group size must be positive, got {group_size}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if lane_engine not in (*LANE_ENGINES, "hetero"):
            raise ValueError(
                f"lane_engine must be one of "
                f"{(*LANE_ENGINES, 'hetero')}, got {lane_engine!r}"
            )
        if fanout_min_cells is not None and fanout_min_cells < 0:
            raise ValueError(
                f"fanout_min_cells must be >= 0, got {fanout_min_cells}"
            )
        if split_threshold is not None and lane_engine != "hetero":
            raise ValueError(
                "split_threshold is only valid with lane_engine='hetero'"
            )
        if lane_engine == "hetero" and split_threshold is None:
            split_threshold = "auto"
        if isinstance(split_threshold, str) and split_threshold != "auto":
            raise ValueError(
                f"split_threshold must be 'auto' or an integer >= 0, "
                f"got {split_threshold!r}"
            )
        if isinstance(split_threshold, int) and split_threshold < 0:
            raise ValueError(
                f"split_threshold must be >= 0, got {split_threshold}"
            )
        if strip_width is not None and strip_width <= 0:
            raise ValueError(
                f"strip_width must be positive, got {strip_width}"
            )
        if strip_cell_cost is not None and strip_cell_cost <= 0:
            raise ValueError(
                f"strip_cell_cost must be positive, got {strip_cell_cost}"
            )
        if striped_column_overhead is not None and striped_column_overhead < 0:
            raise ValueError(
                f"striped_column_overhead must be >= 0, "
                f"got {striped_column_overhead}"
            )
        self.matrix = matrix
        self.gaps = gaps
        self.group_size = group_size
        self.workers = workers
        self.fault_policy = fault_policy or DEFAULT_POLICY
        self.memory_budget = memory_budget
        self.lane_engine = lane_engine
        self.split_threshold = split_threshold
        self.strip_width = strip_width
        self.strip_cell_cost = strip_cell_cost
        self.striped_column_overhead = striped_column_overhead
        self.fanout_min_cells = (
            DEFAULT_FANOUT_MIN_CELLS
            if fanout_min_cells is None
            else fanout_min_cells
        )
        # Store-backed searches swap in the (lower) DB fan-out floor,
        # but only when the caller didn't choose a floor explicitly.
        self._fanout_default = fanout_min_cells is None

    def search(
        self,
        query: Sequence | np.ndarray | str,
        db: Database | DatabaseStore,
        *,
        checkpoint: str | os.PathLike[str] | None = None,
        resume: bool = False,
    ) -> tuple[np.ndarray, EngineReport]:
        """Score the query against every database sequence.

        ``query`` may be a :class:`~repro.sequence.sequence.Sequence`, a
        code array or a string.  Returns ``int64`` scores in the
        database's original order plus the packing report.

        ``db`` may be an opened
        :class:`~repro.engine.dbstore.DatabaseStore`: the search then
        reads residues through the store's memmap, reuses the group
        geometry persisted at ``repro db build`` time when it matches
        this engine's ``group_size`` (re-planning — with the
        ``engine.dbstore.geometry_replanned`` counter — when it
        doesn't, or for heterogeneous dispatch, whose split depends on
        the query-time threshold), ships group *references* to pool
        workers instead of pickled lane matrices, and folds the store's
        content fingerprint into the checkpoint
        :func:`~repro.engine.checkpoint.search_fingerprint` so a
        journal refuses to resume against a rebuilt store.  Scores are
        bit-identical to the same database searched from FASTA.

        ``checkpoint`` names a write-ahead journal file
        (:class:`~repro.engine.checkpoint.CheckpointJournal`): each
        completed group's scores are durably appended as the search
        runs, so a crash costs at most the group being written.  With
        ``resume=True`` an existing journal is replayed first —
        validated against a content fingerprint of the query, scoring
        parameters and database — and only unjournaled groups are
        recomputed; a stale or corrupt journal raises
        :class:`~repro.engine.checkpoint.CheckpointError` instead of
        being merged.  ``resume=False`` (default) truncates any
        existing journal and starts fresh.

        When the fault policy's deadline fires,
        :class:`~repro.engine.faults.SearchDeadlineExceeded` is raised
        with ``partial_scores``/``completed_mask`` attached: scores in
        database order for every group finished before the deadline
        (``-1`` and ``False`` elsewhere).  Groups completed before the
        deadline are already in the journal, so a deadline-killed
        checkpointed search is resumable too.
        """
        if resume and checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        store: DatabaseStore | None = None
        if isinstance(db, DatabaseStore):
            store = db
            db = store.database
        instr = obs_current()
        with instr.span("profile_build"):
            q_codes = as_codes(query, self.matrix)
            # Built once per search; the striped profile wraps the plain
            # one (as its exact-fallback tier) so either engine costs
            # one profile build.  Heterogeneous searches start from the
            # plain profile — the executor builds the striped flavor
            # lazily iff bulk groups actually exist.
            profile: QueryProfile | StripedProfile
            if self.lane_engine == "striped":
                profile = StripedProfile(q_codes, self.matrix)
            else:
                profile = QueryProfile(q_codes, self.matrix)
        threshold: int | None = None
        with instr.span("pack"):
            if self.lane_engine == "hetero":
                threshold = self._resolve_threshold(db)
                if store is not None:
                    # The split depends on the query-time threshold, so
                    # stored single-engine geometry cannot be reused —
                    # but the re-plan reads only the index lengths
                    # (already in memory), never the residue memmap.
                    instr.count("engine.dbstore.geometry_replanned", 1)
                groups = pack_database_hetero(
                    db,
                    self.group_size,
                    threshold,
                    budget=self.memory_budget,
                    strip_width=self.strip_width,
                )
                if instr.enabled:
                    self._count_dispatch(instr, groups, threshold)
            elif store is not None and store.group_size == self.group_size:
                # Reuse the geometry planned once at build time: the
                # stored ranges are exactly what plan_chunks would
                # produce (deep verification proves it), with the
                # search-time memory budget applied on top.
                plan = store.plan_for(
                    "column" if self.lane_engine == "striped" else "row",
                    budget=self.memory_budget,
                )
                groups = [
                    pack_group(db, store.sort_order[start:end])
                    for start, end in plan.ranges
                ]
                instr.count("engine.dbstore.geometry_reused", 1)
                if instr.enabled:
                    _record_pack_counters(instr, len(db), groups, plan)
            else:
                if store is not None:
                    # group_size differs from the store's build-time
                    # geometry: plan from the index lengths instead.
                    instr.count("engine.dbstore.geometry_replanned", 1)
                # The striped column sweep opts out of the gap split:
                # its cost scales with column iterations, not padded
                # cells (see pack_database).
                groups = pack_database(
                    db,
                    self.group_size,
                    budget=self.memory_budget,
                    tail_floor=(
                        0.0 if self.lane_engine == "striped"
                        else TAIL_EFFICIENCY_FLOOR
                    ),
                )
        workers = self.workers
        fanout_floor = self.fanout_min_cells
        if store is not None and self._fanout_default:
            fanout_floor = DEFAULT_DB_FANOUT_MIN_CELLS
        if (
            workers > 1
            and self.fault_policy is DEFAULT_POLICY
            and fanout_floor
            and profile.length * sum(g.sweep_cells for g in groups)
            < fanout_floor
        ):
            # Too small to amortize pool spin-up + per-chunk pickling:
            # run serially (see DEFAULT_FANOUT_MIN_CELLS).  Scores are
            # path-independent, so only wall time changes.
            instr.count("engine.executor.fanout_demotions", 1)
            workers = 1
        journal: CheckpointJournal | None = None
        preloaded: dict[int, np.ndarray] = {}
        on_scored: Callable[[int, np.ndarray], None] | None = None
        if checkpoint is not None:
            fingerprint = search_fingerprint(
                q_codes, self.matrix, self.gaps, self.group_size, db,
                budget_bytes=(
                    0
                    if self.memory_budget is None
                    else self.memory_budget.max_group_bytes
                ),
                engines=tuple(
                    self._engine_token(g) for g in groups
                ),
                store_fingerprint=(
                    store.fingerprint if store is not None else ""
                ),
            )
            with instr.span("checkpoint_replay"):
                if resume:
                    journal, preloaded = CheckpointJournal.resume(
                        checkpoint, fingerprint, groups
                    )
                else:
                    journal = CheckpointJournal.create(
                        checkpoint, fingerprint, len(groups)
                    )

            live_journal = journal

            def _journal_scored(gi: int, lane_scores: np.ndarray) -> None:
                live_journal.append(gi, groups[gi], lane_scores)
                instr.count("engine.checkpoint.groups_recomputed", 1)

            on_scored = _journal_scored

        with instr.span("fan_out"):
            try:
                per_group = run_groups(
                    profile,
                    groups,
                    self.gaps,
                    workers=workers,
                    policy=self.fault_policy,
                    preloaded=preloaded or None,
                    on_group_scored=on_scored,
                    # Heterogeneous groups carry their own assignment;
                    # the default only covers unassigned groups.
                    lane_engine=(
                        "gotoh"
                        if self.lane_engine == "hetero"
                        else self.lane_engine
                    ),
                    store=store,
                )
            except SearchDeadlineExceeded as exc:
                partial = np.full(len(db), -1, dtype=np.int64)
                mask = np.zeros(len(db), dtype=bool)
                for gi, lane_scores in exc.partial.items():
                    partial[groups[gi].indices] = lane_scores
                    mask[groups[gi].indices] = True
                exc.partial_scores = partial
                exc.completed_mask = mask
                raise
            finally:
                if journal is not None:
                    journal.close()
        if getattr(instr, "memory", False):
            # Cross-check the tracemalloc peak observed during the
            # sweep phases against what the MemoryBudget estimator
            # predicted for the widest group: an underestimate here
            # means the OOM guard's split points are too optimistic.
            # Strip groups sweep a (total_strips, W) working set, not
            # the packed rectangle — predict from the cells each
            # engine actually allocates.
            predicted = max(
                (
                    estimate_strip_group_bytes(g.sweep_cells)
                    if g.lane_engine == "strips"
                    else estimate_group_bytes(g.size, g.max_length)
                    for g in groups
                ),
                default=0,
            )
            observed = max(
                instr.counters.get("engine.mem.sweep.peak_bytes"),
                instr.counters.get("engine.mem.sweep_parallel.peak_bytes"),
                instr.counters.get("engine.mem.serial_retry.peak_bytes"),
            )
            instr.count("engine.mem.budget_checks", 1)
            instr.counters.record_max(
                "engine.mem.budget_predicted_bytes", predicted
            )
            if observed > predicted:
                instr.count("engine.mem.budget_underestimates", 1)
        with instr.span("score_scatter"):
            scores = np.zeros(len(db), dtype=np.int64)
            for group, lane_scores in zip(groups, per_group):
                scores[group.indices] = lane_scores
        report = EngineReport(
            group_size=self.group_size,
            workers=self.workers,
            group_sizes=tuple(g.size for g in groups),
            group_max_lengths=tuple(g.max_length for g in groups),
            group_efficiencies=tuple(g.sweep_efficiency for g in groups),
            residues=sum(g.residues for g in groups),
            padded_cells=sum(g.sweep_cells for g in groups),
            lane_engine=self.lane_engine,
            lane_engines=tuple(
                g.lane_engine or self.lane_engine for g in groups
            ),
            split_threshold=threshold,
        )
        return scores, report

    def _resolve_threshold(self, db: Database) -> int:
        """Resolve the heterogeneous split threshold for one database."""
        if self.split_threshold == "auto":
            # Imported at call time: repro.app.threshold builds CudaSW
            # apps for its sweep API, so a module-level import would be
            # circular.
            from repro.app.threshold import (
                STRIP_CELL_COST,
                STRIPED_COLUMN_OVERHEAD,
                tune_split_threshold,
            )

            return tune_split_threshold(
                db.lengths,
                group_size=self.group_size,
                strip_width=self.strip_width or DEFAULT_STRIP_WIDTH,
                strip_cell_cost=(
                    STRIP_CELL_COST
                    if self.strip_cell_cost is None
                    else self.strip_cell_cost
                ),
                column_overhead=(
                    STRIPED_COLUMN_OVERHEAD
                    if self.striped_column_overhead is None
                    else self.striped_column_overhead
                ),
            )
        assert isinstance(self.split_threshold, int)
        return self.split_threshold

    def _count_dispatch(
        self,
        instr: AnyInstrumentation,
        groups: list[PackedGroup],
        threshold: int,
    ) -> None:
        """Charge the ``engine.dispatch.*`` counters for one split."""
        tail = [g for g in groups if g.lane_engine == "strips"]
        bulk = [g for g in groups if g.lane_engine != "strips"]
        instr.count("engine.dispatch.bulk_groups", len(bulk))
        instr.count("engine.dispatch.tail_groups", len(tail))
        instr.count(
            "engine.dispatch.bulk_sequences", sum(g.size for g in bulk)
        )
        instr.count(
            "engine.dispatch.tail_sequences", sum(g.size for g in tail)
        )
        instr.counters.record_max(
            "engine.dispatch.split_threshold", threshold
        )
        if self.split_threshold == "auto":
            instr.count("engine.dispatch.auto_tuned", 1)

    def _engine_token(self, group: PackedGroup) -> str:
        """Fingerprint token for one group's resolved engine."""
        engine = group.lane_engine or self.lane_engine
        if engine == "strips":
            width = group.strip_width or DEFAULT_STRIP_WIDTH
            return f"strips:{width}"
        return engine
