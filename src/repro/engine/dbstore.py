"""Pre-packed on-disk database store (``.rdb``) with a trust-nothing open.

Every search used to re-read FASTA, re-sort, re-pack and re-encode the
database, and the pool executor re-shipped whole packed lane matrices
through pickle on every dispatch.  SWAPHI-style preprocessed database
partitions argue for building the packed, grouped, engine-ready
representation **once, offline, on disk**; this module is that artifact
plus the paranoid reader it requires.  A persistent file that outlives
the process is hostile input: it sees the same torn-write, corruption
and staleness failure modes the checkpoint journal already defends
against, so the store borrows the journal's idioms — CRC32-framed
sections, magic/version tokens, fsync-then-rename atomic builds — and
refuses every defect with a typed :class:`DatabaseFormatError`.

On-disk layout (all integers little-endian; see ``docs/db-format.md``)::

    [ 0:8]   MAGIC "RPRODB01"
    [ 8:72]  64-byte free-text comment (latin-1, space padded; the one
             region *not* covered by any checksum — flipping a byte
             here must never change a score)
    [72:76]  u32: header JSON length
    [76:..]  header JSON (ascii) + u32 CRC32 of the JSON bytes
    [..:EOF] binary sections, back to back, in header-table order:
             lengths / offsets / sort_order / id_offsets / ids /
             geometry / codes

The header JSON carries the format version, a sha256 **fingerprint** of
the database content, the alphabet, and a section table (relative
offset, byte length, CRC32, dtype, element count per section).  The
residue blob (``codes``) is last so :func:`open_database` can
``np.memmap`` it and validate everything else without touching it.

Validation is tiered:

* ``verify="fast"`` (the open default) checks the magic, the header
  frame and CRC, the version, the section table's bounds, and the CRC
  plus structural consistency of every *index* section (lengths,
  offsets, sort order, ids, geometry) — O(index), never O(residues);
* ``verify="deep"`` additionally CRC-walks the residue blob,
  recomputes the content fingerprint, and re-derives the group
  geometry from the index, refusing on any disagreement.

``fallback="fasta"`` degrades gracefully: instead of dying on a
refused store, :func:`open_database` warns, charges the
``engine.dbstore.fallbacks`` counter and returns an in-memory
:class:`~repro.sequence.database.Database` streamed from the original
FASTA — the pre-store pack path, exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import time
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.alphabet import DNA, PROTEIN, Alphabet
from repro.engine.budget import MemoryBudget
from repro.engine.pack import (
    TAIL_EFFICIENCY_FLOOR,
    ChunkPlan,
    PackedGroup,
    apply_budget,
    pack_group,
    plan_chunks,
)
from repro.obs import current as obs_current
from repro.sequence.database import Database
from repro.sequence.fasta import iter_fasta_file

__all__ = [
    "COMMENT_BYTES",
    "FORMAT_VERSION",
    "MAGIC",
    "DatabaseFormatError",
    "DatabaseStore",
    "StoreGroupRef",
    "StoreInfo",
    "build_store",
    "build_store_from_fasta",
    "database_fingerprint",
    "open_database",
]

#: Store file magic: identifies the format in one token (the trailing
#: ``01`` is cosmetic; the authoritative version lives in the header).
MAGIC = b"RPRODB01"

#: Header JSON format version.  Bump on any incompatible layout change;
#: the reader refuses version skew instead of guessing.
FORMAT_VERSION = 1

#: Bytes of free-form comment between the magic and the header frame.
#: Informational only and deliberately outside every checksum: it is the
#: single region where corruption is *harmless* (scores cannot change),
#: which the bit-flip fuzzer test asserts.
COMMENT_BYTES = 64

#: Header frame: u32 JSON length; the JSON is followed by a u32 CRC32.
_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")

#: Section names, in file order.  ``codes`` is last so every other
#: section can be validated without touching the residue blob.
_SECTIONS = (
    "lengths", "offsets", "sort_order", "id_offsets", "ids",
    "geometry", "codes",
)

#: Validation tiers accepted by :func:`open_database`.
_VERIFY_TIERS = ("fast", "deep")

#: Geometry plan flavors persisted per store: ``row`` is the gotoh
#: row-sweep plan (tail gap split at :data:`TAIL_EFFICIENCY_FLOOR`),
#: ``column`` the striped column-sweep plan (no gap split).
_PLAN_KINDS = {"row": TAIL_EFFICIENCY_FLOOR, "column": 0.0}

_ALPHABETS: dict[str, Alphabet] = {"protein": PROTEIN, "dna": DNA}

#: Bytes per chunk when CRC-walking the memmapped residue blob in deep
#: verification (bounds the resident working set on huge stores).
_DEEP_CHUNK = 1 << 24


class DatabaseFormatError(Exception):
    """An ``.rdb`` store cannot be trusted (or read) as built.

    Raised on every defect the tiered validation detects — bad magic,
    version skew, truncated or overlapping sections, CRC mismatches,
    index/geometry/fingerprint disagreement — and on plain I/O failure
    to read the file.  The refusal is deliberate: rebuilding from FASTA
    is always correct, searching a silently wrong database never is.
    """


# ----------------------------------------------------------------------
# Fingerprint
# ----------------------------------------------------------------------
def database_fingerprint(db: Database) -> str:
    """sha256 content identity of a materialized database.

    Covers the alphabet, the sequence count, every length, every
    residue code and every id — any edit that could change a score (or
    scatter scores to different ids) changes the digest.  Stored in the
    header at build time, recomputed by deep verification, and folded
    into :func:`~repro.engine.checkpoint.search_fingerprint` so a
    checkpoint journal refuses to resume against a rebuilt store.
    """
    db._require_residues()
    h = hashlib.sha256()
    h.update(MAGIC)
    h.update(struct.pack("<q", FORMAT_VERSION))
    h.update(db.alphabet.symbols.encode("utf-8", "replace"))
    h.update(struct.pack("<q", len(db)))
    h.update(np.ascontiguousarray(db.lengths, dtype="<i8").tobytes())
    h.update(_ids_blob(db)[0])
    for start in range(0, db.total_residues, _DEEP_CHUNK):
        h.update(db._codes[start : start + _DEEP_CHUNK])
    return h.hexdigest()


def _ids_blob(db: Database) -> tuple[bytes, np.ndarray]:
    """Concatenated UTF-8 id bytes plus their ``(n + 1,)`` offsets."""
    encoded = [
        db.id_of(i).encode("utf-8", "replace") for i in range(len(db))
    ]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    np.cumsum([len(e) for e in encoded], out=offsets[1:])
    return b"".join(encoded), offsets


# ----------------------------------------------------------------------
# Store handle
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreInfo:
    """Build/inspect summary of one ``.rdb`` store."""

    path: Path
    fingerprint: str
    file_bytes: int
    sequences: int
    residues: int
    group_size: int
    comment: str


@dataclass(frozen=True)
class StoreGroupRef:
    """A picklable *reference* to one packed group of a store.

    This is what the executor ships to pool workers instead of the
    packed lane matrices themselves: ~a hundred ``int64`` indices plus
    two small fields, independent of sequence length.  The worker
    rebuilds the identical :class:`~repro.engine.pack.PackedGroup` from
    its own memmapped store (:func:`~repro.engine.pack.pack_group` is
    deterministic, and the store fingerprint pins the content), which
    is what fixes the workers>1 pickle re-ship regression.
    """

    indices: np.ndarray
    lane_engine: str | None = None
    strip_width: int | None = None

    @classmethod
    def of(cls, group: PackedGroup) -> "StoreGroupRef":
        return cls(group.indices, group.lane_engine, group.strip_width)

    def materialize(self, store: "DatabaseStore") -> PackedGroup:
        return pack_group(
            store.database,
            self.indices,
            lane_engine=self.lane_engine,
            strip_width=self.strip_width,
        )


class DatabaseStore:
    """An opened (validated, memmapped) ``.rdb`` database store.

    ``database`` is a regular :class:`~repro.sequence.database.Database`
    whose residue codes are a read-only ``np.memmap`` view of the file,
    so every engine works on it unchanged; ``lengths``/ids/offsets are
    small in-memory arrays loaded (and CRC-checked) from the index
    sections, so lengths-only consumers — the hetero threshold tuner,
    ``repro db info`` — never fault the residue blob in.
    """

    def __init__(
        self,
        path: Path,
        fingerprint: str,
        database: Database,
        group_size: int,
        sort_order: np.ndarray,
        plans: dict[str, tuple[list[tuple[int, int]], int]],
        comment: str,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.database = database
        self.group_size = group_size
        self.sort_order = sort_order
        self._plans = plans
        self.comment = comment

    def __len__(self) -> int:
        return len(self.database)

    @property
    def lengths(self) -> np.ndarray:
        """Per-sequence lengths from the store *index* (O(index) reads:
        the residue blob is never touched)."""
        return self.database.lengths

    def plan_for(
        self, kind: str, *, budget: MemoryBudget | None = None
    ) -> ChunkPlan:
        """The stored group geometry for one engine flavor.

        ``kind`` is ``"row"`` (gotoh row sweep, tail gap split) or
        ``"column"`` (striped column sweep, no gap split).  ``budget``
        working-set splits apply on top of the stored ranges — the
        identical operation :func:`~repro.engine.pack.plan_chunks`
        performs, so the result is bit-equal to planning from scratch.
        """
        if kind not in self._plans:
            raise ValueError(
                f"plan kind must be one of {sorted(self._plans)}, "
                f"got {kind!r}"
            )
        ranges, tail_splits = self._plans[kind]
        budget_splits = budget_extra = 0
        if budget is not None:
            sorted_lengths = self.lengths[self.sort_order]
            ranges, budget_splits, budget_extra = apply_budget(
                ranges, sorted_lengths, budget
            )
        return ChunkPlan(list(ranges), tail_splits, budget_splits,
                         budget_extra)


# ----------------------------------------------------------------------
# Build
# ----------------------------------------------------------------------
def _write_section(fh: IO[bytes], payload: bytes | memoryview) -> None:
    """Write one section's raw bytes (separate function so tests and the
    CI kill-mid-build job can interpose delays or failures)."""
    fh.write(payload)


def _section_entry(
    name: str, offset: int, payload: bytes | memoryview,
    dtype: str, count: int,
) -> dict[str, Any]:
    return {
        "name": name,
        "offset": offset,
        "bytes": len(payload),
        "crc32": zlib.crc32(payload),
        "dtype": dtype,
        "count": count,
    }


def build_store(
    db: Database,
    path: str | os.PathLike[str],
    *,
    group_size: int = 128,
    comment: str = "",
) -> StoreInfo:
    """Build a ``.rdb`` store from a materialized database, atomically.

    The file is assembled in a temp file in the target directory,
    ``fsync``'d, then renamed over ``path`` (and the directory fsync'd),
    so a SIGKILL at any instant leaves either the old store or no store
    — never a readable partial ``.rdb``.  Group geometry for both sweep
    flavors is planned here, once, with :func:`plan_chunks`; searches
    reuse it instead of re-sorting and re-planning per query.
    """
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    db._require_residues()
    if len(db) == 0:
        raise ValueError("cannot build a store from an empty database")
    if db.alphabet.name not in _ALPHABETS:
        raise ValueError(
            f"unknown alphabet {db.alphabet.name!r}; storable alphabets: "
            f"{sorted(_ALPHABETS)}"
        )
    started = time.perf_counter()
    instr = obs_current()
    with instr.span("db_build"):
        order = np.argsort(db.lengths, kind="stable")
        sorted_lengths = db.lengths[order]
        plans = {}
        for kind, floor in _PLAN_KINDS.items():
            plan = plan_chunks(sorted_lengths, group_size, tail_floor=floor)
            plans[kind] = {
                "ranges": [[int(s), int(e)] for s, e in plan.ranges],
                "tail_splits": plan.tail_splits,
            }
        geometry = json.dumps(
            {"group_size": group_size, "plans": plans},
            separators=(",", ":"),
        ).encode("ascii")
        ids_bytes, id_offsets = _ids_blob(db)
        fingerprint = database_fingerprint(db)

        payloads: list[tuple[str, bytes | memoryview, str, int]] = [
            ("lengths", _le64(db.lengths), "<i8", len(db)),
            ("offsets", _le64(db._offsets), "<i8", len(db) + 1),
            ("sort_order", _le64(order), "<i8", len(db)),
            ("id_offsets", _le64(id_offsets), "<i8", len(db) + 1),
            ("ids", ids_bytes, "bytes", len(ids_bytes)),
            ("geometry", geometry, "json", len(geometry)),
            ("codes", memoryview(db._codes), "u1", db.total_residues),
        ]
        sections = []
        rel = 0
        for name, payload, dtype, count in payloads:
            sections.append(_section_entry(name, rel, payload, dtype, count))
            rel += len(payload)
        header = json.dumps(
            {
                "version": FORMAT_VERSION,
                "fingerprint": fingerprint,
                "name": db.name,
                "alphabet": db.alphabet.name,
                "sequences": len(db),
                "residues": db.total_residues,
                "group_size": group_size,
                "sections": sections,
            },
            separators=(",", ":"),
        ).encode("ascii")
        comment_field = comment.encode("latin-1", "replace")[:COMMENT_BYTES]
        comment_field = comment_field.ljust(COMMENT_BYTES, b" ")

        target = Path(path)
        fd, tmp = tempfile.mkstemp(
            dir=str(target.parent) or ".",
            prefix=target.name + ".", suffix=".tmp",
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(MAGIC)
                fh.write(comment_field)
                fh.write(_LEN.pack(len(header)))
                fh.write(header)
                fh.write(_CRC.pack(zlib.crc32(header)))
                for _name, payload, _dtype, _count in payloads:
                    _write_section(fh, payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
            _fsync_dir(target.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            # Best-effort cleanup of the temp file while re-raising the
            # real error; the temp may already be renamed or gone.
            except OSError:  # repro-lint: disable=RPL105
                pass
            raise
    instr.count("engine.dbstore.builds", 1)
    if instr.enabled:
        instr.observe(
            "engine.dbstore.build_seconds", time.perf_counter() - started
        )
    file_bytes = target.stat().st_size
    return StoreInfo(
        path=target, fingerprint=fingerprint, file_bytes=file_bytes,
        sequences=len(db), residues=db.total_residues,
        group_size=group_size, comment=comment,
    )


def build_store_from_fasta(
    fasta: str | os.PathLike[str],
    path: str | os.PathLike[str],
    *,
    group_size: int = 128,
    comment: str = "",
    name: str | None = None,
) -> StoreInfo:
    """``repro db build``: stream a FASTA file into a ``.rdb`` store.

    Records stream through :func:`~repro.sequence.fasta.iter_fasta_file`
    (gzip sniffed by magic bytes, latin-1 header hardening) and
    accumulate via :meth:`Database.from_stream`, so the decoded text is
    never held whole in memory — the peak working set is the packed
    code arrays, not the file.
    """
    db = Database.from_stream(
        iter_fasta_file(fasta),
        name=name or Path(os.fspath(fasta)).stem,
    )
    return build_store(db, path, group_size=group_size, comment=comment)


def _le64(arr: np.ndarray) -> bytes:
    return np.ascontiguousarray(arr, dtype="<i8").tobytes()


def _fsync_dir(directory: Path) -> None:
    """fsync the directory so the rename itself is durable."""
    try:
        fd = os.open(str(directory) or ".", os.O_RDONLY)
    # Directories are not openable for fsync on every platform; the
    # rename is still atomic, only its durability window widens.
    except OSError:  # repro-lint: disable=RPL105
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------------------
# Open / validate
# ----------------------------------------------------------------------
def open_database(
    path: str | os.PathLike[str],
    *,
    verify: str = "fast",
    fallback: str | None = None,
    fasta: str | os.PathLike[str] | None = None,
) -> DatabaseStore | Database:
    """Open a ``.rdb`` store, memory-mapping the residue blob.

    ``verify`` selects the validation tier: ``"fast"`` (default)
    checks the header and every index section — O(index); ``"deep"``
    additionally CRC-walks the residue blob, recomputes the content
    fingerprint and re-derives the stored geometry — O(database).
    Every defect raises :class:`DatabaseFormatError`.

    ``fallback="fasta"`` (with ``fasta=<path>``) degrades gracefully:
    a refused store logs a :class:`UserWarning`, charges the
    ``engine.dbstore.fallbacks`` counter, and the original FASTA is
    streamed into an in-memory :class:`Database` — the exact pre-store
    pack path — instead of the error propagating.
    """
    if verify not in _VERIFY_TIERS:
        raise ValueError(
            f"verify must be one of {_VERIFY_TIERS}, got {verify!r}"
        )
    if fallback not in (None, "fasta"):
        raise ValueError(
            f"fallback must be None or 'fasta', got {fallback!r}"
        )
    if fallback == "fasta" and fasta is None:
        raise ValueError("fallback='fasta' requires the fasta= path")
    instr = obs_current()
    started = time.perf_counter()
    try:
        with instr.span("db_open"):
            store = _open_validated(Path(path), deep=(verify == "deep"))
    except DatabaseFormatError as exc:
        instr.count("engine.dbstore.refusals", 1)
        if fallback == "fasta":
            assert fasta is not None
            instr.count("engine.dbstore.fallbacks", 1)
            warnings.warn(
                f"database store {os.fspath(path)} refused ({exc}); "
                f"falling back to the in-memory FASTA pack path via "
                f"{os.fspath(fasta)}",
                UserWarning,
                stacklevel=2,
            )
            return Database.from_stream(
                iter_fasta_file(fasta),
                name=Path(os.fspath(fasta)).stem,
            )
        raise
    instr.count("engine.dbstore.opens", 1)
    if verify == "deep":
        instr.count("engine.dbstore.verify_deep", 1)
    else:
        instr.count("engine.dbstore.verify_fast", 1)
    instr.count(
        "engine.dbstore.open_mmap_bytes", store.database.total_residues
    )
    if instr.enabled:
        instr.observe(
            "engine.dbstore.open_seconds", time.perf_counter() - started
        )
    return store


def _refuse(path: Path, why: str) -> DatabaseFormatError:
    return DatabaseFormatError(
        f"{path} is not a trustworthy database store: {why}; rebuild it "
        "with `repro db build` (or search the FASTA directly)"
    )


def _open_validated(path: Path, *, deep: bool) -> DatabaseStore:
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC) + COMMENT_BYTES + _LEN.size)
    except OSError as exc:
        raise _refuse(path, f"cannot read it ({exc})") from exc
    preamble = len(MAGIC) + COMMENT_BYTES + _LEN.size
    if len(head) < preamble or head[: len(MAGIC)] != MAGIC:
        raise _refuse(path, "bad magic (not an .rdb file, or truncated)")
    comment = head[len(MAGIC) : len(MAGIC) + COMMENT_BYTES].decode(
        "latin-1"
    ).rstrip()
    (header_len,) = _LEN.unpack_from(head, len(MAGIC) + COMMENT_BYTES)
    data_start = preamble + header_len + _CRC.size
    if data_start > size:
        raise _refuse(path, "truncated header frame")
    try:
        with open(path, "rb") as fh:
            fh.seek(preamble)
            header_bytes = fh.read(header_len)
            crc_bytes = fh.read(_CRC.size)
    except OSError as exc:
        raise _refuse(path, f"cannot read it ({exc})") from exc
    if len(header_bytes) != header_len or len(crc_bytes) != _CRC.size:
        raise _refuse(path, "truncated header frame")
    if zlib.crc32(header_bytes) != _CRC.unpack(crc_bytes)[0]:
        raise _refuse(path, "header fails its CRC check")
    try:
        header = json.loads(header_bytes.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _refuse(path, f"header is not valid JSON ({exc})") from exc
    if not isinstance(header, dict):
        raise _refuse(path, "header is not a JSON object")
    if header.get("version") != FORMAT_VERSION:
        raise _refuse(
            path,
            f"format version skew (file v{header.get('version')!r}, "
            f"reader v{FORMAT_VERSION})",
        )
    sections = _validate_section_table(path, header, size - data_start)
    raw = _load_index_sections(path, data_start, sections)
    store = _assemble(path, data_start, header, sections, raw, comment)
    if deep:
        _verify_deep(path, data_start, header, sections, store)
    return store


def _validate_section_table(
    path: Path, header: dict[str, Any], data_bytes: int
) -> dict[str, dict[str, Any]]:
    table = header.get("sections")
    if not isinstance(table, list):
        raise _refuse(path, "header has no section table")
    by_name: dict[str, dict[str, Any]] = {}
    cursor = 0
    for entry in table:
        if not isinstance(entry, dict):
            raise _refuse(path, "malformed section table entry")
        name = entry.get("name")
        offset, nbytes = entry.get("offset"), entry.get("bytes")
        if (
            name not in _SECTIONS
            or name in by_name
            or not isinstance(offset, int)
            or not isinstance(nbytes, int)
            or not isinstance(entry.get("crc32"), int)
            or not isinstance(entry.get("count"), int)
            or offset != cursor
            or nbytes < 0
        ):
            raise _refuse(path, f"malformed section table entry {name!r}")
        cursor = offset + nbytes
        by_name[str(name)] = entry
    if tuple(by_name) != _SECTIONS:
        raise _refuse(
            path,
            f"section table lists {tuple(by_name)}, expected {_SECTIONS}",
        )
    if cursor != data_bytes:
        raise _refuse(
            path,
            f"sections claim {cursor} data bytes but the file holds "
            f"{data_bytes} (truncated or trailing garbage)",
        )
    fingerprint = header.get("fingerprint")
    if not (
        isinstance(fingerprint, str)
        and len(fingerprint) == 64
        and all(c in "0123456789abcdef" for c in fingerprint)
    ):
        raise _refuse(path, "malformed content fingerprint")
    return by_name


def _load_index_sections(
    path: Path, data_start: int, sections: dict[str, dict[str, Any]]
) -> dict[str, bytes]:
    """Read and CRC-check every section except the residue blob."""
    raw: dict[str, bytes] = {}
    try:
        with open(path, "rb") as fh:
            for name in _SECTIONS[:-1]:
                entry = sections[name]
                fh.seek(data_start + entry["offset"])
                payload = fh.read(entry["bytes"])
                if len(payload) != entry["bytes"]:
                    raise _refuse(path, f"truncated section {name!r}")
                if zlib.crc32(payload) != entry["crc32"]:
                    raise _refuse(
                        path, f"section {name!r} fails its CRC check"
                    )
                raw[name] = payload
    except OSError as exc:
        raise _refuse(path, f"cannot read it ({exc})") from exc
    return raw


def _assemble(
    path: Path,
    data_start: int,
    header: dict[str, Any],
    sections: dict[str, dict[str, Any]],
    raw: dict[str, bytes],
    comment: str,
) -> DatabaseStore:
    n = header.get("sequences")
    residues = header.get("residues")
    group_size = header.get("group_size")
    if not (
        isinstance(n, int) and n > 0
        and isinstance(residues, int) and residues > 0
        and isinstance(group_size, int) and group_size > 0
    ):
        raise _refuse(path, "malformed sequence/residue/group counts")
    alphabet = _ALPHABETS.get(str(header.get("alphabet")))
    if alphabet is None:
        raise _refuse(
            path, f"unknown alphabet {header.get('alphabet')!r}"
        )
    lengths = _int64_section(path, raw, sections, "lengths", n)
    offsets = _int64_section(path, raw, sections, "offsets", n + 1)
    order = _int64_section(path, raw, sections, "sort_order", n)
    id_offsets = _int64_section(path, raw, sections, "id_offsets", n + 1)
    if sections["codes"]["count"] != residues or (
        sections["codes"]["bytes"] != residues
    ):
        raise _refuse(path, "residue blob size disagrees with the header")
    if (
        offsets[0] != 0
        or int(offsets[-1]) != residues
        or not np.array_equal(np.diff(offsets), lengths)
        or (lengths.size and int(lengths.min()) <= 0)
    ):
        raise _refuse(path, "offsets/lengths index is inconsistent")
    if not np.array_equal(np.sort(order), np.arange(n, dtype=np.int64)):
        raise _refuse(path, "sort order is not a permutation")
    sorted_lengths = lengths[order]
    if np.any(np.diff(sorted_lengths) < 0):
        raise _refuse(path, "sort order does not sort the lengths")
    ids = _decode_ids(path, raw["ids"], id_offsets, n)
    plans = _decode_geometry(path, raw["geometry"], group_size, n)
    try:
        codes = np.memmap(
            path, dtype=np.uint8, mode="r",
            offset=data_start + int(sections["codes"]["offset"]),
            shape=(residues,),
        )
        database = Database(
            lengths, codes, offsets, ids, alphabet,
            name=str(header.get("name", path.stem)),
        )
    except (OSError, ValueError) as exc:
        raise _refuse(
            path, f"cannot assemble the database view ({exc})"
        ) from exc
    order.setflags(write=False)
    return DatabaseStore(
        path=path,
        fingerprint=str(header["fingerprint"]),
        database=database,
        group_size=group_size,
        sort_order=order,
        plans=plans,
        comment=comment,
    )


def _int64_section(
    path: Path,
    raw: dict[str, bytes],
    sections: dict[str, dict[str, Any]],
    name: str,
    expected: int,
) -> np.ndarray:
    entry = sections[name]
    if entry["count"] != expected or entry["bytes"] != expected * 8:
        raise _refuse(
            path,
            f"section {name!r} holds {entry['count']} entries, "
            f"expected {expected}",
        )
    arr = np.frombuffer(raw[name], dtype="<i8").astype(np.int64)
    return arr


def _decode_ids(
    path: Path, blob: bytes, id_offsets: np.ndarray, n: int
) -> list[str]:
    if (
        id_offsets[0] != 0
        or int(id_offsets[-1]) != len(blob)
        or np.any(np.diff(id_offsets) < 0)
    ):
        raise _refuse(path, "id index is inconsistent")
    try:
        return [
            blob[int(id_offsets[i]) : int(id_offsets[i + 1])].decode("utf-8")
            for i in range(n)
        ]
    except UnicodeDecodeError as exc:
        raise _refuse(path, f"id blob is not valid UTF-8 ({exc})") from exc


def _decode_geometry(
    path: Path, blob: bytes, group_size: int, n: int
) -> dict[str, tuple[list[tuple[int, int]], int]]:
    try:
        geometry = json.loads(blob.decode("ascii"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise _refuse(path, f"geometry is not valid JSON ({exc})") from exc
    if (
        not isinstance(geometry, dict)
        or geometry.get("group_size") != group_size
        or not isinstance(geometry.get("plans"), dict)
        or set(geometry["plans"]) != set(_PLAN_KINDS)
    ):
        raise _refuse(path, "geometry disagrees with the header")
    plans: dict[str, tuple[list[tuple[int, int]], int]] = {}
    for kind, plan in geometry["plans"].items():
        ranges_raw = plan.get("ranges") if isinstance(plan, dict) else None
        tail_splits = plan.get("tail_splits") if isinstance(plan, dict) else None
        if not isinstance(ranges_raw, list) or not isinstance(
            tail_splits, int
        ):
            raise _refuse(path, f"malformed geometry plan {kind!r}")
        cursor = 0
        ranges: list[tuple[int, int]] = []
        for pair in ranges_raw:
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not all(isinstance(x, int) for x in pair)
                or pair[0] != cursor
                or pair[1] <= pair[0]
            ):
                raise _refuse(
                    path, f"geometry plan {kind!r} has invalid ranges"
                )
            ranges.append((pair[0], pair[1]))
            cursor = pair[1]
        if cursor != n:
            raise _refuse(
                path,
                f"geometry plan {kind!r} covers {cursor} of {n} sequences",
            )
        plans[kind] = (ranges, tail_splits)
    return plans


def _verify_deep(
    path: Path,
    data_start: int,
    header: dict[str, Any],
    sections: dict[str, dict[str, Any]],
    store: DatabaseStore,
) -> None:
    """The full-CRC walk: residue blob CRC, fingerprint recomputation,
    and geometry re-derivation, each refusing on disagreement."""
    instr = obs_current()
    with instr.span("db_verify"):
        codes = store.database._codes
        crc = 0
        for start in range(0, codes.size, _DEEP_CHUNK):
            crc = zlib.crc32(codes[start : start + _DEEP_CHUNK], crc)
        if crc != sections["codes"]["crc32"]:
            raise _refuse(path, "residue blob fails its CRC check")
        if database_fingerprint(store.database) != store.fingerprint:
            raise _refuse(
                path,
                "content fingerprint disagrees with the header "
                "(edited or spliced store)",
            )
        sorted_lengths = store.lengths[store.sort_order]
        expected_order = np.argsort(store.lengths, kind="stable")
        if not np.array_equal(store.sort_order, expected_order):
            raise _refuse(
                path, "sort order is not the stable length argsort"
            )
        for kind, floor in _PLAN_KINDS.items():
            expected = plan_chunks(
                sorted_lengths, store.group_size, tail_floor=floor
            )
            ranges, tail_splits = store._plans[kind]
            if (
                ranges != expected.ranges
                or tail_splits != expected.tail_splits
            ):
                raise _refuse(
                    path,
                    f"stored {kind!r} geometry disagrees with the index",
                )
