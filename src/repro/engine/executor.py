"""Fanning packed groups out across worker processes.

Groups are embarrassingly parallel — each lane matrix is scored
independently — so the only coordination is scattering per-group score
vectors back to database order.  The executor ships the query codes,
matrix and penalties once per worker (pool initializer) and then streams
groups; each task moves one ``uint8`` lane matrix out and one small
score vector back.

Process pools are not available everywhere (restricted sandboxes,
interpreters without ``fork``/``spawn`` support), and a NumPy sweep
already saturates one core per group, so parallelism is strictly
optional: ``workers <= 1`` never touches ``multiprocessing``, and any
failure to bring up or run the pool falls back to the serial path with
identical results.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.engine.lanes import count_sweep_work, score_packed_group
from repro.engine.pack import PackedGroup
from repro.obs import current as obs_current
from repro.sequence.profile import QueryProfile

__all__ = ["run_groups"]

#: Per-process state installed by the pool initializer, so the profile is
#: rebuilt once per worker instead of pickled once per group.
_WORKER_STATE: dict = {}


def _init_worker(
    query_codes: np.ndarray, matrix: SubstitutionMatrix, gaps: GapPenalty
) -> None:
    _WORKER_STATE["profile"] = QueryProfile(query_codes, matrix)
    _WORKER_STATE["gaps"] = gaps


def _score_group_task(group: PackedGroup) -> np.ndarray:
    return score_packed_group(
        _WORKER_STATE["profile"], group, _WORKER_STATE["gaps"]
    )


def run_groups(
    profile: QueryProfile,
    groups: list[PackedGroup],
    gaps: GapPenalty,
    *,
    workers: int = 1,
) -> list[np.ndarray]:
    """Score every group, serially or across ``workers`` processes.

    Returns one score vector per group, in group order.  Results are
    identical on every path; parallelism only changes wall time.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    instr = obs_current()
    instr.count("engine.executor.groups_dispatched", len(groups))
    if workers == 1 or len(groups) <= 1:
        instr.count("engine.executor.serial_groups", len(groups))
        return _run_serial(profile, groups, gaps, instr)
    try:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        with ProcessPoolExecutor(
            max_workers=min(workers, len(groups)),
            initializer=_init_worker,
            initargs=(profile.query_codes, profile.matrix, gaps),
        ) as pool:
            try:
                with instr.span("sweep_parallel"):
                    out = list(pool.map(_score_group_task, groups))
                # Worker-process registries are per-process copies whose
                # updates never reach the parent; the sweep work is a
                # deterministic function of geometry, so charge it here.
                instr.count(
                    "engine.executor.worker_round_trips", len(groups)
                )
                if instr.enabled:
                    for g in groups:
                        count_sweep_work(instr, profile.length, g)
                return out
            except BrokenProcessPool:
                pass  # worker died (e.g. fork denied mid-run): go serial
    except (ImportError, OSError, PermissionError, RuntimeError):
        pass  # no usable multiprocessing in this environment: go serial
    instr.count("engine.executor.pool_fallbacks", 1)
    instr.count("engine.executor.serial_groups", len(groups))
    return _run_serial(profile, groups, gaps, instr)


def _run_serial(
    profile: QueryProfile,
    groups: list[PackedGroup],
    gaps: GapPenalty,
    instr,
) -> list[np.ndarray]:
    out = []
    for g in groups:
        with instr.span("sweep"):
            out.append(score_packed_group(profile, g, gaps))
    return out
