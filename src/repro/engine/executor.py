"""Fanning packed groups out across worker processes, fault-tolerantly.

Groups are embarrassingly parallel — each lane matrix is scored
independently — so the only coordination is scattering per-group score
vectors back to database order.  The executor ships the query codes,
matrix and penalties once per worker (pool initializer) and then streams
*chunks* of groups as individually tracked futures; each task moves a
few ``uint8`` lane matrices out and small score vectors back.

Unlike the original ``pool.map`` dispatch, every task is managed by a
:class:`~repro.engine.faults.FaultPolicy`: tasks that run past the
policy timeout are abandoned and retried with exponential backoff +
seeded jitter, a dead worker (``BrokenProcessPool``) costs only the
tasks that had not finished — completed group scores are kept and the
remainder is recomputed serially — and a whole-search deadline raises
:class:`~repro.engine.faults.SearchDeadlineExceeded` carrying the
partial results instead of hanging forever.  Results that do arrive are
validated (shape and dtype) before being trusted.

When the parent is collecting observability data, each chunk runs under
a fresh worker-side :class:`~repro.obs.Instrumentation` session and
ships its snapshot (counters, histograms, spans) back with the scores
as a :class:`~repro.obs.WorkerTelemetry`; the parent merges snapshots
from *accepted* chunks only, so counter totals stay bit-identical to
the serial path while worker spans land in per-pid trace lanes.

Process pools are not available everywhere (restricted sandboxes,
interpreters without ``fork``/``spawn`` support), and a NumPy sweep
already saturates one core per group, so parallelism is strictly
optional: ``workers <= 1`` never touches ``multiprocessing``, and any
failure to bring up or run the pool falls back to the serial path with
identical results.
"""

from __future__ import annotations

import random
import time
from typing import TYPE_CHECKING, Callable, Sequence, cast

import numpy as np

if TYPE_CHECKING:
    from concurrent.futures import ProcessPoolExecutor

from repro.alphabet import GapPenalty, SubstitutionMatrix
from repro.engine.faults import (
    DEFAULT_POLICY,
    DeadlineClock,
    FaultPolicy,
    InjectionPlan,
    SearchDeadlineExceeded,
    auto_chunksize,
)
from repro.engine.dbstore import DatabaseStore, StoreGroupRef, open_database
from repro.engine.lanes import score_packed_group
from repro.engine.pack import PackedGroup
from repro.engine.striped import (
    LANE_ENGINES,
    score_packed_group_striped,
)
from repro.engine.strips import score_packed_group_strips
from repro.obs import (
    AnyInstrumentation,
    Instrumentation,
    WorkerTelemetry,
    activate as obs_activate,
    current as obs_current,
)
from repro.sequence.profile import QueryProfile
from repro.sequence.striped_profile import StripedProfile

__all__ = ["run_groups"]

#: Per-process state installed by the pool initializer, so the profile is
#: rebuilt once per worker instead of pickled once per group.
_WORKER_STATE: dict = {}


def _profile_kind(engine: str) -> str:
    """Profile flavor an engine sweeps with: the striped engine needs
    the two-tier :class:`StripedProfile`; the row and strip sweeps share
    one plain :class:`QueryProfile`."""
    return "striped" if engine == "striped" else "base"


def _profile_for(
    cache: dict[str, QueryProfile | StripedProfile],
    engine: str,
    query_codes: np.ndarray,
    matrix: SubstitutionMatrix,
) -> QueryProfile | StripedProfile:
    """Fetch (building lazily, at most once per flavor) the profile for
    ``engine``.  Lazy construction is what lets a mixed-engine search
    pay for exactly the profile flavors its groups actually use."""
    kind = _profile_kind(engine)
    if kind not in cache:
        if kind == "striped":
            cache[kind] = StripedProfile(query_codes, matrix)
        else:
            cache[kind] = QueryProfile(query_codes, matrix)
    return cache[kind]


def _seed_profile_cache(
    profile: QueryProfile | StripedProfile,
) -> dict[str, QueryProfile | StripedProfile]:
    """Start a profile cache from an already-built profile."""
    kind = "striped" if isinstance(profile, StripedProfile) else "base"
    return {kind: profile}


def _init_worker(
    query_codes: np.ndarray,
    matrix: SubstitutionMatrix,
    gaps: GapPenalty,
    inject: InjectionPlan | None,
    lane_engine: str = "gotoh",
    collect_mode: str = "off",
    store_path: str | None = None,
    store_fingerprint: str | None = None,
) -> None:
    _WORKER_STATE["query_codes"] = query_codes
    _WORKER_STATE["matrix"] = matrix
    _WORKER_STATE["profiles"] = {}
    _WORKER_STATE["lane_engine"] = lane_engine
    _WORKER_STATE["gaps"] = gaps
    _WORKER_STATE["inject"] = inject
    _WORKER_STATE["tasks_done"] = 0
    _WORKER_STATE["collect_mode"] = collect_mode
    _WORKER_STATE["store"] = None
    if store_path is not None:
        # Each worker opens (and memory-maps) the pre-packed store by
        # path, so chunk payloads can carry group *indices* instead of
        # pickled lane matrices.  A refused store or a fingerprint skew
        # (the file changed under the parent) raises here, breaking the
        # pool — the parent's serial recovery path then rescores from
        # its own copy, which is always correct.
        store = open_database(store_path, verify="fast")
        assert isinstance(store, DatabaseStore)
        if (
            store_fingerprint is not None
            and store.fingerprint != store_fingerprint
        ):
            raise RuntimeError(
                f"database store {store_path} changed while the search "
                f"was running (fingerprint {store.fingerprint[:12]}… != "
                f"expected {store_fingerprint[:12]}…)"
            )
        _WORKER_STATE["store"] = store
    # One epoch per worker process: successive per-chunk sessions anchor
    # their spans to it, so a worker's lane reads as one monotonic
    # timeline in the merged trace.
    _WORKER_STATE["epoch"] = time.perf_counter()


def _score_chunk_task(
    payload: list[tuple[int, PackedGroup | StoreGroupRef]],
) -> tuple[list[np.ndarray], WorkerTelemetry | None]:
    """Score one chunk of ``(group_index, group)`` pairs, worker-side.

    When the parent collects, the chunk runs under a *fresh* worker-side
    :class:`~repro.obs.Instrumentation` session whose snapshot ships
    back with the scores.  A fresh session per chunk attempt is what
    makes the parent-side merge exactly-once: retried or rejected
    chunks carry their own registries, which are simply discarded with
    the chunk, so accepted totals stay bit-identical to the serial
    path.
    """
    mode = _WORKER_STATE.get("collect_mode", "off")
    if mode == "off":
        return _score_chunk_groups(payload), None
    instr = Instrumentation(mode, epoch=_WORKER_STATE["epoch"])
    with obs_activate(instr):
        out = _score_chunk_groups(payload)
    return out, WorkerTelemetry.snapshot(instr)


def _score_chunk_groups(
    payload: list[tuple[int, PackedGroup | StoreGroupRef]],
) -> list[np.ndarray]:
    gaps = _WORKER_STATE["gaps"]
    default_engine = _WORKER_STATE.get("lane_engine", "gotoh")
    inject: InjectionPlan | None = _WORKER_STATE.get("inject")
    store: DatabaseStore | None = _WORKER_STATE.get("store")
    instr = obs_current()
    out = []
    for group_index, shipped in payload:
        if isinstance(shipped, StoreGroupRef):
            if store is None:
                raise RuntimeError(
                    "received a store group reference but this worker "
                    "has no database store open"
                )
            group = shipped.materialize(store)
        else:
            group = shipped
        engine = group.lane_engine or default_engine
        profile = _profile_for(
            _WORKER_STATE["profiles"],
            engine,
            _WORKER_STATE["query_codes"],
            _WORKER_STATE["matrix"],
        )
        garbage = False
        if inject is not None:
            garbage = inject.apply(group_index, _WORKER_STATE["tasks_done"])
        started = time.perf_counter()
        with instr.span("sweep"):
            if garbage:
                out.append(np.zeros(0, dtype=np.int64))
            elif engine == "striped":
                out.append(
                    score_packed_group_striped(
                        cast(StripedProfile, profile), group, gaps
                    )
                )
            elif engine == "strips":
                out.append(
                    score_packed_group_strips(
                        cast(QueryProfile, profile), group, gaps
                    )
                )
            else:
                out.append(
                    score_packed_group(
                        cast(QueryProfile, profile), group, gaps
                    )
                )
        if instr.enabled:
            instr.observe(
                "engine.sweep.group_seconds",
                time.perf_counter() - started,
            )
        _WORKER_STATE["tasks_done"] += 1
    return out


def run_groups(
    profile: QueryProfile | StripedProfile,
    groups: list[PackedGroup],
    gaps: GapPenalty,
    *,
    workers: int = 1,
    policy: FaultPolicy | None = None,
    preloaded: dict[int, np.ndarray] | None = None,
    on_group_scored: Callable[[int, np.ndarray], None] | None = None,
    lane_engine: str = "gotoh",
    store: DatabaseStore | None = None,
) -> list[np.ndarray]:
    """Score every group, serially or across ``workers`` processes.

    Returns one score vector per group, in group order.  Results are
    identical on every path; parallelism and the fault ``policy`` only
    change wall time and failure behavior.  The only exception raised
    for fault reasons is
    :class:`~repro.engine.faults.SearchDeadlineExceeded`, and only when
    ``policy.deadline`` is set.

    ``preloaded`` seeds already-known group scores (a replayed
    checkpoint journal): those groups are never dispatched or
    recomputed.  ``on_group_scored`` is invoked exactly once per *newly
    computed* group, as soon as its scores are accepted — the
    checkpoint journal's append hook; preloaded groups do not re-fire
    it.

    ``lane_engine`` is the *default* per-group score kernel:
    ``"gotoh"`` (the row-parallel sweep), ``"striped"`` (the Farrar
    engine) or ``"strips"`` (the long-tail strip sweep).  A group whose
    :attr:`~repro.engine.pack.PackedGroup.lane_engine` is set overrides
    the default — the engine is a per-group decision, which is how
    heterogeneous dispatch mixes bulk and tail kernels in one search.
    The profile flavor each kernel needs is built lazily from the
    passed profile's query codes and matrix.  Scores are bit-identical
    on every engine, so checkpoints and fault handling stay
    engine-agnostic.

    ``store`` (an open :class:`~repro.engine.dbstore.DatabaseStore`
    whose groups these are) switches the pool dispatch to *reference*
    payloads: each worker opens the memmapped store by path in its
    initializer and chunks ship
    :class:`~repro.engine.dbstore.StoreGroupRef` index vectors instead
    of pickled lane matrices — the fix for the workers>1 pickle
    re-ship regression.  Serial scoring ignores it (the parent's
    groups are already packed).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if lane_engine not in LANE_ENGINES:
        raise ValueError(
            f"lane_engine must be one of {LANE_ENGINES}, got {lane_engine!r}"
        )
    for g in groups:
        if g.lane_engine is not None and g.lane_engine not in LANE_ENGINES:
            raise ValueError(
                f"group lane_engine must be one of {LANE_ENGINES}, "
                f"got {g.lane_engine!r}"
            )
    policy = policy or DEFAULT_POLICY
    instr = obs_current()
    clock = DeadlineClock(policy.deadline)
    instr.count("engine.executor.groups_dispatched", len(groups))
    results: dict[int, np.ndarray] = dict(preloaded or {})
    pending = [i for i in range(len(groups)) if i not in results]
    if workers == 1 or len(pending) <= 1:
        instr.count("engine.executor.serial_groups", len(pending))
        _score_serial(
            profile, groups, gaps, instr, clock, results,
            span_name="sweep", indices=pending, sink=on_group_scored,
            lane_engine=lane_engine,
        )
        return [results[i] for i in range(len(groups))]
    return _run_pool(
        profile, groups, gaps, workers, policy, instr, clock,
        results, pending, on_group_scored, lane_engine, store,
    )


def _score_serial(
    profile: QueryProfile | StripedProfile,
    groups: list[PackedGroup],
    gaps: GapPenalty,
    instr: AnyInstrumentation,
    clock: DeadlineClock,
    results: dict[int, np.ndarray],
    span_name: str,
    indices: list[int] | None = None,
    sink: Callable[[int, np.ndarray], None] | None = None,
    lane_engine: str = "gotoh",
) -> None:
    """Score ``indices`` (default: all unscored) into ``results``,
    checking the deadline between groups."""
    todo = range(len(groups)) if indices is None else indices
    profiles = _seed_profile_cache(profile)
    for i in todo:
        if i in results:
            continue
        if clock.expired():
            _raise_deadline(instr, clock, results, len(groups))
        engine = groups[i].lane_engine or lane_engine
        group_profile = _profile_for(
            profiles, engine, profile.query_codes, profile.matrix
        )
        started = time.perf_counter()
        with instr.span(span_name):
            if engine == "striped":
                results[i] = score_packed_group_striped(
                    cast(StripedProfile, group_profile), groups[i], gaps
                )
            elif engine == "strips":
                results[i] = score_packed_group_strips(
                    cast(QueryProfile, group_profile), groups[i], gaps
                )
            else:
                results[i] = score_packed_group(
                    cast(QueryProfile, group_profile), groups[i], gaps
                )
        if instr.enabled:
            instr.observe(
                "engine.sweep.group_seconds", time.perf_counter() - started
            )
        if sink is not None:
            sink(i, results[i])


def _raise_deadline(
    instr: AnyInstrumentation,
    clock: DeadlineClock,
    results: dict[int, np.ndarray],
    n_groups: int,
) -> None:
    instr.count("engine.executor.deadline_exceeded", 1)
    raise SearchDeadlineExceeded(
        deadline=clock.deadline,
        elapsed=clock.elapsed,
        partial=dict(results),
        pending=tuple(i for i in range(n_groups) if i not in results),
    )


def _valid_chunk(
    result: object,
    group_indices: Sequence[int],
    groups: list[PackedGroup],
) -> bool:
    """Trust a worker's chunk result only if it is a
    ``(scores, telemetry)`` pair whose every vector has the expected
    shape and an integer dtype."""
    if not isinstance(result, tuple) or len(result) != 2:
        return False
    chunk_scores, telemetry = result
    if telemetry is not None and not isinstance(telemetry, WorkerTelemetry):
        return False
    if not isinstance(chunk_scores, list) or (
        len(chunk_scores) != len(group_indices)
    ):
        return False
    for gi, arr in zip(group_indices, chunk_scores):
        if not isinstance(arr, np.ndarray):
            return False
        if arr.shape != (groups[gi].size,) or arr.dtype.kind not in "iu":
            return False
    return True


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung or dead workers."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    # Best-effort teardown: the pool is already broken or abandoned and
    # every group it owed is re-scored serially, so a secondary failure
    # here has nothing left to corrupt.
    except Exception:  # repro-lint: disable=RPL105
        pass
    # shutdown(wait=False) leaves stuck workers running (and their
    # eventual join at interpreter exit hanging); terminate them.
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        # Best-effort: the process may already be dead/reaped.
        except Exception:  # repro-lint: disable=RPL105
            pass


def _run_pool(
    profile: QueryProfile | StripedProfile,
    groups: list[PackedGroup],
    gaps: GapPenalty,
    workers: int,
    policy: FaultPolicy,
    instr: AnyInstrumentation,
    clock: DeadlineClock,
    results: dict[int, np.ndarray],
    pending: list[int],
    sink: Callable[[int, np.ndarray], None] | None = None,
    lane_engine: str = "gotoh",
    store: DatabaseStore | None = None,
) -> list[np.ndarray]:
    n = len(groups)
    serial_group_indices: set[int] = set()
    pool: ProcessPoolExecutor | None = None
    dirty = False  # abandoned futures / broken pool: cannot shut down cleanly
    try:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        chunk = policy.chunksize or auto_chunksize(len(pending), workers)
        tasks = [
            tuple(pending[start : start + chunk])
            for start in range(0, len(pending), chunk)
        ]
        attempts = dict.fromkeys(range(len(tasks)), 0)
        rng = random.Random(policy.seed)
        live_pool = ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            initializer=_init_worker,
            initargs=(
                profile.query_codes, profile.matrix, gaps, policy.inject,
                lane_engine, instr.mode,
                str(store.path) if store is not None else None,
                store.fingerprint if store is not None else None,
            ),
        )
        pool = live_pool

        in_flight: dict = {}  # future -> (task_id, submitted_at)
        retry_queue: list[tuple[float, int]] = []  # (ready_at, task_id)
        pool_alive = True

        def submit(tid: int) -> None:
            attempts[tid] += 1
            payload: list[tuple[int, PackedGroup | StoreGroupRef]]
            if store is not None:
                payload = [
                    (gi, StoreGroupRef.of(groups[gi])) for gi in tasks[tid]
                ]
                instr.count(
                    "engine.dbstore.pool_group_refs", len(tasks[tid])
                )
            else:
                payload = [(gi, groups[gi]) for gi in tasks[tid]]
            in_flight[live_pool.submit(_score_chunk_task, payload)] = (
                tid,
                time.monotonic(),
            )

        def schedule_retry(tid: int) -> None:
            if attempts[tid] > policy.retries:
                instr.count("engine.executor.tasks_exhausted", 1)
                serial_group_indices.update(tasks[tid])
            else:
                delay = policy.retry_delay(attempts[tid] + 1, rng)
                if instr.enabled:
                    instr.observe(
                        "engine.executor.retry_delay_seconds", delay
                    )
                retry_queue.append((time.monotonic() + delay, tid))

        def pool_broke(extra_tids: list[int]) -> None:
            nonlocal pool_alive
            if pool_alive:
                instr.count("engine.executor.worker_crashes", 1)
            pool_alive = False
            for tid in extra_tids:
                serial_group_indices.update(tasks[tid])
            for tid, _sub in in_flight.values():
                serial_group_indices.update(tasks[tid])
            in_flight.clear()
            for _ready, tid in retry_queue:
                serial_group_indices.update(tasks[tid])
            retry_queue.clear()

        with instr.span("sweep_parallel"):
            instr.count("engine.executor.tasks_submitted", len(tasks))
            for tid in range(len(tasks)):
                submit(tid)
            while in_flight or retry_queue:
                now = time.monotonic()
                if clock.expired():
                    dirty = True
                    _raise_deadline(instr, clock, results, n)
                # Launch retries whose backoff has elapsed.
                due = [t for t in retry_queue if t[0] <= now]
                if due:
                    retry_queue[:] = [t for t in retry_queue if t[0] > now]
                    for _ready, tid in due:
                        instr.count("engine.executor.retries", 1)
                        submit(tid)
                if not in_flight:
                    # Only backoff waits remain: nap until the earliest.
                    naps = [r - now for r, _ in retry_queue]
                    rem = clock.remaining()
                    if rem is not None:
                        naps.append(rem)
                    nap = max(0.0, min(naps)) if naps else 0.0
                    if nap > 0:
                        time.sleep(min(nap, 0.05))
                    continue
                waits = []
                if policy.timeout is not None:
                    waits.append(
                        min(sub for _t, sub in in_flight.values())
                        + policy.timeout
                        - now
                    )
                if retry_queue:
                    waits.append(min(r for r, _ in retry_queue) - now)
                rem = clock.remaining()
                if rem is not None:
                    waits.append(rem)
                wait_timeout = (
                    max(0.0, min(waits)) + 0.005 if waits else None
                )
                done, _ = wait(
                    set(in_flight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    tid, _sub = in_flight.pop(fut)
                    try:
                        chunk_result = fut.result()
                    except BrokenProcessPool:
                        dirty = True
                        pool_broke([tid])
                        break
                    except Exception:
                        instr.count("engine.executor.task_errors", 1)
                        schedule_retry(tid)
                        continue
                    if not _valid_chunk(chunk_result, tasks[tid], groups):
                        instr.count("engine.executor.garbage_results", 1)
                        schedule_retry(tid)
                        continue
                    chunk_scores, telemetry = chunk_result
                    for gi, arr in zip(tasks[tid], chunk_scores):
                        results[gi] = arr.astype(np.int64, copy=False)
                        if sink is not None:
                            sink(gi, results[gi])
                    instr.count("engine.executor.worker_round_trips", 1)
                    instr.count(
                        "engine.executor.pool_completed_groups",
                        len(tasks[tid]),
                    )
                    # The chunk ran under its own worker-side session;
                    # fold the shipped snapshot in (counters and
                    # histograms into the shared registries, spans into
                    # the worker's pid lane).  Only accepted chunks
                    # merge, so totals stay bit-identical to serial.
                    if telemetry is not None and instr.enabled:
                        instr.merge_worker(telemetry)
                # Abandon tasks that outran the per-task timeout.  A
                # running task cannot be cancelled, so its worker stays
                # busy until it finishes on its own or the pool is torn
                # down — the retry (or eventual serial recompute)
                # produces the score either way.
                if pool_alive and policy.timeout is not None:
                    now = time.monotonic()
                    for fut in [
                        f
                        for f, (_t, sub) in in_flight.items()
                        if now - sub >= policy.timeout
                    ]:
                        tid, _sub = in_flight.pop(fut)
                        fut.cancel()
                        dirty = True
                        instr.count("engine.executor.timeouts", 1)
                        schedule_retry(tid)
    except SearchDeadlineExceeded:
        # TimeoutError subclasses OSError; never mistake the deadline
        # for an unusable-multiprocessing environment.
        raise
    except (ImportError, OSError, PermissionError, RuntimeError):
        # No usable multiprocessing in this environment: everything
        # not already scored goes serial.
        instr.count("engine.executor.pool_fallbacks", 1)
        serial_group_indices.update(
            i for i in range(n) if i not in results
        )
        dirty = True
    finally:
        if pool is not None:
            if dirty:
                _abandon_pool(pool)
            else:
                pool.shutdown(wait=True)

    missing = sorted(
        set(serial_group_indices) | (set(range(n)) - results.keys())
    )
    missing = [i for i in missing if i not in results]
    if missing:
        instr.count("engine.executor.serial_retry_groups", len(missing))
        _score_serial(
            profile, groups, gaps, instr, clock, results,
            span_name="serial_retry", indices=missing, sink=sink,
            lane_engine=lane_engine,
        )
    return [results[i] for i in range(n)]
