"""Group packing for the batched inter-sequence engine.

CUDASW++'s inter-task kernel assigns one database sequence per SIMT
*lane* and launches length-sorted groups so lanes finish together
(Section II-C).  The functional analogue packs a group of sequences into
a dense ``(group_size, max_length)`` code matrix — one row per lane,
short rows padded with a sentinel symbol — so a NumPy operation over the
matrix advances every lane at once.

Padding is the load-balance story of the paper's Figure 2 translated to
the functional engine: every padded cell is a lane-step of wasted work,
and :attr:`PackedGroup.padding_efficiency` (useful residues over the
padded rectangle) is exactly the ``sum(len) / (s * max_len)`` quantity
of :class:`~repro.sequence.database.SequenceGroup`.  Length sorting
before grouping is what keeps it near 1.0.

Two things the length sort alone cannot fix live here too:

* the **tail group** — the final ``group_size`` remainder merges
  whatever lengths are left, so a handful of outliers can drag one
  group far below every other's efficiency.  :func:`plan_chunks` splits
  that last chunk at its largest length gaps whenever efficiency would
  fall under :data:`TAIL_EFFICIENCY_FLOOR`;
* the **long tail itself** — past a length threshold no grouping packs
  well, which is why :func:`pack_database_hetero` routes those
  sequences to the strip-sweep engine (each :class:`PackedGroup`
  carries its ``lane_engine``, making the engine a per-group decision).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.engine.budget import MemoryBudget
from repro.obs import AnyInstrumentation, current as obs_current
from repro.sequence.database import Database

__all__ = [
    "DEFAULT_STRIP_WIDTH",
    "TAIL_EFFICIENCY_FLOOR",
    "ChunkPlan",
    "PackedGroup",
    "apply_budget",
    "pack_group",
    "pack_database",
    "pack_database_hetero",
    "plan_chunks",
]

#: Default strip width for groups swept by the strip engine (DP columns
#: per strip lane).  Lives here rather than in
#: :mod:`~repro.engine.strips` so packing and cost modelling can reason
#: about strip geometry without importing the kernel.
DEFAULT_STRIP_WIDTH = 512

#: Below this packing efficiency the tail chunk is split at its largest
#: length gaps instead of being packed as one degenerate rectangle.
TAIL_EFFICIENCY_FLOOR = 0.5


@dataclass(frozen=True)
class PackedGroup:
    """One length-sorted group of database sequences, packed lane-per-row.

    Attributes
    ----------
    indices:
        Positions of the member sequences in the *source* database's
        original order, so per-lane scores scatter straight back.
    lengths:
        True (unpadded) length of each lane.
    codes:
        ``(size, max_length)`` ``uint8`` matrix; row ``k`` holds lane
        ``k``'s residue codes, columns past ``lengths[k]`` hold
        :attr:`pad_code`.
    pad_code:
        The padding sentinel — one past the largest valid alphabet code,
        so a padded query profile can route it to an impossibly bad
        similarity score and padded cells can never win an alignment.
    lane_engine:
        Optional per-group engine assignment (one of
        :data:`~repro.engine.striped.LANE_ENGINES`); ``None`` defers to
        the executor's search-wide default.  This is what makes the
        engine a per-group decision for heterogeneous dispatch.
    strip_width:
        Strip width for groups assigned to the ``"strips"`` engine
        (``None`` = :data:`DEFAULT_STRIP_WIDTH`); ignored elsewhere.
    """

    indices: np.ndarray
    lengths: np.ndarray
    codes: np.ndarray
    pad_code: int
    lane_engine: str | None = None
    strip_width: int | None = None

    def __post_init__(self) -> None:
        if self.codes.ndim != 2:
            raise ValueError("packed codes must be a 2-D lane matrix")
        if self.indices.shape != self.lengths.shape or (
            self.indices.size != self.codes.shape[0]
        ):
            raise ValueError("indices, lengths and code rows must agree")
        if self.indices.size == 0:
            raise ValueError("a packed group cannot be empty")
        if self.codes.shape[1] != int(self.lengths.max()):
            raise ValueError("code matrix width must equal the max length")

    @property
    def size(self) -> int:
        """Number of lanes (sequences) in the group."""
        return int(self.indices.size)

    @property
    def max_length(self) -> int:
        return int(self.codes.shape[1])

    @property
    def residues(self) -> int:
        """Useful cells per query row: the true residue count."""
        return int(self.lengths.sum())

    @property
    def padded_cells(self) -> int:
        """Occupied lane-steps per query row: the full rectangle."""
        return self.size * self.max_length

    @property
    def padding_efficiency(self) -> float:
        """Useful work over occupied lane-steps — Figure 2's load-balance
        efficiency, for the NumPy lanes instead of SIMT threads."""
        return self.residues / self.padded_cells

    @property
    def sweep_cells(self) -> int:
        """Cells actually swept per query row by this group's engine.

        The batched engines sweep the full ``(size, max_length)``
        rectangle; the strip engine sweeps ``ceil(len / W) * W`` per
        sequence, bounding each sequence's padding at ``W - 1`` cells no
        matter how ragged the group is.
        """
        if self.lane_engine == "strips":
            w = self.strip_width or DEFAULT_STRIP_WIDTH
            counts = np.maximum(
                (self.lengths.astype(np.int64) + w - 1) // w, 1
            )
            return int(counts.sum()) * w
        return self.padded_cells

    @property
    def sweep_efficiency(self) -> float:
        """Useful work over swept cells under the *assigned* engine."""
        return self.residues / self.sweep_cells


def pack_group(
    db: Database,
    indices: np.ndarray,
    *,
    lane_engine: str | None = None,
    strip_width: int | None = None,
) -> PackedGroup:
    """Pack the database sequences at ``indices`` into one lane matrix.

    ``indices`` refer to ``db``'s own ordering and are recorded verbatim
    in the result, so callers can pack a sorted permutation of an
    unsorted database and still scatter scores back trivially.
    ``lane_engine``/``strip_width`` stamp a per-group engine assignment
    for heterogeneous dispatch.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or indices.size == 0:
        raise ValueError("need a non-empty 1-D index array")
    db._require_residues()
    lengths = db.lengths[indices]
    max_len = int(lengths.max())
    pad_code = db.alphabet.size
    codes = np.full((indices.size, max_len), pad_code, dtype=np.uint8)
    for lane, src in enumerate(indices):
        row = db.codes_of(int(src))
        codes[lane, : row.size] = row
    codes.setflags(write=False)
    return PackedGroup(
        indices, lengths, codes, pad_code, lane_engine, strip_width
    )


class ChunkPlan(NamedTuple):
    """Pure-geometry packing plan over a length-sorted database.

    ``ranges`` are ``(start, end)`` slices into the sorted order;
    the split counters record why extra groups exist so callers can
    charge the matching ``engine.pack.*`` / ``engine.budget.*``
    counters without re-deriving the decisions.
    """

    ranges: list[tuple[int, int]]
    tail_splits: int
    budget_splits: int
    budget_extra_groups: int


def _gap_split(
    lengths: np.ndarray, start: int, end: int, floor: float
) -> list[tuple[int, int]]:
    """Split ``[start, end)`` at its largest length gaps until every
    piece packs at ``floor`` efficiency or better (or is a single lane).
    ``lengths`` must be ascending over the range."""
    size = end - start
    if size < 2:
        return [(start, end)]
    seg = lengths[start:end]
    if float(seg.sum()) / (size * int(seg[-1])) >= floor:
        return [(start, end)]
    cut = int(np.argmax(np.diff(seg))) + 1
    if cut <= 0 or cut >= size:
        return [(start, end)]
    return _gap_split(lengths, start, start + cut, floor) + _gap_split(
        lengths, start + cut, end, floor
    )


def apply_budget(
    ranges: "list[tuple[int, int]]",
    sorted_lengths: np.ndarray,
    budget: MemoryBudget,
) -> tuple[list[tuple[int, int]], int, int]:
    """Split planned ranges so each fits the budget's working set.

    The budget half of :func:`plan_chunks`, factored out so a
    pre-planned geometry — the ranges a database store persisted at
    build time — can have a *search-time* budget applied on top and
    come out bit-identical to planning from scratch with that budget.
    Returns ``(ranges, budget_splits, budget_extra_groups)``.
    """
    budget_splits = budget_extra = 0
    split_ranges: list[tuple[int, int]] = []
    for start, end in ranges:
        ends = budget.split_points(
            [int(x) for x in sorted_lengths[start:end]]
        )
        if len(ends) > 1:
            budget_splits += 1
            budget_extra += len(ends) - 1
        prev = 0
        for cut in ends:
            split_ranges.append((start + prev, start + cut))
            prev = cut
    return split_ranges, budget_splits, budget_extra


def plan_chunks(
    sorted_lengths: np.ndarray,
    group_size: int,
    *,
    budget: MemoryBudget | None = None,
    tail_floor: float = TAIL_EFFICIENCY_FLOOR,
) -> ChunkPlan:
    """Plan packing ranges for an ascending-sorted length array.

    Applies, in order: fixed ``group_size`` chunking; the tail-group
    degeneracy fix (the last chunk — the ``group_size`` remainder that
    used to merge wildly different lengths into one low-efficiency
    rectangle — is split at its largest length gaps whenever its
    efficiency falls below ``tail_floor``); then the ``budget``'s
    working-set splitting within each chunk.  Geometry only — no
    database access — so the threshold cost model can evaluate candidate
    partitions without packing anything.
    """
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    sorted_lengths = np.asarray(sorted_lengths, dtype=np.int64)
    n = int(sorted_lengths.size)
    ranges = [
        (start, min(start + group_size, n))
        for start in range(0, n, group_size)
    ]
    tail_splits = 0
    if ranges and tail_floor > 0:
        last = ranges.pop()
        pieces = _gap_split(sorted_lengths, last[0], last[1], tail_floor)
        tail_splits = len(pieces) - 1
        ranges.extend(pieces)
    budget_splits = budget_extra = 0
    if budget is not None:
        ranges, budget_splits, budget_extra = apply_budget(
            ranges, sorted_lengths, budget
        )
    return ChunkPlan(ranges, tail_splits, budget_splits, budget_extra)


def _record_pack_counters(
    instr: AnyInstrumentation,
    n_sequences: int,
    groups: list[PackedGroup],
    plan: ChunkPlan,
) -> None:
    """Charge the packing counters for one planned-and-packed database.

    ``padded_cells`` counts cells the assigned engines will actually
    sweep (``sweep_cells``) — identical to the padded rectangle for
    batched groups, the bounded strip total for strip groups.
    """
    residues = sum(g.residues for g in groups)
    swept = sum(g.sweep_cells for g in groups)
    instr.count("engine.pack.groups", len(groups))
    instr.count("engine.pack.sequences", n_sequences)
    instr.count("engine.pack.residues", residues)
    instr.count("engine.pack.padded_cells", swept)
    instr.count("engine.pack.pad_waste_cells", swept - residues)
    if plan.tail_splits:
        instr.count("engine.pack.tail_splits", 1)
        instr.count("engine.pack.tail_extra_groups", plan.tail_splits)
    if plan.budget_splits:
        instr.count("engine.budget.groups_split", plan.budget_splits)
        instr.count("engine.budget.extra_groups", plan.budget_extra_groups)
    for g in groups:
        instr.observe("engine.pack.group_cells", float(g.sweep_cells))
        instr.observe("engine.pack.group_efficiency", g.sweep_efficiency)


def pack_database(
    db: Database,
    group_size: int,
    *,
    budget: MemoryBudget | None = None,
    tail_floor: float = TAIL_EFFICIENCY_FLOOR,
) -> list[PackedGroup]:
    """Sort ``db`` by length and pack it into groups of ``group_size``.

    Mirrors CUDASW++'s preprocessing pipeline
    (:meth:`Database.sorted_by_length` then
    :meth:`Database.partition_groups`): a stable ascending length sort
    keeps each group's lengths nearly uniform, so the padded rectangles
    stay tight.  The last group may be smaller.  Group ``indices`` refer
    to the *original* (unsorted) database order.

    ``budget`` (a :class:`~repro.engine.budget.MemoryBudget`) caps any
    single group's estimated sweep working set: a chunk whose padded
    rectangle would exceed it is split into narrower groups that each
    fit, instead of letting the sweep's allocation OOM-kill the
    process.  Splitting — by budget or by the tail-degeneracy floor —
    only changes fan-out geometry, never scores.

    ``tail_floor`` is the gap-split efficiency floor (see
    :func:`plan_chunks`).  Row-sweep engines want the default — their
    cost scales with padded cells — while column-sweep (striped)
    callers pass ``0.0``: a gap split there trades padding for extra
    near-empty column iterations, the overhead the split exists to
    avoid.
    """
    db._require_residues()
    order = np.argsort(db.lengths, kind="stable")
    plan = plan_chunks(
        db.lengths[order], group_size, budget=budget, tail_floor=tail_floor
    )
    groups = [
        pack_group(db, order[start:end]) for start, end in plan.ranges
    ]
    instr = obs_current()
    if instr.enabled:
        _record_pack_counters(instr, len(db), groups, plan)
    return groups


def pack_database_hetero(
    db: Database,
    group_size: int,
    threshold: int,
    *,
    budget: MemoryBudget | None = None,
    bulk_engine: str = "striped",
    strip_width: int | None = None,
) -> list[PackedGroup]:
    """Length-threshold heterogeneous packing (the paper's core split).

    Sequences of length ``<= threshold`` pack into ``bulk_engine``
    groups exactly as :func:`pack_database` would (inter-task side);
    longer sequences pack into ``"strips"`` groups for the strip-sweep
    engine (intra-task side), where padding stays bounded per sequence
    instead of scaling with group raggedness.  Group ``indices`` refer
    to the original database order, so mixed-engine scores scatter back
    identically.  ``threshold <= 0`` routes everything to strips;
    ``threshold >= max length`` routes everything to the bulk engine.
    """
    db._require_residues()
    order = np.argsort(db.lengths, kind="stable")
    sorted_lengths = db.lengths[order]
    n_bulk = int(np.searchsorted(sorted_lengths, threshold, side="right"))
    groups: list[PackedGroup] = []
    # Bulk groups are striped-swept (column loop): a gap split would
    # trade padded cells for extra column iterations, so keep them
    # whole — the genuinely degenerate lengths are past the threshold
    # and tiled into strips anyway.
    bulk_plan = plan_chunks(
        sorted_lengths[:n_bulk], group_size, budget=budget, tail_floor=0.0
    )
    for start, end in bulk_plan.ranges:
        groups.append(
            pack_group(db, order[start:end], lane_engine=bulk_engine)
        )
    tail_order = order[n_bulk:]
    # Strip groups don't pack a rectangle, so the rectangle-efficiency
    # tail floor would split them for no gain: disable it there.
    tail_plan = plan_chunks(
        sorted_lengths[n_bulk:], group_size, budget=budget, tail_floor=0.0
    )
    for start, end in tail_plan.ranges:
        groups.append(
            pack_group(
                db,
                tail_order[start:end],
                lane_engine="strips",
                strip_width=strip_width,
            )
        )
    plan = ChunkPlan(
        bulk_plan.ranges + tail_plan.ranges,
        bulk_plan.tail_splits + tail_plan.tail_splits,
        bulk_plan.budget_splits + tail_plan.budget_splits,
        bulk_plan.budget_extra_groups + tail_plan.budget_extra_groups,
    )
    instr = obs_current()
    if instr.enabled:
        _record_pack_counters(instr, len(db), groups, plan)
    return groups
