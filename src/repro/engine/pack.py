"""Group packing for the batched inter-sequence engine.

CUDASW++'s inter-task kernel assigns one database sequence per SIMT
*lane* and launches length-sorted groups so lanes finish together
(Section II-C).  The functional analogue packs a group of sequences into
a dense ``(group_size, max_length)`` code matrix — one row per lane,
short rows padded with a sentinel symbol — so a NumPy operation over the
matrix advances every lane at once.

Padding is the load-balance story of the paper's Figure 2 translated to
the functional engine: every padded cell is a lane-step of wasted work,
and :attr:`PackedGroup.padding_efficiency` (useful residues over the
padded rectangle) is exactly the ``sum(len) / (s * max_len)`` quantity
of :class:`~repro.sequence.database.SequenceGroup`.  Length sorting
before grouping is what keeps it near 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.budget import MemoryBudget
from repro.obs import current as obs_current
from repro.sequence.database import Database

__all__ = ["PackedGroup", "pack_group", "pack_database"]


@dataclass(frozen=True)
class PackedGroup:
    """One length-sorted group of database sequences, packed lane-per-row.

    Attributes
    ----------
    indices:
        Positions of the member sequences in the *source* database's
        original order, so per-lane scores scatter straight back.
    lengths:
        True (unpadded) length of each lane.
    codes:
        ``(size, max_length)`` ``uint8`` matrix; row ``k`` holds lane
        ``k``'s residue codes, columns past ``lengths[k]`` hold
        :attr:`pad_code`.
    pad_code:
        The padding sentinel — one past the largest valid alphabet code,
        so a padded query profile can route it to an impossibly bad
        similarity score and padded cells can never win an alignment.
    """

    indices: np.ndarray
    lengths: np.ndarray
    codes: np.ndarray
    pad_code: int

    def __post_init__(self) -> None:
        if self.codes.ndim != 2:
            raise ValueError("packed codes must be a 2-D lane matrix")
        if self.indices.shape != self.lengths.shape or (
            self.indices.size != self.codes.shape[0]
        ):
            raise ValueError("indices, lengths and code rows must agree")
        if self.indices.size == 0:
            raise ValueError("a packed group cannot be empty")
        if self.codes.shape[1] != int(self.lengths.max()):
            raise ValueError("code matrix width must equal the max length")

    @property
    def size(self) -> int:
        """Number of lanes (sequences) in the group."""
        return int(self.indices.size)

    @property
    def max_length(self) -> int:
        return int(self.codes.shape[1])

    @property
    def residues(self) -> int:
        """Useful cells per query row: the true residue count."""
        return int(self.lengths.sum())

    @property
    def padded_cells(self) -> int:
        """Occupied lane-steps per query row: the full rectangle."""
        return self.size * self.max_length

    @property
    def padding_efficiency(self) -> float:
        """Useful work over occupied lane-steps — Figure 2's load-balance
        efficiency, for the NumPy lanes instead of SIMT threads."""
        return self.residues / self.padded_cells


def pack_group(db: Database, indices: np.ndarray) -> PackedGroup:
    """Pack the database sequences at ``indices`` into one lane matrix.

    ``indices`` refer to ``db``'s own ordering and are recorded verbatim
    in the result, so callers can pack a sorted permutation of an
    unsorted database and still scatter scores back trivially.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim != 1 or indices.size == 0:
        raise ValueError("need a non-empty 1-D index array")
    db._require_residues()
    lengths = db.lengths[indices]
    max_len = int(lengths.max())
    pad_code = db.alphabet.size
    codes = np.full((indices.size, max_len), pad_code, dtype=np.uint8)
    for lane, src in enumerate(indices):
        row = db.codes_of(int(src))
        codes[lane, : row.size] = row
    codes.setflags(write=False)
    return PackedGroup(indices, lengths, codes, pad_code)


def pack_database(
    db: Database,
    group_size: int,
    *,
    budget: MemoryBudget | None = None,
) -> list[PackedGroup]:
    """Sort ``db`` by length and pack it into groups of ``group_size``.

    Mirrors CUDASW++'s preprocessing pipeline
    (:meth:`Database.sorted_by_length` then
    :meth:`Database.partition_groups`): a stable ascending length sort
    keeps each group's lengths nearly uniform, so the padded rectangles
    stay tight.  The last group may be smaller.  Group ``indices`` refer
    to the *original* (unsorted) database order.

    ``budget`` (a :class:`~repro.engine.budget.MemoryBudget`) caps any
    single group's estimated sweep working set: a chunk whose padded
    rectangle would exceed it is split into narrower groups that each
    fit, instead of letting the sweep's allocation OOM-kill the
    process.  Splitting only changes fan-out geometry, never scores.
    """
    if group_size <= 0:
        raise ValueError(f"group size must be positive, got {group_size}")
    db._require_residues()
    order = np.argsort(db.lengths, kind="stable")
    sorted_lengths = db.lengths[order]
    groups = []
    instr = obs_current()
    for start in range(0, order.size, group_size):
        chunk = order[start : start + group_size]
        if budget is None:
            groups.append(pack_group(db, chunk))
            continue
        ends = budget.split_points(
            [int(n) for n in sorted_lengths[start : start + group_size]]
        )
        if len(ends) > 1:
            instr.count("engine.budget.groups_split", 1)
            instr.count("engine.budget.extra_groups", len(ends) - 1)
        prev = 0
        for end in ends:
            groups.append(pack_group(db, chunk[prev:end]))
            prev = end
    if instr.enabled:
        residues = sum(g.residues for g in groups)
        padded = sum(g.padded_cells for g in groups)
        instr.count("engine.pack.groups", len(groups))
        instr.count("engine.pack.sequences", len(db))
        instr.count("engine.pack.residues", residues)
        instr.count("engine.pack.padded_cells", padded)
        instr.count("engine.pack.pad_waste_cells", padded - residues)
        for g in groups:
            instr.observe("engine.pack.group_cells", float(g.padded_cells))
            instr.observe(
                "engine.pack.group_efficiency", g.padding_efficiency
            )
    return groups
