"""Striped (Farrar) lane sweep with a deconstructed lazy-F loop.

Where :mod:`repro.engine.lanes` vectorizes *across* database sequences
(one lane per sequence, one Python step per query row), this engine
also stripes *within* the query: each group is scored column-by-column
over the database, and every column advances all ``group.size *
seg_len * n_lanes`` striped query cells with a handful of vectorized
ops (see :class:`~repro.sequence.striped_profile.StripedProfile` for
the layout).  The per-column state arrays have shape ``(size, seg_len,
n_lanes)``; query position ``q = k * seg_len + i`` lives at ``[:, i,
k]``.

**The lazy-F deconstruction.**  Striping breaks the vertical
(query-direction) gap chain F at every lane boundary: extending a gap
from position ``k * seg_len - 1`` into ``k * seg_len`` crosses from row
``seg_len - 1`` of lane ``k - 1`` into row ``0`` of lane ``k``.
Farrar's original formulation speculatively assumes the wrap
contributes nothing and, when it does not hold, re-runs correction
passes until quiescence — worst case a full re-scan per lane.
Following Snytsar's de(con)struction, this sweep takes the lazy loop
apart into its closed form instead: open F from the current column's H
everywhere and extend it down the stripe rows once; then observe that
a gap chain crossing from lane ``j``'s bottom row to lane ``k``'s
bottom row decays by exactly ``(k - j) * seg_len * sigma``, so the
entire inter-lane fixpoint is a *prefix maximum over the bottom row
plus a linear ramp* — one ``np.maximum.accumulate`` yields every
lane's exact wrap carry simultaneously.  If no carry beats what a lane
already holds (the early-exit predicate, true for most columns), F is
finished; otherwise a **single** corrective fold-and-extend completes
it — the correction is bounded at one round by construction, never a
re-scan.  ``engine.striped.lazy_f_iterations`` counts the columns that
needed the corrective round; columns whose F is identically zero skip
the machinery entirely (``engine.striped.f_columns_skipped``).

**Score tiers.**  The first pass runs in saturating ``uint8``
arithmetic on the biased profile (the SSW library's trick): H is
clipped at ``cap8`` each column, which keeps every addition provably
wrap-free and makes saturation detectable — until a lane's true score
first reaches ``cap8``, its clipped sweep is *exact*, so ``clipped ==
cap8  <=>  true >= cap8``.  Saturated lanes are re-swept in ``int16``
(``engine.striped.overflow_reruns``/``saturated_lanes``), and lanes
past even ``cap16`` fall back to the exact int64 Gotoh sweep of
:func:`~repro.engine.lanes.score_packed_group` — scores are therefore
bit-identical to :func:`~repro.sw.scalar.sw_score_scalar` on every
lane, no matter how large they grow.

Gap arithmetic uses the same scan identity as the row sweep: because
:class:`~repro.alphabet.gaps.GapPenalty` enforces ``sigma <= rho``,
F never profits from opening out of an F-derived H, so E is folded
into H *before* F opens from it and the F chain closes over
max/saturating-subtract alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import GapPenalty
from repro.engine.lanes import score_packed_group
from repro.engine.pack import PackedGroup
from repro.obs import AnyInstrumentation, current as obs_current
from repro.sequence.striped_profile import StripedProfile
from repro.sw.utils import validate_penalties

__all__ = [
    "LANE_ENGINES",
    "score_packed_group_striped",
    "count_striped_work",
]

#: Per-lane score kernels the executor can run inside a group:
#: ``"gotoh"`` is the row-parallel sweep of :mod:`repro.engine.lanes`,
#: ``"striped"`` this module's Farrar engine, ``"strips"`` the
#: long-tail strip sweep of :mod:`repro.engine.strips`.
LANE_ENGINES = ("gotoh", "striped", "strips")


@dataclass
class _SweepStats:
    """Data-dependent (non-deterministic from geometry) sweep counts."""

    lazy_f_iterations: int = 0
    f_columns_skipped: int = 0

    def merge(self, other: _SweepStats) -> None:
        self.lazy_f_iterations += other.lazy_f_iterations
        self.f_columns_skipped += other.f_columns_skipped


def _lazy_f_sweep(
    codes: np.ndarray,
    prof: np.ndarray,
    gaps: GapPenalty,
    bias: int,
    cap: int,
) -> tuple[np.ndarray, _SweepStats]:
    """One saturating striped sweep of ``codes`` lanes against ``prof``.

    ``prof`` is a ``(alphabet + 1, seg_len, n_lanes)`` tier of a
    :class:`StripedProfile` (``uint8`` biased by ``bias``, or ``int16``
    with ``bias == 0``); ``cap`` is the tier's saturation cap.  Returns
    the per-lane maxima clipped at ``cap`` (``== cap`` means the lane
    saturated and its true score is ``>= cap``) plus the data-dependent
    sweep stats.
    """
    size, n_cols = codes.shape
    t, v = prof.shape[1], prof.shape[2]
    dtype = prof.dtype
    limit = int(np.iinfo(dtype).max)
    shape = (size, t, v)
    # Penalties clamped into the dtype: every swept value is <= limit,
    # so a saturating subtract by min(penalty, limit) is exact.  Every
    # constant operand is pre-materialized at operand shape — NumPy's
    # same-shape ufunc loops run several times faster than its
    # scalar/broadcast paths at these array sizes, and the inner loop
    # is dispatch-bound.
    rho_c = np.full(shape, min(gaps.rho, limit), dtype=dtype)
    sigma_c = np.full(shape, min(gaps.sigma, limit), dtype=dtype)
    sigma_row = np.ascontiguousarray(sigma_c[:, 0, :])
    cap_c = np.full(shape, cap, dtype=dtype)
    bias_c = np.full(shape, bias, dtype=dtype) if bias else None

    h = np.zeros(shape, dtype=dtype)
    hbuf = np.zeros(shape, dtype=dtype)
    e = np.zeros(shape, dtype=dtype)
    f = np.zeros(shape, dtype=dtype)
    ftmp = np.empty(shape, dtype=dtype)
    best = np.zeros(shape, dtype=dtype)
    sub = np.empty(shape, dtype=dtype)
    tmpv = np.empty((size, v), dtype=dtype)
    cols = np.ascontiguousarray(codes.T)  # column-contiguous fetches
    # Cross-lane wrap scan state (int64: the ramp can exceed any narrow
    # dtype for adversarial penalties).  A vertical gap crossing from
    # lane j's bottom row to lane k's bottom row decays by exactly
    # (k - j) * seg_len * sigma, so the inter-lane F fixpoint is a
    # prefix maximum of boundary + ramp — the same scan identity the
    # row engine uses for E.
    scan = np.empty((size, v), dtype=np.int64)
    lane_decay = int(gaps.sigma) * t
    ramp_c = np.empty((size, v), dtype=np.int64)
    ramp_c[:] = lane_decay * np.arange(v, dtype=np.int64)
    carry_c = ramp_c[:, : max(v - 1, 0)] + int(gaps.sigma)
    zero_cut = np.zeros((size, max(v - 1, 0)), dtype=np.int64)
    gt = np.empty((size, max(v - 1, 0)), dtype=bool)
    stats = _SweepStats()

    def extend_f_down_rows() -> None:
        # f[i] = max(f[i], f[i-1] - sigma), saturating at 0: the
        # vertical gap-extension chain inside each lane.
        for i in range(1, t):
            np.maximum(f[:, i - 1, :], sigma_row, out=tmpv)
            np.subtract(tmpv, sigma_row, out=tmpv)
            np.maximum(f[:, i, :], tmpv, out=f[:, i, :])

    for j in range(n_cols):
        np.take(prof, cols[j], axis=0, out=sub, mode="clip")
        # Diagonal candidate: H[q-1] of the previous column, shifted one
        # striped position down (row 0 wraps from the previous lane's
        # last row), plus the profile byte.
        hbuf[:, 1:, :] = h[:, : t - 1, :]
        hbuf[:, 0, 1:] = h[:, t - 1, :-1]
        hbuf[:, 0, 0] = 0
        np.add(hbuf, sub, out=hbuf)
        # Htmp = max(H_diag + W, 0) in the true domain: clamp at the
        # bias, then strip it (a saturating subtract at zero).
        if bias_c is not None:
            np.maximum(hbuf, bias_c, out=hbuf)
            np.subtract(hbuf, bias_c, out=hbuf)
        # Fold E before opening F: an E-derived H legitimately opens a
        # vertical gap, while an F-derived one never does (sigma <= rho
        # makes extending the existing gap at least as good).
        np.maximum(hbuf, e, out=hbuf)
        # Open F from this column's H: saturating-subtract rho at full
        # shape, then shift one striped position down (row 0 wraps from
        # the previous lane's last row).
        np.maximum(hbuf, rho_c, out=ftmp)
        np.subtract(ftmp, rho_c, out=ftmp)
        f[:, 1:, :] = ftmp[:, : t - 1, :]
        f[:, 0, 1:] = ftmp[:, t - 1, :-1]
        f[:, 0, 0] = 0
        if bool(f.any()):
            extend_f_down_rows()
            if v > 1 and bool(f[:, t - 1, :].any()):
                # Resolve the lane wrap in closed form: one prefix-max
                # scan over the stripe's bottom row gives every lane's
                # exact inter-lane carry, so at most ONE corrective
                # re-propagation is ever needed (Farrar's worst case
                # re-scans the whole stripe per lane).
                np.copyto(scan, f[:, t - 1, :], casting="unsafe")
                np.add(scan, ramp_c, out=scan)
                np.maximum.accumulate(scan, axis=1, out=scan)
                carry = tmpv[:, 1:]
                np.subtract(scan[:, :-1], carry_c, out=scan[:, :-1])
                np.maximum(scan[:, :-1], zero_cut, out=scan[:, :-1])
                np.copyto(carry, scan[:, :-1], casting="unsafe")
                np.greater(carry, f[:, 0, 1:], out=gt)
                if bool(gt.any()):
                    # Early-exit predicate failed: some lane's row 0
                    # really is fed by an upstream gap — fold the
                    # carries and extend them down the rows once.
                    stats.lazy_f_iterations += 1
                    np.maximum(f[:, 0, 1:], carry, out=f[:, 0, 1:])
                    extend_f_down_rows()
            np.maximum(hbuf, f, out=hbuf)
        else:
            stats.f_columns_skipped += 1
        # Clip at the tier cap: keeps the next column's profile addition
        # provably wrap-free and makes saturation detectable (a clipped
        # score == cap iff the true score >= cap).
        np.minimum(hbuf, cap_c, out=hbuf)
        np.maximum(best, hbuf, out=best)
        # E for the next column: max(E - sigma, H - rho), floored at 0
        # (ftmp is dead until the next column and serves as scratch).
        np.maximum(e, sigma_c, out=e)
        np.subtract(e, sigma_c, out=e)
        np.maximum(hbuf, rho_c, out=ftmp)
        np.subtract(ftmp, rho_c, out=ftmp)
        np.maximum(e, ftmp, out=e)
        h, hbuf = hbuf, h

    return best.max(axis=(1, 2)), stats


def _subset_group(group: PackedGroup, rows: np.ndarray) -> PackedGroup:
    """A :class:`PackedGroup` of just ``rows``, trimmed to their own
    maximum length (re-run tiers touch only the saturated lanes)."""
    lengths = group.lengths[rows]
    width = int(lengths.max())
    codes = np.ascontiguousarray(group.codes[rows, :width])
    codes.setflags(write=False)
    return PackedGroup(group.indices[rows], lengths, codes, group.pad_code)


def score_packed_group_striped(
    profile: StripedProfile, group: PackedGroup, gaps: GapPenalty
) -> np.ndarray:
    """Optimal local-alignment score of the query against every lane.

    Runs the saturating ``uint8`` tier, re-sweeps saturated lanes in
    ``int16``, and falls back to the exact int64 Gotoh sweep for lanes
    past even the ``int16`` cap (or for matrices no narrow tier
    supports).  Returns an ``int64`` array of ``group.size`` scores in
    lane order, bit-identical to
    :func:`~repro.engine.lanes.score_packed_group`.
    """
    validate_penalties(gaps)
    if group.pad_code != profile.matrix.alphabet.size:
        raise ValueError(
            f"pad code must be the alphabet-size sentinel "
            f"{profile.matrix.alphabet.size}, got {group.pad_code}"
        )
    instr = obs_current()
    scores = np.zeros(group.size, dtype=np.int64)
    stats = _SweepStats()
    remaining = np.arange(group.size, dtype=np.intp)

    prof8 = profile.profile8
    if prof8 is not None:
        lane8, tier_stats = _lazy_f_sweep(
            group.codes, prof8, gaps, profile.bias, profile.cap8
        )
        stats.merge(tier_stats)
        scores[:] = lane8.astype(np.int64)
        remaining = np.flatnonzero(lane8 >= profile.cap8)

    prof16 = profile.profile16
    if remaining.size and prof16 is not None:
        rerun = _subset_group(group, remaining)
        lane16, tier_stats = _lazy_f_sweep(
            rerun.codes, prof16, gaps, 0, profile.cap16
        )
        stats.merge(tier_stats)
        scores[remaining] = lane16.astype(np.int64)
        remaining = remaining[lane16 >= profile.cap16]

    if remaining.size:
        # Exact fallback: lanes past the int16 cap, or every lane when
        # the matrix fits no narrow tier.  (Charges its own
        # engine.sweep.* work when instrumentation is live.)
        exact = _subset_group(group, remaining)
        scores[remaining] = score_packed_group(profile.base, exact, gaps)

    if instr.enabled:
        if stats.lazy_f_iterations:
            instr.count(
                "engine.striped.lazy_f_iterations", stats.lazy_f_iterations
            )
        if stats.f_columns_skipped:
            instr.count(
                "engine.striped.f_columns_skipped", stats.f_columns_skipped
            )
        instr.observe(
            "engine.striped.lazy_f_rounds", float(stats.lazy_f_iterations)
        )
        count_striped_work(instr, profile, group, scores)
    return scores


def count_striped_work(
    instr: AnyInstrumentation,
    profile: StripedProfile,
    group: PackedGroup,
    lane_scores: np.ndarray,
) -> None:
    """Charge one striped group's deterministic work counters.

    Every count is a function of the profile geometry, the group
    geometry and the *final exact* lane scores: a lane's clipped sweep
    is exact until the moment it saturates, so ``score >= cap`` decides
    "this tier saturated and the next tier ran" identically to the
    sweep's own detection.  Pool-scored groups run this same charge
    *worker-side* and ship the registries back as telemetry (see
    ``repro.engine.executor``), so pooled totals stay bit-identical to
    the serial path; ``engine.striped.lazy_f_iterations`` /
    ``f_columns_skipped`` are data-dependent and counted inside the
    sweep itself.
    """
    instr.count("engine.striped.groups", 1)
    saturated = np.ones(group.size, dtype=bool)
    ran_prior = False
    if profile.profile8 is not None:
        instr.count("engine.striped.stripes", profile.seg_len)
        instr.count("engine.striped.columns", group.max_length)
        saturated = lane_scores >= profile.cap8
        instr.count("engine.striped.saturated_lanes", int(saturated.sum()))
        ran_prior = True
    if bool(saturated.any()) and profile.profile16 is not None:
        if ran_prior:
            instr.count("engine.striped.overflow_reruns", 1)
        instr.count("engine.striped.stripes", profile.seg_len)
        instr.count(
            "engine.striped.columns", int(group.lengths[saturated].max())
        )
        past16 = saturated & (lane_scores >= profile.cap16)
        if not ran_prior:
            instr.count("engine.striped.saturated_lanes", int(past16.sum()))
        saturated = past16
        ran_prior = True
    if bool(saturated.any()):
        if ran_prior:
            instr.count("engine.striped.overflow_reruns", 1)
        instr.count("engine.striped.exact_rerun_lanes", int(saturated.sum()))
