"""The batched lane sweep: one NumPy step per DP row, all lanes at once.

This is inter-sequence SIMD vectorization (SWIPE, SWAPHI, the SSW
library) expressed in NumPy: lane ``k`` of a :class:`PackedGroup` holds
database sequence ``k``, and each iteration of the single Python loop
advances *every* lane by one query row.  For a group of ``s`` sequences
of padded length ``L`` against a query of length ``m``, the whole group
costs ``m`` vectorized steps over ``(s, L)`` arrays — versus
``s * (m + n)`` interpreter steps for the per-pair wavefront aligner.

Within a row the horizontal gap state ``E`` has a sequential dependency
(``E[i][j]`` needs ``E[i][j-1]``), which would force a per-column Python
loop.  The sweep removes it with the Gotoh scan identity: because a gap
*extension* never costs more than a gap *open* (``sigma <= rho``, which
:class:`~repro.alphabet.gaps.GapPenalty` enforces), ``E`` can be opened
directly from ``Htmp = max(0, F, H_diag + W)`` — the row's H values
*before* E is folded in::

    E[i][j] = max_{k < j} ( Htmp[k] - rho - (j-1-k) * sigma )
            = max_{k <= j-1} ( Htmp[k] + k*sigma ) - rho - (j-1)*sigma

i.e. a prefix maximum of ``Htmp + k*sigma`` along the row, computed for
all lanes with one ``np.maximum.accumulate``.  (Routing a gap through a
cell whose H came from E would pay ``rho`` twice where extending the
original gap pays ``sigma`` — never better when ``sigma <= rho``.)

Padded columns read a sentinel similarity of ``-(m * |W|_max + 1)``, so
``H_diag + W`` is negative there; padded cells can only relay (decayed)
in-bounds values and never raise a lane's maximum.  Scores are therefore
bit-identical to :func:`~repro.sw.scalar.sw_score_scalar` on every lane,
which the equivalence suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty
from repro.engine.pack import PackedGroup
from repro.obs import AnyInstrumentation, current as obs_current
from repro.sequence.profile import QueryProfile
from repro.sw.utils import validate_penalties

__all__ = ["score_packed_group", "padded_lane_profile", "count_sweep_work"]


def count_sweep_work(
    instr: AnyInstrumentation, m: int, group: PackedGroup
) -> None:
    """Record one group sweep's work in the ambient counter registry.

    Useful vs. padded cells is the Figure 2 distinction: the sweep
    *computes* the whole ``(size, max_len)`` rectangle ``m`` times, but
    only ``m * residues`` of those cells are real DP cells.  The counts
    are deterministic functions of the geometry, so the executor charges
    them parent-side for groups scored in worker processes (whose own
    registries are per-process copies) — totals are identical on the
    serial and fanned-out paths.
    """
    s, L = group.codes.shape
    instr.count("engine.sweep.groups", 1)
    instr.count("engine.sweep.rows", m)
    instr.count("engine.sweep.lane_steps", m * s)
    instr.count("engine.sweep.useful_cells", m * group.residues)
    instr.count("engine.sweep.padded_cells", m * s * L)


def padded_lane_profile(profile: QueryProfile, pad_code: int) -> np.ndarray:
    """Row-per-query-position profile with a pad-sentinel column.

    Returns ``(m, alphabet_size + 1)`` where ``[i, c] = W[q_i, c]`` and
    the extra column ``[i, pad_code]`` holds a similarity poisonous
    enough that no alignment through padding can ever score positively.
    Row ``i`` is contiguous: scoring query row ``i`` against every lane
    is one ``np.take`` gather from it.
    """
    size = profile.matrix.alphabet.size
    if pad_code != size:
        raise ValueError(
            f"pad code must be the alphabet-size sentinel {size}, "
            f"got {pad_code}"
        )
    scores = profile.scores  # (size, m), row-contiguous per symbol
    max_abs = max(int(np.abs(scores).max()), 1)
    pad_score = -(profile.length * max_abs + 1)
    out = np.empty((profile.length, size + 1), dtype=np.int64)
    out[:, :size] = scores.T
    out[:, size] = pad_score
    return out


def _working_dtype(
    m: int, L: int, max_abs_score: int, gaps: GapPenalty
) -> type:
    """int32 when every intermediate provably fits, else int64.

    The extreme magnitudes are the prefix-scan ramp (``L * sigma``), the
    decayed F boundary (``~m * sigma + rho`` below the -inf seed) and
    accumulated similarity (``m * |W|_max``); int32 covers every
    realistic matrix/penalty, int64 is the safety net for adversarial
    penalties near the ``2**20`` validation cap.
    """
    bound = (
        2 * m * max_abs_score
        + gaps.rho
        + gaps.sigma * (L + 2 * m + 4)
    )
    return np.int32 if bound < 2**30 else np.int64


def score_packed_group(
    profile: QueryProfile, group: PackedGroup, gaps: GapPenalty
) -> np.ndarray:
    """Optimal local-alignment score of the query against every lane.

    Returns an ``int64`` array of ``group.size`` scores, lane order.
    """
    validate_penalties(gaps)
    m = profile.length
    instr = obs_current()
    if instr.enabled:
        count_sweep_work(instr, m, group)
    s, L = group.codes.shape
    rho, sigma = gaps.rho, gaps.sigma
    pp = padded_lane_profile(profile, group.pad_code)
    dtype = _working_dtype(m, L, int(np.abs(profile.scores).max()), gaps)
    pp = pp.astype(dtype, copy=False)

    #: -inf stand-in for the F boundary: deep enough that m rows of
    #: sigma-decay still lose to any reachable alternative.
    neg = dtype(-(m * int(np.abs(profile.scores).max()) + rho + sigma * (m + 2)))
    ramp = (sigma * np.arange(L + 1, dtype=np.int64)).astype(dtype)
    e_off = (rho + ramp[:L]).astype(dtype)  # rho + (j-1)*sigma at column j

    h_prev = np.zeros((s, L + 1), dtype=dtype)  # H of row i-1 (col 0 = boundary)
    f_prev = np.full((s, L + 1), neg, dtype=dtype)  # F of row i-1
    h_cur = np.empty_like(h_prev)
    htmp = np.empty_like(h_prev)  # max(0, F, H_diag + W): H before E
    g = np.empty_like(h_prev)  # scan buffer
    tmp = np.empty_like(h_prev)
    sub = np.empty((s, L), dtype=dtype)
    best = np.zeros(s, dtype=dtype)

    for i in range(m):
        # F[i] = max(F[i-1] - sigma, H[i-1] - rho), elementwise per lane.
        np.subtract(f_prev, sigma, out=f_prev)
        np.subtract(h_prev, rho, out=tmp)
        np.maximum(f_prev, tmp, out=f_prev)
        # Similarity of query row i against every lane column: one gather.
        np.take(pp[i], group.codes, out=sub)
        # Htmp = max(0, F, H[i-1][j-1] + W) — H with E not yet folded in.
        np.add(h_prev[:, :L], sub, out=htmp[:, 1:])
        np.maximum(htmp[:, 1:], f_prev[:, 1:], out=htmp[:, 1:])
        np.maximum(htmp[:, 1:], 0, out=htmp[:, 1:])
        htmp[:, 0] = 0
        # The row maximum of H equals the row maximum of Htmp: E only
        # relays Htmp values minus gap penalties, so folding it in can
        # never raise the maximum.
        np.maximum(best, htmp.max(axis=1), out=best)
        # E via the prefix-max scan, then H = max(Htmp, E).
        np.add(htmp, ramp, out=g)
        np.maximum.accumulate(g, axis=1, out=g)
        np.subtract(g[:, :L], e_off, out=h_cur[:, 1:])
        np.maximum(h_cur[:, 1:], htmp[:, 1:], out=h_cur[:, 1:])
        h_cur[:, 0] = 0
        h_prev, h_cur = h_cur, h_prev

    return best.astype(np.int64)
