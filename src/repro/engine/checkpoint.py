"""Crash-safe checkpointing: a write-ahead journal for group scores.

A Swiss-Prot-scale scan is hours of work, and PR 3's fault policy only
protects against *worker* failures — a SIGKILL, OOM kill or host reboot
of the process itself still threw away every completed group.  SWAPHI's
multi-pass database partitioning shows that chunked database scans are
the natural unit of recovery, and the engine's packed groups are exactly
that unit: deterministic (stable length sort, fixed group size) and
content-addressable (the packed code matrix hashes to a stable digest).

This module journals each completed group's score vector to an
append-only file as the search runs:

* every record is length-framed and CRC-checked, and the file is
  ``fsync``'d after each append, so a crash can only ever cost the
  record being written at that instant (a *torn tail*), never a
  completed one;
* the journal header carries a :func:`search_fingerprint` — a content
  hash of the query codes, substitution matrix, gap penalties, group
  geometry and database shape — and each group record carries a
  :func:`group_content_hash` of its packed lanes, so a stale journal
  (different query, edited database, changed penalties) is **rejected**
  with :class:`CheckpointError` instead of silently merged;
* on resume, :meth:`CheckpointJournal.resume` replays the journal,
  returns the completed group scores, and re-opens the file for append,
  so the engine recomputes only the remainder.

The failure contract: a torn tail record (the expected artifact of
``SIGKILL`` mid-write) is dropped with a warning and its group is
recomputed; everything else — bad magic, truncated or CRC-corrupt
header, CRC-corrupt complete records, fingerprint or per-group hash
mismatches — refuses cleanly with :class:`CheckpointError` so a wrong
journal can never contaminate scores.

:func:`atomic_write_text` rounds the story out: final artifacts (score
tables, reports) land via temp-file-plus-rename, so readers never see a
half-written result even if the process dies mid-write.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import warnings
import zlib
from pathlib import Path
from typing import IO, TYPE_CHECKING

import numpy as np

from repro.obs import current as obs_current

if TYPE_CHECKING:
    from repro.alphabet import GapPenalty, SubstitutionMatrix
    from repro.engine.pack import PackedGroup
    from repro.sequence.database import Database

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "atomic_write_text",
    "group_content_hash",
    "search_fingerprint",
]

#: Journal file magic: identifies format and version in one token.
MAGIC = b"RPROWAL1"

#: Record kinds.
_REC_HEADER = 1
_REC_GROUP = 2

#: Record frame: kind (u8) + payload length (u32, little-endian).
_FRAME = struct.Struct("<BI")
#: Trailer: CRC32 of the payload.
_CRC = struct.Struct("<I")
#: Group payload prefix: group index (u32) + lane count (u32).
_GROUP_PREFIX = struct.Struct("<II")

#: Bytes of the sha256 digest stored per group record.
_HASH_BYTES = 16


class CheckpointError(Exception):
    """A checkpoint journal cannot be trusted for this search.

    Raised on structural corruption (bad magic, truncated or
    CRC-corrupt records) and on content mismatches (the journal was
    written for a different query, database, scoring model or group
    geometry).  The refusal is deliberate: recomputing from scratch is
    always correct, merging a wrong journal never is.
    """


def search_fingerprint(
    query_codes: np.ndarray,
    matrix: "SubstitutionMatrix",
    gaps: "GapPenalty",
    group_size: int,
    db: "Database",
    *,
    budget_bytes: int = 0,
    engines: tuple[str, ...] = (),
    store_fingerprint: str = "",
) -> str:
    """Content hash identifying one search's journal-compatible inputs.

    Covers everything that determines the group decomposition and the
    scores: the encoded query, the substitution matrix (name *and*
    table — a retuned matrix under the same name must not match), the
    gap penalties, the group size, the memory budget (it changes the
    split), the database geometry and — when ``engines`` is non-empty —
    the per-group engine assignment.  A heterogeneous search passes one
    token per group (e.g. ``"striped"`` / ``"strips:512"``), so a
    journal written under one split threshold *refuses* to resume under
    another instead of silently scattering scores into a different
    group decomposition.  Per-group residue content is covered
    separately by :func:`group_content_hash`, record by record.

    ``store_fingerprint`` — the content sha256 of a pre-packed database
    store when the search runs against one — folds the store identity
    in, so a journal written against one build of a ``.rdb`` refuses to
    resume against a rebuilt (and possibly re-ordered) one.  It also
    means a journal written on the FASTA path does not match a
    store-backed search of the same database: conservative by design.
    """
    h = hashlib.sha256()
    h.update(MAGIC)
    h.update(np.ascontiguousarray(query_codes, dtype=np.uint8).tobytes())
    h.update(matrix.name.encode("utf-8", "replace"))
    h.update(matrix.scores.tobytes())
    h.update(matrix.alphabet.symbols.encode("utf-8", "replace"))
    h.update(struct.pack("<qqqq", gaps.rho, gaps.sigma, group_size,
                         budget_bytes))
    h.update(struct.pack("<q", len(db)))
    h.update(np.ascontiguousarray(db.lengths, dtype=np.int64).tobytes())
    if engines:
        h.update(b"engines:")
        h.update("\x1f".join(engines).encode("utf-8", "replace"))
    if store_fingerprint:
        h.update(b"store:")
        h.update(store_fingerprint.encode("ascii", "replace"))
    return h.hexdigest()


def group_content_hash(group: "PackedGroup") -> bytes:
    """16-byte content digest of one packed group's lanes.

    Hashes the member indices, true lengths and the padded code matrix,
    so any database edit that reaches this group — a changed residue, a
    reordered or replaced sequence — changes the digest and invalidates
    the journaled record for it.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(group.indices, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(group.lengths, dtype=np.int64).tobytes())
    h.update(group.codes.tobytes())
    return h.digest()[:_HASH_BYTES]


def _pack_record(kind: int, payload: bytes) -> bytes:
    return _FRAME.pack(kind, len(payload)) + payload + _CRC.pack(
        zlib.crc32(payload)
    )


class _TornTail(Exception):
    """Internal: the file ended mid-record (expected after SIGKILL)."""


def _read_record(buf: bytes, offset: int) -> tuple[int, bytes, int]:
    """Decode one record at ``offset``; returns (kind, payload, next).

    Raises :class:`_TornTail` when the buffer ends before the record
    completes and :class:`CheckpointError` when a *complete* record
    fails its CRC — the distinction between a crash artifact and real
    corruption.
    """
    if offset + _FRAME.size > len(buf):
        raise _TornTail
    kind, length = _FRAME.unpack_from(buf, offset)
    body_start = offset + _FRAME.size
    end = body_start + length + _CRC.size
    if end > len(buf):
        raise _TornTail
    payload = buf[body_start : body_start + length]
    (crc,) = _CRC.unpack_from(buf, body_start + length)
    if zlib.crc32(payload) != crc:
        raise CheckpointError(
            f"checkpoint record at byte {offset} fails its CRC check: "
            "the journal is corrupt (not merely truncated); refusing to "
            "resume from it"
        )
    return kind, payload, end


class CheckpointJournal:
    """Append-only, CRC-framed journal of completed group scores.

    Use :meth:`create` for a fresh search and :meth:`resume` to replay
    an existing journal; both return a journal open for appending.
    :meth:`append` writes and ``fsync``'s one group record;
    :meth:`close` releases the handle (records are already durable).
    """

    def __init__(self, path: Path, fh: IO[bytes], fingerprint: str) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self._fh: IO[bytes] | None = fh

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, path: str | os.PathLike[str], fingerprint: str, n_groups: int
    ) -> "CheckpointJournal":
        """Start a fresh journal at ``path`` (truncating any old one)."""
        p = Path(path)
        header = json.dumps(
            {"fingerprint": fingerprint, "n_groups": n_groups}
        ).encode("ascii")
        fh = open(p, "wb")
        fh.write(MAGIC)
        fh.write(_pack_record(_REC_HEADER, header))
        fh.flush()
        os.fsync(fh.fileno())
        return cls(p, fh, fingerprint)

    @classmethod
    def resume(
        cls,
        path: str | os.PathLike[str],
        fingerprint: str,
        groups: "list[PackedGroup]",
    ) -> tuple["CheckpointJournal", dict[int, np.ndarray]]:
        """Replay ``path`` and re-open it for appending.

        Returns the journal plus the completed scores keyed by group
        index.  A missing or empty file starts fresh (so ``--resume``
        is safe on the very first run).  Validation failures raise
        :class:`CheckpointError`; a torn tail record is dropped with a
        warning and counted as ``engine.checkpoint.torn_records_dropped``.
        """
        p = Path(path)
        if not p.exists() or p.stat().st_size == 0:
            return cls.create(p, fingerprint, len(groups)), {}
        buf = p.read_bytes()
        completed = cls._replay(buf, fingerprint, groups, p)
        instr = obs_current()
        instr.count("engine.checkpoint.groups_replayed", len(completed))
        fh = open(p, "ab")
        return cls(p, fh, fingerprint), completed

    @staticmethod
    def _replay(
        buf: bytes,
        fingerprint: str,
        groups: "list[PackedGroup]",
        path: Path,
    ) -> dict[int, np.ndarray]:
        if len(buf) < len(MAGIC) or buf[: len(MAGIC)] != MAGIC:
            raise CheckpointError(
                f"{path} is not a checkpoint journal (bad magic); "
                "refusing to resume from it"
            )
        offset = len(MAGIC)
        try:
            kind, payload, offset = _read_record(buf, offset)
        except _TornTail:
            raise CheckpointError(
                f"{path} has a truncated journal header: nothing can be "
                "replayed; delete it (or drop --resume) to start fresh"
            ) from None
        if kind != _REC_HEADER:
            raise CheckpointError(
                f"{path} does not start with a journal header record"
            )
        head = json.loads(payload.decode("ascii"))
        if head.get("fingerprint") != fingerprint:
            raise CheckpointError(
                f"{path} was written for a different search (query, "
                "database, scoring parameters or group geometry differ); "
                "refusing to merge it"
            )
        if head.get("n_groups") != len(groups):
            raise CheckpointError(
                f"{path} journals {head.get('n_groups')} groups but this "
                f"search packs {len(groups)}; refusing to merge it"
            )
        completed: dict[int, np.ndarray] = {}
        while offset < len(buf):
            try:
                kind, payload, offset = _read_record(buf, offset)
            except _TornTail:
                instr = obs_current()
                instr.count("engine.checkpoint.torn_records_dropped", 1)
                warnings.warn(
                    f"dropping torn tail record in {path} (the crash "
                    "artifact of an interrupted append); its group will "
                    "be recomputed",
                    UserWarning,
                    stacklevel=3,
                )
                break
            if kind != _REC_GROUP:
                raise CheckpointError(
                    f"unexpected record kind {kind} in {path}"
                )
            gi, n = _GROUP_PREFIX.unpack_from(payload, 0)
            if gi >= len(groups):
                raise CheckpointError(
                    f"{path} journals group {gi}, beyond this search's "
                    f"{len(groups)} groups; refusing to merge it"
                )
            body = payload[_GROUP_PREFIX.size :]
            digest = body[:_HASH_BYTES]
            scores = np.frombuffer(
                body[_HASH_BYTES:], dtype="<i8"
            ).astype(np.int64)
            if n != groups[gi].size or scores.size != n:
                raise CheckpointError(
                    f"{path} group {gi} journals {n} lanes but the "
                    f"packed group has {groups[gi].size}; refusing to "
                    "merge it"
                )
            if digest != group_content_hash(groups[gi]):
                raise CheckpointError(
                    f"{path} group {gi} content hash does not match the "
                    "packed database (stale or edited database); "
                    "refusing to merge it"
                )
            completed[gi] = scores
        return completed

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(
        self, group_index: int, group: "PackedGroup", scores: np.ndarray
    ) -> None:
        """Durably journal one completed group's scores (fsync'd)."""
        if self._fh is None:
            raise ValueError("journal is closed")
        payload = (
            _GROUP_PREFIX.pack(group_index, int(scores.size))
            + group_content_hash(group)
            + np.ascontiguousarray(scores, dtype="<i8").tobytes()
        )
        self._fh.write(_pack_record(_REC_GROUP, payload))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        instr = obs_current()
        instr.count("engine.checkpoint.groups_journaled", 1)

    def close(self) -> None:
        """Release the file handle (appended records are already durable)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def atomic_write_text(path: str | os.PathLike[str], text: str) -> Path:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The content is fsync'd before the rename, so readers — and a
    process resuming after a crash — only ever see the old version or
    the complete new one, never a torn write.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        # Best-effort cleanup of the temp file while re-raising the real
        # error; the temp may already be renamed or gone.
        except OSError:  # repro-lint: disable=RPL105
            pass
        raise
    return target
