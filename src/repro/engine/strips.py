"""Strip-sweep lane engine for the long-tail (intra-task) dispatch side.

The batched engines pay for padding: a length-sorted tail group mixing a
700-residue sequence with a 3,600-residue one sweeps the full
``(size, max_len)`` rectangle, and BENCH showed the tail group packing
at ~31% efficiency.  CUDASW++'s answer (Section IV) is to stop batching
long subjects against each other and instead *tile a single long
subject* into fixed-size strips processed by one cooperating block.

This module is that tiling in NumPy lane form.  Each subject of length
``L`` is cut into ``ceil(L / W)`` column strips of fixed width ``W``
(:data:`DEFAULT_STRIP_WIDTH`); every strip becomes one lane of a
``(total_strips, W)`` code matrix, so the padding per subject is bounded
by ``W - 1`` cells **regardless of its length** — a 3,597-residue tail
subject packs at ``3597 / 3584``... of its own strips' rectangle instead
of dragging a whole group down to its width.  One Python step per query
row advances *every strip of every subject* at once, exactly like the
row sweep of :mod:`~repro.engine.lanes`.

Strips of one subject are not independent: within a DP row, H and E flow
across the strip boundary.  Both dependencies close in the same scan
forms the engine already uses:

* the *diagonal* term of strip ``s``'s column 0 is simply the previous
  row's value at strip ``s - 1``'s last column — a shifted gather;
* the *horizontal* gap term uses the Gotoh scan identity
  (``E[i][c] = max_{k<c}(Htmp[k] + k*sigma) - rho - (c-1)*sigma``,
  valid because ``sigma <= rho``): an in-strip prefix maximum of
  ``Htmp + j*sigma`` per strip, then one **segmented** prefix maximum
  over the per-strip boundary values — offset by ``s * W * sigma`` so
  decay across whole strips is exact, and biased by a per-sequence ramp
  so one ``np.maximum.accumulate`` cannot leak a carry from one
  subject's strips into the next's.

The vertical gap chain F never crosses a strip boundary (strips tile
*columns*), so it stays elementwise.  Padded cells sit only in each
subject's final strip, read the same poison sentinel as the row sweep,
and can only relay decayed in-bounds values — scores are bit-identical
to :func:`~repro.sw.scalar.sw_score_scalar`, which the mixed-engine
equivalence suite asserts.
"""

from __future__ import annotations

import numpy as np

from repro.alphabet import GapPenalty
from repro.engine.lanes import _working_dtype, padded_lane_profile
from repro.engine.pack import DEFAULT_STRIP_WIDTH, PackedGroup
from repro.obs import AnyInstrumentation, current as obs_current
from repro.sequence.profile import QueryProfile
from repro.sw.utils import validate_penalties

__all__ = [
    "DEFAULT_STRIP_WIDTH",
    "count_strips_work",
    "plan_strip_counts",
    "score_packed_group_strips",
]

def plan_strip_counts(
    lengths: np.ndarray, strip_width: int
) -> np.ndarray:
    """Strips per subject: ``ceil(length / strip_width)``, minimum 1."""
    if strip_width <= 0:
        raise ValueError(
            f"strip width must be positive, got {strip_width}"
        )
    lengths = np.asarray(lengths, dtype=np.int64)
    counts = (lengths + strip_width - 1) // strip_width
    return np.maximum(counts, 1)


def count_strips_work(
    instr: AnyInstrumentation,
    m: int,
    group: PackedGroup,
    strip_width: int,
    total_strips: int,
) -> None:
    """Charge one strip-group sweep's deterministic work counters.

    ``padded_cells`` is the swept strip rectangle ``total_strips * W``
    per query row — the quantity the dispatch decision optimizes — not
    the ``(size, max_len)`` packing rectangle the batched engines would
    have swept for the same subjects.
    """
    instr.count("engine.strips.groups", 1)
    instr.count("engine.strips.sequences", group.size)
    instr.count("engine.strips.strip_lanes", total_strips)
    instr.count("engine.strips.rows", m)
    instr.count("engine.strips.useful_cells", m * group.residues)
    instr.count(
        "engine.strips.padded_cells", m * total_strips * strip_width
    )


def score_packed_group_strips(
    profile: QueryProfile,
    group: PackedGroup,
    gaps: GapPenalty,
    *,
    strip_width: int | None = None,
) -> np.ndarray:
    """Optimal local-alignment score of the query against every subject.

    Re-tiles each subject's true-length codes into ``strip_width``-wide
    strip lanes and sweeps all strips per query row.  Returns an
    ``int64`` array of ``group.size`` scores in lane order,
    bit-identical to :func:`~repro.engine.lanes.score_packed_group`.
    """
    validate_penalties(gaps)
    if group.pad_code != profile.matrix.alphabet.size:
        raise ValueError(
            f"pad code must be the alphabet-size sentinel "
            f"{profile.matrix.alphabet.size}, got {group.pad_code}"
        )
    w = int(
        strip_width
        if strip_width is not None
        else (group.strip_width or DEFAULT_STRIP_WIDTH)
    )
    m = profile.length
    n = group.size
    lengths = group.lengths.astype(np.int64)
    counts = plan_strip_counts(lengths, w)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    #: subject index and in-subject strip index of every strip lane.
    seq_of = np.repeat(np.arange(n, dtype=np.int64), counts)
    local = np.arange(total, dtype=np.int64) - offsets[:-1][seq_of]
    first = local == 0  # strip 0 of each subject: no carry, no wrap

    instr = obs_current()
    if instr.enabled:
        count_strips_work(instr, m, group, w, total)

    # Re-tile: subject q's true residues, flattened across its strips.
    codes = np.full((total, w), group.pad_code, dtype=np.uint8)
    for q in range(n):
        length = int(lengths[q])
        s0 = int(offsets[q])
        k = int(counts[q])
        codes[s0 : s0 + k].reshape(-1)[:length] = group.codes[q, :length]

    rho, sigma = gaps.rho, gaps.sigma
    max_abs = max(int(np.abs(profile.scores).max()), 1)
    pp = padded_lane_profile(profile, group.pad_code)
    dtype = _working_dtype(m, total * w, max_abs, gaps)
    pp = pp.astype(dtype, copy=False)

    #: -inf stand-in, decay-proof over m rows (same bound as the row
    #: sweep's F seed).
    neg = dtype(-(m * max_abs + rho + sigma * (m + 2)))
    neg64 = np.int64(int(neg))
    rampw = (sigma * np.arange(w, dtype=np.int64)).astype(dtype)
    #: rho + (j-1)*sigma at in-strip column j (j=0 pairs with the carry
    #: term, whose strip-boundary crossing is the "-1" column).
    e_off = (
        rho - sigma + sigma * np.arange(w, dtype=np.int64)
    ).astype(dtype)
    #: Whole-strip decay offset of strip s's boundary value:
    #: local_strip * W * sigma (int64 — can exceed a narrow dtype for
    #: adversarial penalties).
    off = np.int64(sigma) * w * local
    #: Segmentation bias: adding big * subject_index before the
    #: cross-strip accumulate leaves any value carried across a subject
    #: boundary at least ``big`` below its segment's floor once the
    #: bias comes back off, where the -inf clip below catches it.
    #: big * n stays far inside int64 for every validated penalty.
    big = (
        np.int64(m) * max_abs
        + np.int64(sigma) * (np.int64(total) * w + w + 4)
        + np.int64(rho)
        - neg64
        + 1
    )
    seg_pen = big * seq_of

    h_prev = np.zeros((total, w), dtype=dtype)  # H of row i-1
    f = np.full((total, w), neg, dtype=dtype)
    htmp = np.empty_like(h_prev)  # max(0, F, H_diag + W): H before E
    diag = np.empty_like(h_prev)
    g = np.empty_like(h_prev)  # in-strip scan buffer
    ecand = np.empty_like(h_prev)
    sub = np.empty((total, w), dtype=dtype)
    tmp = np.empty_like(h_prev)
    bests = np.zeros(total, dtype=dtype)  # per-strip Htmp maxima
    bshift = np.empty(total, dtype=np.int64)
    key = np.empty(total, dtype=np.int64)
    carry = np.empty(total, dtype=np.int64)
    carry_col = np.empty((total, 1), dtype=dtype)

    for i in range(m):
        # F[i] = max(F[i-1] - sigma, H[i-1] - rho): vertical chains live
        # inside a column, so strips tile them without any boundary.
        np.subtract(f, sigma, out=f)
        np.subtract(h_prev, rho, out=tmp)
        np.maximum(f, tmp, out=f)
        # Similarity of query row i against every strip column.
        np.take(pp[i], codes, out=sub)
        # Diagonal H[i-1][c-1]: in-strip shift; column 0 wraps from the
        # previous strip's last column (zero at each subject's strip 0).
        diag[:, 1:] = h_prev[:, :-1]
        diag[1:, 0] = h_prev[:-1, -1]
        diag[first, 0] = 0
        np.add(diag, sub, out=htmp)
        np.maximum(htmp, f, out=htmp)
        np.maximum(htmp, 0, out=htmp)
        # The sequence maximum of H equals the sequence maximum of Htmp
        # (E and the carries only relay decayed Htmp values), so the
        # per-strip running maxima reduce exactly at the end.
        np.maximum(bests, htmp.max(axis=1), out=bests)
        # In-strip inclusive prefix maximum of Htmp + j*sigma.
        np.add(htmp, rampw, out=g)
        np.maximum.accumulate(g, axis=1, out=g)
        # Cross-strip carry: exclusive segmented prefix maximum of each
        # strip's boundary value B[s] = G[s, -1] + s_local * W * sigma.
        np.add(g[:-1, -1], off[:-1], out=bshift[1:])
        bshift[0] = neg64
        bshift[first] = neg64
        np.add(bshift, seg_pen, out=key)
        np.maximum.accumulate(key, out=key)
        np.subtract(key, seg_pen, out=carry)
        np.subtract(carry, off, out=carry)  # into strip-local terms
        np.maximum(carry, neg64, out=carry)  # clip leaked/-inf values
        np.copyto(carry_col[:, 0], carry, casting="unsafe")
        # E candidate at in-strip column j:
        #   max(G[s, j-1], carry[s]) - (rho + (j-1)*sigma).
        ecand[:, 1:] = g[:, :-1]
        ecand[:, 0] = neg
        np.maximum(ecand, carry_col, out=ecand)
        np.subtract(ecand, e_off, out=ecand)
        # H row i = max(Htmp, E); h_prev is fully consumed above.
        np.maximum(ecand, htmp, out=h_prev)

    scores: np.ndarray = np.maximum.reduceat(
        bests.astype(np.int64), offsets[:-1]
    )
    return scores
