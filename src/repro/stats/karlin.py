"""Karlin-Altschul parameters of a scoring system.

For ungapped local alignment with substitution scores ``s(a, b)`` and
background frequencies ``p_a``, Karlin & Altschul (1990) showed the
optimal score follows an extreme-value distribution with

    E(S) = K * m * n * exp(-lambda * S)

where ``lambda`` is the unique positive root of

    sum_{a,b} p_a * p_b * exp(lambda * s(a, b)) = 1

(which exists iff the expected score is negative and a positive score is
possible), and ``K`` is a computable constant.  ``lambda`` is solved
exactly here (Brent's method on a bracketed, strictly increasing
function).  ``K``'s closed form involves an infinite series over lattice
sums; following common practice for gapped scoring systems — where no
closed form exists at all — ``K`` is *calibrated empirically*: optimal
scores of random sequence pairs are fitted to the EVD with ``lambda``
fixed, via the median of ``K = exp(lambda * S) * ln 2 / (m * n)``-style
estimators (see :func:`calibrate_k`).  The calibration is deterministic
given the RNG seed and is cached per scoring system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.alphabet import GapPenalty, SubstitutionMatrix

__all__ = [
    "KarlinParameters",
    "karlin_lambda",
    "expected_score",
    "relative_entropy",
    "karlin_parameters",
    "calibrate_k",
]


def _clean_frequencies(
    matrix: SubstitutionMatrix, frequencies: np.ndarray
) -> np.ndarray:
    freq = np.asarray(frequencies, dtype=np.float64)
    if freq.shape != (matrix.alphabet.size,):
        raise ValueError(
            f"frequencies must have shape ({matrix.alphabet.size},), "
            f"got {freq.shape}"
        )
    if np.any(freq < 0) or freq.sum() <= 0:
        raise ValueError("frequencies must be non-negative and not all zero")
    return freq / freq.sum()


def expected_score(
    matrix: SubstitutionMatrix, frequencies: np.ndarray
) -> float:
    """Mean per-column score ``sum p_a p_b s(a,b)`` (must be < 0 for
    local-alignment statistics to exist)."""
    p = _clean_frequencies(matrix, frequencies)
    return float(p @ matrix.scores @ p)


def karlin_lambda(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray,
    *,
    tolerance: float = 1e-12,
) -> float:
    """The unique positive root of ``sum p_a p_b exp(lambda s_ab) = 1``.

    Raises ``ValueError`` when the scoring system is invalid for local
    alignment (non-negative expected score, or no positive score).
    """
    p = _clean_frequencies(matrix, frequencies)
    S = matrix.scores.astype(np.float64)
    mean = float(p @ S @ p)
    if mean >= 0:
        raise ValueError(
            f"expected score must be negative for local-alignment "
            f"statistics (got {mean:.4f})"
        )
    support = np.outer(p, p) > 0
    if not np.any(S[support] > 0):
        raise ValueError("a positive score must be possible")

    weights = np.outer(p, p)

    def f(lam: float) -> float:
        return float(np.sum(weights * np.exp(lam * S))) - 1.0

    # f(0) = 0, f'(0) = mean < 0, and f -> +inf: bracket the positive root.
    hi = 0.5
    while f(hi) < 0:
        hi *= 2.0
        if hi > 1e4:  # pragma: no cover - pathological matrices
            raise ValueError("failed to bracket lambda")
    return float(optimize.brentq(f, 1e-10, hi, xtol=tolerance))


def relative_entropy(
    matrix: SubstitutionMatrix, frequencies: np.ndarray, lam: float | None = None
) -> float:
    """The scoring system's relative entropy H (bits of information per
    aligned column under the target distribution)."""
    p = _clean_frequencies(matrix, frequencies)
    if lam is None:
        lam = karlin_lambda(matrix, frequencies)
    S = matrix.scores.astype(np.float64)
    target = np.outer(p, p) * np.exp(lam * S)
    return float(np.sum(target * S) * lam / math.log(2))


@dataclass(frozen=True)
class KarlinParameters:
    """The (lambda, K, H) triple of one scoring system."""

    lam: float
    k: float
    h: float
    gapped: bool

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.k <= 0 or self.h <= 0:
            raise ValueError("Karlin parameters must be positive")

    def bit_score(self, raw_score: float) -> float:
        """Normalized score in bits: ``(lambda S - ln K) / ln 2``."""
        return (self.lam * raw_score - math.log(self.k)) / math.log(2)

    def evalue(self, raw_score: float, m: int, n: int) -> float:
        """Expected number of chance hits at least this good in an
        ``m x n`` search space."""
        if m <= 0 or n <= 0:
            raise ValueError("search-space dimensions must be positive")
        return self.k * m * n * math.exp(-self.lam * raw_score)

    @staticmethod
    def pvalue_from_evalue(evalue: float) -> float:
        """P(at least one chance hit) = 1 - exp(-E)."""
        return -math.expm1(-evalue)


def calibrate_k(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray,
    lam: float,
    gaps: GapPenalty | None,
    rng: np.random.Generator,
    *,
    samples: int = 60,
    length: int = 180,
) -> float:
    """Empirical K: fit the EVD location from random-pair optimal scores.

    For an EVD, ``E[S] = (ln(K m n) + gamma) / lambda`` with Euler's
    ``gamma``; solving for K from the sample mean gives a consistent,
    simple estimator.  Gapped systems use the exact gapped optimum (our
    wavefront aligner); ungapped systems use the best ungapped segment.
    """
    if samples <= 1 or length <= 1:
        raise ValueError("need several samples of non-trivial length")
    from repro.sw.antidiagonal import sw_score_antidiagonal

    p = _clean_frequencies(matrix, frequencies)
    scores = np.empty(samples, dtype=np.float64)
    for i in range(samples):
        a = rng.choice(matrix.alphabet.size, size=length, p=p).astype(np.uint8)
        b = rng.choice(matrix.alphabet.size, size=length, p=p).astype(np.uint8)
        if gaps is None:
            scores[i] = _best_ungapped(matrix, a, b)
        else:
            scores[i] = sw_score_antidiagonal(a, b, matrix, gaps)
    gamma = 0.5772156649015329
    mean = float(scores.mean())
    k = math.exp(lam * mean - gamma) / (length * length)
    # Clamp to the sane range of published K values.
    return float(min(max(k, 1e-6), 1.0))


def _best_ungapped(
    matrix: SubstitutionMatrix, a: np.ndarray, b: np.ndarray
) -> int:
    """Best ungapped local segment score over all diagonals (vectorized
    Kadane per diagonal)."""
    best = 0
    n, m = a.size, b.size
    S = matrix.scores
    for diag in range(-(n - 1), m):
        if diag >= 0:
            length = min(n, m - diag)
            column = S[a[:length], b[diag : diag + length]]
        else:
            length = min(m, n + diag)
            column = S[a[-diag : -diag + length], b[:length]]
        running = 0
        for v in column:
            running = max(0, running + int(v))
            if running > best:
                best = running
    return best


_CACHE: dict[tuple, KarlinParameters] = {}


def karlin_parameters(
    matrix: SubstitutionMatrix,
    frequencies: np.ndarray,
    gaps: GapPenalty | None = None,
    *,
    seed: int = 2011,
) -> KarlinParameters:
    """The (lambda, K, H) of a scoring system, with caching.

    ``gaps=None`` gives the ungapped statistics (exact lambda); with a
    gap model, ``lambda`` is scaled by the standard gapped correction
    fitted into the empirical calibration (the empirical scores already
    include gaps, so the EVD fit absorbs the difference).
    """
    p = _clean_frequencies(matrix, frequencies)
    key = (
        matrix.name,
        matrix.scores.tobytes(),
        p.tobytes(),
        None if gaps is None else (gaps.rho, gaps.sigma),
        seed,
    )
    if key in _CACHE:
        return _CACHE[key]
    lam = karlin_lambda(matrix, frequencies)
    if gaps is not None:
        # Gapped lambda is below the ungapped one; fit it from the
        # empirical score spread (EVD: stddev = pi / (sqrt(6) lambda)).
        rng = np.random.default_rng(seed)
        from repro.sw.antidiagonal import sw_score_antidiagonal

        length, samples = 180, 60
        scores = np.empty(samples)
        for i in range(samples):
            a = rng.choice(matrix.alphabet.size, size=length, p=p).astype(np.uint8)
            b = rng.choice(matrix.alphabet.size, size=length, p=p).astype(np.uint8)
            scores[i] = sw_score_antidiagonal(a, b, matrix, gaps)
        spread = float(scores.std(ddof=1))
        lam_gapped = math.pi / (math.sqrt(6.0) * max(spread, 1e-9))
        lam = min(lam, lam_gapped)
    rng = np.random.default_rng(seed + 1)
    k = calibrate_k(matrix, frequencies, lam, gaps, rng)
    h = relative_entropy(matrix, frequencies, karlin_lambda(matrix, frequencies))
    params = KarlinParameters(lam=lam, k=k, h=h, gapped=gaps is not None)
    _CACHE[key] = params
    return params
