"""Alignment score statistics (Karlin-Altschul).

Raw Smith-Waterman scores are not comparable across queries, databases or
scoring systems; every serious search tool reports *bit scores* and
*E-values* instead.  This package provides:

* :func:`~repro.stats.karlin.karlin_lambda` — the scale parameter
  ``lambda`` of the Karlin-Altschul score distribution, solved exactly
  from the substitution matrix and background frequencies;
* :func:`~repro.stats.karlin.karlin_parameters` — ``(lambda, K, H)``
  with ``K`` calibrated empirically (documented in the module);
* :class:`~repro.stats.evalue.ScoreStatistics` — bit scores, E-values
  and P-values for search hits, and
  :func:`~repro.stats.evalue.annotate_hits` to attach them to a
  :class:`~repro.app.results.SearchResult`.
"""

from repro.stats.evalue import AnnotatedHit, ScoreStatistics, annotate_hits
from repro.stats.karlin import (
    KarlinParameters,
    expected_score,
    karlin_lambda,
    karlin_parameters,
    relative_entropy,
)

__all__ = [
    "AnnotatedHit",
    "KarlinParameters",
    "ScoreStatistics",
    "annotate_hits",
    "expected_score",
    "karlin_lambda",
    "karlin_parameters",
    "relative_entropy",
]
