"""Bit scores and E-values for search results."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.alphabet import BLOSUM62, GapPenalty, SubstitutionMatrix
from repro.app.results import Hit, SearchResult
from repro.sequence.frequencies import SWISSPROT_AA_FREQUENCIES
from repro.stats.karlin import KarlinParameters, karlin_parameters

__all__ = ["ScoreStatistics", "AnnotatedHit", "annotate_hits"]


@dataclass(frozen=True)
class AnnotatedHit:
    """A search hit with its statistical significance."""

    hit: Hit
    bit_score: float
    evalue: float
    pvalue: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.hit.id}: score={self.hit.score} "
            f"bits={self.bit_score:.1f} E={self.evalue:.2g}"
        )


class ScoreStatistics:
    """Significance calculator for one scoring system and search space."""

    def __init__(
        self,
        matrix: SubstitutionMatrix = BLOSUM62,
        gaps: GapPenalty | None = None,
        frequencies: np.ndarray | None = None,
        *,
        parameters: KarlinParameters | None = None,
    ) -> None:
        self.matrix = matrix
        self.gaps = gaps
        freq = (
            SWISSPROT_AA_FREQUENCIES
            if frequencies is None and matrix.alphabet.name == "protein"
            else frequencies
        )
        if freq is None:
            raise ValueError(
                "background frequencies are required for non-protein alphabets"
            )
        self.frequencies = freq
        self.parameters = parameters or karlin_parameters(matrix, freq, gaps)

    def bit_score(self, raw_score: int) -> float:
        return self.parameters.bit_score(raw_score)

    def evalue(self, raw_score: int, query_length: int, db_residues: int) -> float:
        """E-value against a whole database (search space = m x total N)."""
        return self.parameters.evalue(raw_score, query_length, db_residues)

    def significance_threshold(
        self, query_length: int, db_residues: int, evalue: float = 1e-3
    ) -> int:
        """Smallest raw score whose E-value is at most ``evalue``.

        Clamped to >= 0: Smith-Waterman scores are non-negative, so a
        cutoff lenient enough that the analytic solution goes negative
        (e.g. ``evalue=1e6`` on a small search space) means *every*
        score passes, i.e. a threshold of 0 — not a negative score no
        hit could ever have.
        """
        if evalue <= 0:
            raise ValueError("evalue cutoff must be positive")
        import math

        p = self.parameters
        s = (math.log(p.k * query_length * db_residues) - math.log(evalue)) / p.lam
        return max(0, int(math.ceil(s)))


def annotate_hits(
    result: SearchResult,
    statistics: ScoreStatistics,
    query_length: int,
    *,
    k: int = 10,
    max_evalue: float | None = None,
) -> list[AnnotatedHit]:
    """The top hits of a search with bit scores and E-values attached."""
    if query_length <= 0:
        raise ValueError("query length must be positive")
    db_residues = int(np.sum(result.lengths))
    annotated = []
    for hit in result.top(k):
        e = statistics.evalue(hit.score, query_length, db_residues)
        if max_evalue is not None and e > max_evalue:
            continue
        annotated.append(
            AnnotatedHit(
                hit=hit,
                bit_score=statistics.bit_score(hit.score),
                evalue=e,
                pvalue=statistics.parameters.pvalue_from_evalue(e),
            )
        )
    return annotated
