"""Tests for the oversubscription extension model."""

import numpy as np
import pytest

from repro.app.oversubscription import (
    block_padded_group_counts,
    oversubscribed_inter_time,
    oversubscription_analysis,
)
from repro.cuda import CostModel, TESLA_C1060
from repro.kernels import InterTaskKernel


class TestBlockPaddedCounts:
    def test_matches_group_counts_for_uniform_block(self):
        """With identical lengths there is no padding anywhere, so both
        accountings agree exactly."""
        kernel = InterTaskKernel()
        lengths = np.full(512, 360, dtype=np.int64)
        a = block_padded_group_counts(kernel, 567, lengths)
        b = kernel.group_counts(567, lengths)
        assert a == b

    def test_blockwise_padding_is_tighter(self):
        """Sorted mixed lengths: per-block padding wastes less issue than
        launch-level padding."""
        kernel = InterTaskKernel()
        rng = np.random.default_rng(0)
        lengths = np.sort(rng.integers(50, 3000, size=1024).astype(np.int64))
        blockwise = block_padded_group_counts(kernel, 567, lengths)
        launchwise = kernel.group_counts(567, lengths)
        assert blockwise.idle_thread_steps < launchwise.idle_thread_steps
        assert blockwise.cells == launchwise.cells
        # Memory traffic is identical (it follows actual work).
        assert blockwise.global_bytes == launchwise.global_bytes

    def test_validation(self):
        kernel = InterTaskKernel()
        with pytest.raises(ValueError):
            block_padded_group_counts(kernel, 0, np.array([10]))
        with pytest.raises(ValueError):
            block_padded_group_counts(kernel, 10, np.array([], dtype=np.int64))


class TestOversubscribedTime:
    @pytest.fixture(scope="class")
    def skewed_lengths(self):
        rng = np.random.default_rng(1)
        return np.maximum(
            rng.lognormal(np.log(1200), 0.9, 60_000).astype(np.int64), 10
        )

    def test_k1_matches_wave_model(self, skewed_lengths):
        """Factor 1 reproduces the paper's launch-per-wave accounting."""
        kernel = InterTaskKernel()
        model = CostModel(TESLA_C1060)
        t1 = oversubscribed_inter_time(model, kernel, 567, skewed_lengths, 1)
        assert t1 > 0

    def test_oversubscription_helps_skewed_workloads(self, skewed_lengths):
        kernel = InterTaskKernel()
        model = CostModel(TESLA_C1060)
        t1 = oversubscribed_inter_time(model, kernel, 567, skewed_lengths, 1)
        t8 = oversubscribed_inter_time(model, kernel, 567, skewed_lengths, 8)
        assert t8 < t1

    def test_uniform_workload_indifferent(self):
        """No variance, nothing to recover: factors agree closely."""
        kernel = InterTaskKernel()
        model = CostModel(TESLA_C1060)
        lengths = np.full(40_000, 400, dtype=np.int64)
        t1 = oversubscribed_inter_time(model, kernel, 567, lengths, 1)
        t8 = oversubscribed_inter_time(model, kernel, 567, lengths, 8)
        assert t8 == pytest.approx(t1, rel=0.15)

    def test_validation(self, skewed_lengths):
        kernel = InterTaskKernel()
        model = CostModel(TESLA_C1060)
        with pytest.raises(ValueError):
            oversubscribed_inter_time(model, kernel, 567, skewed_lengths, 0)


def test_analysis_shape():
    r = oversubscription_analysis(stds=(100, 1300, 2500), factors=(1, 8))
    assert len(r.rows) == 3
    k1 = [row[1] for row in r.rows]
    k8 = [row[2] for row in r.rows]
    # The one-wave model collapses; the oversubscribed one holds.
    assert min(k8) > min(k1)
    assert min(k8) > 0.6 * max(k8)
