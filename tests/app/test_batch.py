"""Tests for the multi-query batch API."""

import numpy as np
import pytest

from repro.app import CudaSW, predict_batch, search_batch
from repro.app.batch import BatchReport
from repro.cuda import TESLA_C1060
from repro.sequence import Database, SWISSPROT_PROFILE, Sequence, random_protein


@pytest.fixture(scope="module")
def db_small():
    rng = np.random.default_rng(0)
    seqs = [Sequence.random(f"s{i}", int(n), rng)
            for i, n in enumerate([60, 120, 240, 400])]
    return Database.from_sequences(seqs)


@pytest.fixture(scope="module")
def db_large():
    rng = np.random.default_rng(1)
    return SWISSPROT_PROFILE.build(rng, scale=0.2)


class TestPredictBatch:
    def test_campaign_gcups(self, db_large):
        app = CudaSW(TESLA_C1060)
        batch = predict_batch(app, [144, 567, 2005], db_large)
        assert len(batch.reports) == 3
        assert batch.total_cells == sum(r.total_cells for r in batch.reports)
        # Campaign GCUPs sits within the per-query range.
        per = batch.per_query_gcups
        assert min(per) <= batch.gcups <= max(per) * 1.01

    def test_transfer_counted_once(self, db_large):
        app = CudaSW(TESLA_C1060)
        single = app.predict(567, db_large)
        batch = predict_batch(app, [567, 567], db_large)
        assert batch.total_time == pytest.approx(
            2 * single.compute_time + single.transfer_time
        )

    def test_worst_query(self, db_large):
        app = CudaSW(TESLA_C1060)
        batch = predict_batch(app, [144, 5478], db_large)
        assert batch.worst_query().query_length in (144, 5478)
        assert batch.worst_query().gcups == min(batch.per_query_gcups)

    def test_empty_batch_rejected(self, db_large):
        app = CudaSW(TESLA_C1060)
        with pytest.raises(ValueError):
            predict_batch(app, [], db_large)
        with pytest.raises(ValueError):
            BatchReport(reports=())


class TestSearchBatch:
    def test_per_query_results(self, db_small):
        rng = np.random.default_rng(2)
        app = CudaSW(TESLA_C1060)
        queries = [random_protein(50, rng, id=f"q{i}") for i in range(3)]
        results, batch = search_batch(app, queries, db_small)
        assert len(results) == 3
        for query, result in zip(queries, results):
            assert result.query_id == query.id
            assert len(result) == len(db_small)

    def test_scores_match_individual_searches(self, db_small):
        rng = np.random.default_rng(3)
        app = CudaSW(TESLA_C1060)
        queries = [random_protein(40, rng, id=f"q{i}") for i in range(2)]
        results, _ = search_batch(app, queries, db_small)
        for query, result in zip(queries, results):
            solo, _ = app.search(query, db_small)
            assert np.array_equal(result.scores, solo.scores)

    def test_empty_rejected(self, db_small):
        app = CudaSW(TESLA_C1060)
        with pytest.raises(ValueError):
            search_batch(app, [], db_small)

    def test_engine_selection_threads_through(self, db_small):
        rng = np.random.default_rng(4)
        app = CudaSW(TESLA_C1060)
        queries = [random_protein(30, rng, id=f"q{i}") for i in range(2)]
        batched, _ = search_batch(app, queries, db_small, engine="batched")
        wavefront, _ = search_batch(
            app, queries, db_small, engine="antidiagonal"
        )
        for a, b in zip(batched, wavefront):
            assert np.array_equal(a.scores, b.scores)
