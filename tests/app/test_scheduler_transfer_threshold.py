"""Tests for the scheduler, transfer model and threshold autotuning."""

import numpy as np
import pytest

from repro.app import (
    CudaSW,
    TransferModel,
    optimal_threshold,
    schedule_inter_task,
    threshold_sweep,
)
from repro.cuda import TESLA_C1060, TESLA_C2050
from repro.kernels import InterTaskKernel
from repro.sequence import Database, DatabaseProfile


class TestScheduler:
    def make_db(self, lengths):
        return Database.from_lengths(np.asarray(lengths))

    def test_group_size_from_occupancy(self):
        db = self.make_db([100] * 1000)
        sched = schedule_inter_task(100, db, InterTaskKernel(), TESLA_C1060)
        # 32 regs/thread, 256 threads -> 2 blocks/SM on the C1060.
        assert sched.group_size == 2 * 256 * 30

    def test_launch_count(self):
        db = self.make_db([100] * 40_000)
        sched = schedule_inter_task(100, db, InterTaskKernel(), TESLA_C1060)
        expected = -(-40_000 // sched.group_size)
        assert sched.n_launches == expected

    def test_uniform_lengths_high_efficiency(self):
        db = self.make_db([360] * 20_000)
        sched = schedule_inter_task(567, db, InterTaskKernel(), TESLA_C1060)
        assert sched.load_balance_efficiency > 0.95

    def test_variance_destroys_efficiency(self):
        """Figure 2's mechanism: within an unsorted group, one long
        sequence stalls every thread."""
        rng = np.random.default_rng(0)
        lengths = np.maximum(
            rng.lognormal(np.log(1500), 1.0, 15360).astype(np.int64), 10
        )
        uniform = self.make_db(np.full(15360, int(lengths.mean())))
        skewed = self.make_db(lengths)
        e_uniform = schedule_inter_task(
            567, uniform, InterTaskKernel(), TESLA_C1060
        ).load_balance_efficiency
        e_skewed = schedule_inter_task(
            567, skewed, InterTaskKernel(), TESLA_C1060
        ).load_balance_efficiency
        assert e_skewed < 0.6 * e_uniform

    def test_sorting_restores_efficiency(self):
        """CUDASW++'s sort: grouping sorted lengths keeps groups uniform."""
        rng = np.random.default_rng(1)
        lengths = np.maximum(
            rng.lognormal(np.log(400), 0.7, 40_000).astype(np.int64), 10
        )
        db = self.make_db(lengths)
        sorted_eff = schedule_inter_task(
            567, db, InterTaskKernel(), TESLA_C1060
        ).load_balance_efficiency
        shuffled_eff = schedule_inter_task(
            567, db, InterTaskKernel(), TESLA_C1060, presorted=True
        ).load_balance_efficiency  # presorted=True trusts the (unsorted) order
        assert sorted_eff > shuffled_eff

    def test_validation(self):
        db = self.make_db([100])
        with pytest.raises(ValueError):
            schedule_inter_task(0, db, InterTaskKernel(), TESLA_C1060)


class TestTransferModel:
    def test_full_copy_time(self):
        t = TransferModel(TESLA_C1060)
        residues = 192_000_000
        expected = residues * 1.05 / 5.2e9
        assert t.visible_copy_time(residues, 10.0) == pytest.approx(expected)

    def test_streaming_hides_behind_compute(self):
        t = TransferModel(TESLA_C1060, streaming=True)
        residues = 192_000_000
        full = TransferModel(TESLA_C1060).visible_copy_time(residues, 10.0)
        visible = t.visible_copy_time(residues, 10.0)
        assert visible == pytest.approx(0.05 * full)

    def test_streaming_exposes_excess(self):
        t = TransferModel(TESLA_C1060, streaming=True)
        residues = 192_000_000
        full = TransferModel(TESLA_C1060).visible_copy_time(residues, 0.0)
        # No compute to hide behind: everything is visible again.
        assert t.visible_copy_time(residues, 0.0) == pytest.approx(full)

    def test_fits_in_device_memory(self):
        t = TransferModel(TESLA_C1060)
        assert t.fits_in_device_memory(192_000_000)  # Swiss-Prot: yes
        assert not t.fits_in_device_memory(5 * 1024**3)  # NR/TrEMBL: no

    def test_validation(self):
        with pytest.raises(ValueError):
            TransferModel(TESLA_C1060, first_chunk_fraction=0.0)
        t = TransferModel(TESLA_C1060)
        with pytest.raises(ValueError):
            t.visible_copy_time(-1, 1.0)
        with pytest.raises(ValueError):
            t.visible_copy_time(1, -1.0)


class TestThresholdAutotuning:
    @pytest.fixture(scope="class")
    def tair_like(self):
        rng = np.random.default_rng(9)
        profile = DatabaseProfile("TAIR-like", 35_386, 250.0, 0.0006)
        return profile.build(rng, scale=0.2)

    def test_sweep_returns_points(self, tair_like):
        app = CudaSW(TESLA_C2050, intra_kernel="improved")
        points = threshold_sweep(app, 567, tair_like, max_candidates=8)
        assert len(points) >= 2
        assert all(p.gcups > 0 for p in points)
        ths = [p.threshold for p in points]
        assert ths == sorted(ths)

    def test_improved_kernel_prefers_lower_threshold(self, tair_like):
        """Section IV/VI: with the improved kernel the optimum threshold
        drops below the default 3072 (the TAIR experiment)."""
        app = CudaSW(TESLA_C2050, intra_kernel="improved")
        best = optimal_threshold(app, 567, tair_like)
        default = CudaSW(
            TESLA_C2050, intra_kernel="improved", threshold=3072
        ).predict(567, tair_like)
        assert best.threshold < 3072
        assert best.gcups >= default.gcups

    def test_original_kernel_prefers_higher_threshold_than_improved(
        self, tair_like
    ):
        imp = CudaSW(TESLA_C2050, intra_kernel="improved")
        orig = CudaSW(TESLA_C2050, intra_kernel="original")
        best_imp = optimal_threshold(imp, 567, tair_like)
        best_orig = optimal_threshold(orig, 567, tair_like)
        assert best_imp.threshold <= best_orig.threshold

    def test_fraction_over_monotone(self, tair_like):
        app = CudaSW(TESLA_C1060)
        points = threshold_sweep(app, 567, tair_like, max_candidates=6)
        fracs = [p.fraction_over for p in points]
        assert fracs == sorted(fracs, reverse=True)
