"""Tests for the end-to-end CUDASW++ application layer."""

import numpy as np
import pytest

from repro.app import CudaSW, multi_gpu_time, split_round_robin
from repro.app.cudasw import tuned_improved_config
from repro.cuda import TESLA_C1060, TESLA_C2050
from repro.kernels import ImprovedIntraTaskKernel, ImprovedKernelConfig
from repro.sequence import Database, SWISSPROT_PROFILE, random_protein
from repro.sw import sw_score_antidiagonal


@pytest.fixture(scope="module")
def swissprot_full():
    """The full-scale Swiss-Prot stand-in (lengths only — cheap).

    Scale matters: the inter-task side needs many occupancy-sized groups
    and the intra-task side enough blocks to fill the SMs, otherwise
    grid-underutilization and coarse-group load imbalance — real effects
    the cost model captures — dominate the threshold experiments.  The
    performance path never materializes residues, so full scale costs
    only a 516k-element length array.
    """
    rng = np.random.default_rng(42)
    return SWISSPROT_PROFILE.build(rng)


@pytest.fixture(scope="module")
def tiny_db():
    """A tiny materialized database with one above-threshold sequence."""
    rng = np.random.default_rng(7)
    from repro.sequence import Sequence

    seqs = [Sequence.random(f"s{i}", int(n), rng)
            for i, n in enumerate([40, 80, 200, 350, 3500])]
    return Database.from_sequences(seqs)


class TestPredict:
    def test_report_fields(self, swissprot_full):
        app = CudaSW(TESLA_C1060, intra_kernel="original")
        r = app.predict(567, swissprot_full)
        assert r.device == "Tesla C1060"
        assert r.n_inter_sequences + r.n_intra_sequences == len(swissprot_full)
        assert r.total_time > 0
        assert r.gcups > 0
        assert 0 <= r.intra_time_fraction < 1
        assert r.total_cells == 567 * swissprot_full.total_residues

    def test_improved_beats_original(self, swissprot_full):
        orig = CudaSW(TESLA_C1060, intra_kernel="original").predict(
            567, swissprot_full
        )
        imp = CudaSW(TESLA_C1060, intra_kernel="improved").predict(
            567, swissprot_full
        )
        assert imp.gcups > orig.gcups
        assert imp.intra_time_fraction < orig.intra_time_fraction

    def test_lower_threshold_hurts_original_kernel(self, swissprot_full):
        """Figure 3: small threshold decreases cause large GCUPs drops."""
        gcups = [
            CudaSW(TESLA_C1060, intra_kernel="original", threshold=t).predict(
                572, swissprot_full
            ).gcups
            for t in (3072, 2000, 1200)
        ]
        assert gcups[0] > gcups[1] > gcups[2]
        assert gcups[0] > 1.5 * gcups[2]

    def test_improved_kernel_less_threshold_sensitive(self, swissprot_full):
        """Figure 5(a): the improved kernel flattens the sensitivity."""
        def drop(kernel):
            hi = CudaSW(TESLA_C1060, intra_kernel=kernel, threshold=3072).predict(
                576, swissprot_full
            ).gcups
            lo = CudaSW(TESLA_C1060, intra_kernel=kernel, threshold=1200).predict(
                576, swissprot_full
            ).gcups
            return hi / lo

        assert drop("original") > 1.5 * drop("improved")

    def test_fermi_helps_original_more(self, swissprot_full):
        """Table II / Section IV-A: the C2050's caches mainly rescue the
        original kernel."""
        gain_orig = (
            CudaSW(TESLA_C2050, intra_kernel="original", threshold=1500)
            .predict(567, swissprot_full).gcups
            / CudaSW(TESLA_C1060, intra_kernel="original", threshold=1500)
            .predict(567, swissprot_full).gcups
        )
        gain_imp = (
            CudaSW(TESLA_C2050, intra_kernel="improved", threshold=1500)
            .predict(567, swissprot_full).gcups
            / CudaSW(TESLA_C1060, intra_kernel="improved", threshold=1500)
            .predict(567, swissprot_full).gcups
        )
        assert gain_orig > gain_imp

    def test_all_below_threshold(self):
        db = Database.from_lengths([100, 200, 300])
        r = CudaSW(TESLA_C1060).predict(100, db)
        assert r.n_intra_sequences == 0
        assert r.intra_time == 0.0
        assert r.inter_time > 0

    def test_all_above_threshold(self):
        db = Database.from_lengths([4000, 5000])
        r = CudaSW(TESLA_C1060).predict(100, db)
        assert r.n_inter_sequences == 0
        assert r.inter_time == 0.0
        assert r.intra_time > 0

    def test_streaming_copy_hides_transfer(self, swissprot_full):
        plain = CudaSW(TESLA_C1060).predict(567, swissprot_full)
        stream = CudaSW(TESLA_C1060, streaming_copy=True).predict(
            567, swissprot_full
        )
        assert stream.transfer_time < plain.transfer_time
        assert stream.total_time < plain.total_time

    def test_custom_intra_kernel_instance(self, swissprot_full):
        k = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(threads_per_block=128), TESLA_C1060
        )
        r = CudaSW(TESLA_C1060, intra_kernel=k).predict(567, swissprot_full)
        assert r.gcups > 0

    def test_validation(self, swissprot_full):
        with pytest.raises(ValueError):
            CudaSW(TESLA_C1060, intra_kernel="bogus")
        with pytest.raises(ValueError):
            CudaSW(TESLA_C1060, threshold=0)
        with pytest.raises(ValueError):
            CudaSW(TESLA_C1060).predict(0, swissprot_full)

    def test_tuned_configs(self):
        assert tuned_improved_config(TESLA_C1060).strip_height == 512
        assert tuned_improved_config(TESLA_C2050).strip_height == 1024


class TestFunctionalSearch:
    def test_scores_match_reference(self, tiny_db):
        rng = np.random.default_rng(1)
        app = CudaSW(TESLA_C1060)
        q = random_protein(120, rng, id="query")
        result, report = app.search(q, tiny_db)
        for i in range(len(tiny_db)):
            expected = sw_score_antidiagonal(
                q.codes, tiny_db.codes_of(i), app.matrix, app.gaps
            )
            assert result.scores[i] == expected
        assert report.n_intra_sequences == 1  # the 3500-residue entry

    def test_simulated_kernels_agree_with_reference(self, tiny_db):
        """Dispatch through the functional kernel simulators must give the
        same scores as the reference path."""
        rng = np.random.default_rng(2)
        # Small-strip improved kernel keeps the simulation fast.
        k = ImprovedIntraTaskKernel(
            ImprovedKernelConfig(threads_per_block=32), TESLA_C1060
        )
        app = CudaSW(TESLA_C1060, intra_kernel=k, threshold=300)
        q = random_protein(60, rng, id="q")
        small = tiny_db.select(np.array([0, 1, 2, 3]))  # keep it quick
        ref, _ = app.search(q, small)
        sim, _ = app.search(q, small, simulate_kernels=True)
        assert np.array_equal(ref.scores, sim.scores)

    def test_top_hits_ranked(self, tiny_db):
        app = CudaSW(TESLA_C1060)
        # Query = a slice of sequence s2, so s2 must be the best hit.
        q = tiny_db[2].slice(20, 120)
        result, _ = app.search(q, tiny_db)
        top = result.top(3)
        assert top[0].id == "s2"
        assert top[0].score >= top[1].score >= top[2].score

    def test_search_requires_residues(self, swissprot_full):
        rng = np.random.default_rng(4)
        app = CudaSW(TESLA_C1060)
        with pytest.raises(ValueError, match="materialized"):
            app.search(random_protein(50, rng), swissprot_full)

    def test_score_of_lookup(self, tiny_db):
        rng = np.random.default_rng(5)
        app = CudaSW(TESLA_C1060)
        result, _ = app.search(random_protein(50, rng), tiny_db)
        assert result.score_of("s1") == result.scores[1]
        with pytest.raises(KeyError):
            result.score_of("nope")


class TestSearchEngines:
    """The selectable functional backends must be interchangeable."""

    def test_all_engines_agree(self, tiny_db):
        rng = np.random.default_rng(11)
        app = CudaSW(TESLA_C1060)
        q = random_protein(45, rng, id="q")
        small = tiny_db.select(np.array([0, 1, 2, 3]))  # scalar is slow
        results = {
            engine: app.search(q, small, engine=engine)[0].scores
            for engine in ("scalar", "antidiagonal", "batched")
        }
        assert np.array_equal(results["scalar"], results["antidiagonal"])
        assert np.array_equal(results["scalar"], results["batched"])

    def test_batched_is_the_default(self, tiny_db):
        rng = np.random.default_rng(12)
        app = CudaSW(TESLA_C1060)
        assert app.last_engine_report is None
        app.search(random_protein(30, rng), tiny_db)
        assert app.last_engine_report is not None
        assert sum(app.last_engine_report.group_sizes) == len(tiny_db)

    def test_engine_report_not_touched_by_other_engines(self, tiny_db):
        rng = np.random.default_rng(13)
        app = CudaSW(TESLA_C1060)
        app.search(random_protein(30, rng), tiny_db, engine="antidiagonal")
        assert app.last_engine_report is None

    def test_workers_and_group_size_thread_through(self, tiny_db):
        rng = np.random.default_rng(14)
        app = CudaSW(TESLA_C1060)
        q = random_protein(30, rng, id="q")
        serial, _ = app.search(q, tiny_db)
        fanned, _ = app.search(q, tiny_db, workers=2, group_size=2)
        assert np.array_equal(serial.scores, fanned.scores)
        assert app.last_engine_report.workers == 2
        assert app.last_engine_report.group_size == 2

    def test_unknown_engine_rejected(self, tiny_db):
        rng = np.random.default_rng(15)
        app = CudaSW(TESLA_C1060)
        with pytest.raises(ValueError, match="engine"):
            app.search(random_protein(30, rng), tiny_db, engine="gpu")

    def test_stale_engine_report_cleared_between_searches(self, tiny_db):
        """Regression: a batched search's report must not survive a
        following non-batched search as if it described it."""
        rng = np.random.default_rng(16)
        app = CudaSW(TESLA_C1060)
        q = random_protein(30, rng, id="q")
        app.search(q, tiny_db, engine="batched")
        assert app.last_engine_report is not None
        app.search(q, tiny_db, engine="antidiagonal")
        assert app.last_engine_report is None
        app.search(q, tiny_db, simulate_kernels=True)
        assert app.last_engine_report is None

    def test_invalid_collect_mode_rejected(self, tiny_db):
        rng = np.random.default_rng(17)
        app = CudaSW(TESLA_C1060)
        with pytest.raises(ValueError, match="collect"):
            app.search(random_protein(30, rng), tiny_db, collect="spans")


class TestMultiGpu:
    def test_round_robin_split(self, swissprot_full):
        shards = split_round_robin(swissprot_full, 4)
        assert sum(len(s) for s in shards) == len(swissprot_full)
        # Shards see near-identical workloads.
        residues = [s.total_residues for s in shards]
        assert max(residues) / min(residues) < 1.05

    def test_lpt_split_covers_and_balances(self, swissprot_full):
        from repro.app.multigpu import split_lpt

        shards = split_lpt(swissprot_full, 4, block_size=15360)
        assert sum(len(s) for s in shards) == len(swissprot_full)

    def test_near_linear_scaling(self, swissprot_full):
        """Section IV-B: running time scales almost linearly with GPUs."""
        app = CudaSW(TESLA_C1060)
        t1 = app.predict(567, swissprot_full).total_time
        t2, reports = multi_gpu_time(app, 567, swissprot_full, 2)
        t4, _ = multi_gpu_time(app, 567, swissprot_full, 4)
        assert len(reports) == 2
        assert 1.8 < t1 / t2 < 2.1
        assert 3.5 < t1 / t4 < 4.2

    def test_lpt_beats_group_round_robin(self, swissprot_full):
        """Dealing whole groups round-robin strands the expensive tail
        group on one card; LPT balances it."""
        from repro.app.multigpu import inter_task_group_size, split_lpt

        app = CudaSW(TESLA_C1060)
        s = inter_task_group_size(app)
        rr = max(
            app.predict(567, shard).total_time
            for shard in split_round_robin(swissprot_full, 4, block_size=s)
        )
        lpt = max(
            app.predict(567, shard).total_time
            for shard in split_lpt(swissprot_full, 4, block_size=s)
        )
        assert lpt < rr

    def test_split_validation(self, swissprot_full):
        with pytest.raises(ValueError):
            split_round_robin(swissprot_full, 0)
        small = Database.from_lengths([10, 20])
        with pytest.raises(ValueError):
            split_round_robin(small, 3)
        with pytest.raises(ValueError):
            split_round_robin(swissprot_full, 2, block_size=0)
