"""Tests for SearchResult lookups, including the duplicate-id contract."""

import numpy as np
import pytest

from repro.app.results import SearchResult


def _result(ids, scores):
    return SearchResult(
        query_id="q",
        scores=np.asarray(scores, dtype=np.int64),
        ids=tuple(ids),
        lengths=np.full(len(ids), 10, dtype=np.int64),
    )


class TestScoreOf:
    def test_unique_id_lookup(self):
        r = _result(["a", "b", "c"], [5, 7, 9])
        assert r.score_of("b") == 7

    def test_unknown_id_raises_keyerror(self):
        r = _result(["a", "b"], [1, 2])
        with pytest.raises(KeyError, match="nope"):
            r.score_of("nope")

    def test_duplicate_id_raises_instead_of_first_wins(self):
        """FASTA enforces nothing about id uniqueness; a silent
        first-match answer could be the wrong sequence's score."""
        r = _result(["a", "dup", "b", "dup"], [1, 2, 3, 4])
        with pytest.raises(ValueError, match="ambiguous.*2"):
            r.score_of("dup")
        # Unambiguous ids in the same result still resolve.
        assert r.score_of("b") == 3

    def test_positional_access_stays_unambiguous(self):
        r = _result(["dup", "dup"], [11, 22])
        assert int(r.scores[0]) == 11 and int(r.scores[1]) == 22
