"""Tests for CudaSW's threshold='auto' mode (Section VI, in the main API)."""

import numpy as np
import pytest

from repro.app import CudaSW
from repro.cuda import TESLA_C2050
from repro.sequence import PAPER_DATABASES


@pytest.fixture(scope="module")
def tair():
    rng = np.random.default_rng(0)
    profile = next(p for p in PAPER_DATABASES if "TAIR" in p.name)
    return profile.build(rng, scale=0.5)


class TestAutoThreshold:
    def test_auto_never_worse_than_default(self, tair):
        fixed = CudaSW(TESLA_C2050, intra_kernel="improved").predict(567, tair)
        auto = CudaSW(
            TESLA_C2050, intra_kernel="improved", threshold="auto"
        ).predict(567, tair)
        assert auto.gcups >= fixed.gcups
        assert auto.threshold != 3072 or auto.gcups == fixed.gcups

    def test_report_carries_resolved_threshold(self, tair):
        app = CudaSW(TESLA_C2050, intra_kernel="improved", threshold="auto")
        r = app.predict(567, tair)
        assert isinstance(r.threshold, int)
        assert r.fraction_over_threshold == tair.fraction_over(r.threshold)

    def test_detection_cached_per_database(self, tair):
        app = CudaSW(TESLA_C2050, intra_kernel="improved", threshold="auto")
        app.predict(567, tair)
        cached = dict(app._auto_cache)
        app.predict(567, tair)
        assert app._auto_cache == cached  # no re-detection

    def test_recomputed_for_different_database(self, tair):
        rng = np.random.default_rng(1)
        other = PAPER_DATABASES[0].build(rng, scale=0.5)
        app = CudaSW(TESLA_C2050, intra_kernel="improved", threshold="auto")
        app.predict(567, tair)
        first = app._auto_cache["fingerprint"]
        app.predict(567, other)
        assert app._auto_cache["fingerprint"] != first

    def test_functional_search_uses_auto(self):
        from repro.sequence import Database, Sequence, random_protein

        rng = np.random.default_rng(2)
        seqs = [Sequence.random(f"s{i}", int(n), rng)
                for i, n in enumerate([60, 150, 400, 900])]
        db = Database.from_sequences(seqs)
        app = CudaSW(TESLA_C2050, threshold="auto")
        result, report = app.search(random_protein(50, rng), db)
        assert len(result) == 4
        assert isinstance(report.threshold, int)

    def test_invalid_threshold_strings_rejected(self):
        with pytest.raises(ValueError):
            CudaSW(TESLA_C2050, threshold="automatic")
        with pytest.raises(ValueError):
            CudaSW(TESLA_C2050, threshold=-5)
