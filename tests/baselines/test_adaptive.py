"""Tests for SWPS3's adaptive 8-bit/16-bit precision scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alphabet import BLOSUM62, GapPenalty
from repro.baselines import (
    SATURATION_LIMIT,
    striped_smith_waterman,
    striped_smith_waterman_adaptive,
)
from repro.sequence import Sequence, random_protein
from repro.sw import sw_score_scalar

GP = GapPenalty.cudasw_default()


class TestSaturatedPass:
    def test_scores_below_clamp_are_exact(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            q = random_protein(int(rng.integers(1, 80)), rng)
            d = random_protein(int(rng.integers(1, 80)), rng)
            exact = sw_score_scalar(q, d, BLOSUM62, GP)
            s, _ = striped_smith_waterman(
                q, d, BLOSUM62, GP, lanes=16, clamp=SATURATION_LIMIT
            )
            if exact < SATURATION_LIMIT:
                assert s == exact
            else:
                assert s == SATURATION_LIMIT

    def test_clamp_caps_high_scores(self):
        rng = np.random.default_rng(1)
        q = random_protein(150, rng)
        s, _ = striped_smith_waterman(
            q, q, BLOSUM62, GP, lanes=16, clamp=SATURATION_LIMIT
        )
        assert s == SATURATION_LIMIT
        assert sw_score_scalar(q, q, BLOSUM62, GP) > SATURATION_LIMIT

    def test_clamp_validation(self):
        rng = np.random.default_rng(2)
        q = random_protein(10, rng)
        with pytest.raises(ValueError):
            striped_smith_waterman(q, q, BLOSUM62, GP, clamp=0)


class TestAdaptive:
    def test_always_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(15):
            q = random_protein(int(rng.integers(1, 90)), rng)
            d = random_protein(int(rng.integers(1, 90)), rng)
            s, _ = striped_smith_waterman_adaptive(q, d, BLOSUM62, GP)
            assert s == sw_score_scalar(q, d, BLOSUM62, GP)

    def test_random_pairs_stay_in_byte_pass(self):
        """Unrelated sequences score far below 255: no rerun needed —
        the scheme's whole economy."""
        rng = np.random.default_rng(4)
        reruns = 0
        for _ in range(15):
            q = random_protein(120, rng)
            d = random_protein(120, rng)
            _, counts = striped_smith_waterman_adaptive(q, d, BLOSUM62, GP)
            reruns += counts.overflowed
        assert reruns == 0

    def test_homologs_trigger_rerun(self):
        rng = np.random.default_rng(5)
        q = random_protein(120, rng)
        s, counts = striped_smith_waterman_adaptive(q, q, BLOSUM62, GP)
        assert counts.overflowed
        assert s == sw_score_scalar(q, q, BLOSUM62, GP)
        assert s > SATURATION_LIMIT

    def test_overflow_costs_both_passes(self):
        rng = np.random.default_rng(6)
        q = random_protein(100, rng)
        d = random_protein(100, rng)
        _, cheap = striped_smith_waterman_adaptive(q, d, BLOSUM62, GP)
        _, expensive = striped_smith_waterman_adaptive(q, q, BLOSUM62, GP)
        assert expensive.vector_ops > cheap.vector_ops
        assert expensive.word_pass is not None
        assert cheap.word_pass is None

    def test_byte_pass_halves_segment_work(self):
        """16 lanes halve the segment length, so the byte pass costs about
        half the word pass's main-loop rows."""
        rng = np.random.default_rng(7)
        q = random_protein(160, rng)
        d = random_protein(100, rng)
        _, counts = striped_smith_waterman_adaptive(q, d, BLOSUM62, GP)
        _, word = striped_smith_waterman(q, d, BLOSUM62, GP, lanes=8)
        assert counts.byte_pass.main_rows == pytest.approx(
            word.main_rows / 2, rel=0.1
        )

    @settings(max_examples=30, deadline=None)
    @given(
        q=st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=30),
        d=st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=1, max_size=30),
    )
    def test_property_exactness(self, q, d):
        s, _ = striped_smith_waterman_adaptive(q, d, BLOSUM62, GP)
        assert s == sw_score_scalar(q, d, BLOSUM62, GP)

    def test_boundary_score_at_limit(self):
        """A pair whose exact score is exactly 255 must rerun (the byte
        pass cannot distinguish 255 from saturation) and still be exact."""
        # W-W scores 11; 23 W's score 253, add a final D-D (6) -> 259;
        # build a score of exactly 255 instead: 23 W (253) + one S-S (4)
        # = 257... use 22 W (242) + one M-M (5) + two A-A (4+4) = 255.
        text = "W" * 22 + "M" + "AA"
        q = Sequence.from_text("q", text)
        exact = sw_score_scalar(q, q, BLOSUM62, GP)
        assert exact == 255
        s, counts = striped_smith_waterman_adaptive(q, q, BLOSUM62, GP)
        assert s == 255
        assert counts.overflowed
